"""Declarative search spaces over :class:`ScenarioSpec` override paths.

A :class:`SearchSpace` is to an exploration what a parameter grid is to
a sweep: a frozen, JSON-round-trippable description of *which* design
knobs may vary and *over what ranges* — except the ranges are domains
(continuous, log-scale, integer, categorical), not enumerated value
lists, so optimizers can sample, discretise and mutate them instead of
exhausting a cartesian product.

Every :class:`Axis` binds to one override key resolved exactly like
:meth:`ScenarioSpec.with_override` (``"capacitance"``,
``"storage__capacitance"``, ``"config__v_min"``, ...), which is what
makes a sampled point a runnable spec: ``base.with_overrides(point)``.
:meth:`SearchSpace.validate_against` checks every binding eagerly, so a
misspelled axis fails before the first simulation, not mid-exploration.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ExploreError

#: The axis domains an optimizer can sample/discretise/mutate.
AXIS_KINDS = ("continuous", "log", "integer", "categorical")


@dataclass(frozen=True)
class Axis:
    """One design knob: an override key bound to a value domain.

    Attributes:
        name: override key, resolved per :meth:`ScenarioSpec.with_override`.
        kind: one of :data:`AXIS_KINDS`.
        low / high: inclusive bounds (numeric kinds; ``low < high``, and
            strictly positive for ``log``).
        choices: the value set (``categorical`` only).
    """

    name: str
    kind: str
    low: float = 0.0
    high: float = 0.0
    choices: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ExploreError("an axis needs a non-empty override key name")
        if self.kind not in AXIS_KINDS:
            raise ExploreError(
                f"axis {self.name!r}: unknown kind {self.kind!r}; "
                f"choose one of {list(AXIS_KINDS)}"
            )
        if self.kind == "categorical":
            object.__setattr__(self, "choices", tuple(self.choices))
            if len(self.choices) < 2:
                raise ExploreError(
                    f"categorical axis {self.name!r} needs at least two "
                    "choices"
                )
            if len(set(map(repr, self.choices))) != len(self.choices):
                raise ExploreError(
                    f"categorical axis {self.name!r} has duplicate choices"
                )
        else:
            if self.choices:
                raise ExploreError(
                    f"axis {self.name!r}: only categorical axes take choices"
                )
            if not (math.isfinite(self.low) and math.isfinite(self.high)):
                raise ExploreError(
                    f"axis {self.name!r}: bounds must be finite"
                )
            if self.low >= self.high:
                raise ExploreError(
                    f"axis {self.name!r}: low ({self.low!r}) must be below "
                    f"high ({self.high!r})"
                )
            if self.kind == "log" and self.low <= 0.0:
                raise ExploreError(
                    f"log axis {self.name!r} needs strictly positive bounds"
                )
            if self.kind == "integer" and (
                self.low != int(self.low) or self.high != int(self.high)
            ):
                raise ExploreError(
                    f"integer axis {self.name!r} needs integer bounds"
                )

    # -- constructors ----------------------------------------------------

    @classmethod
    def continuous(cls, name: str, low: float, high: float) -> "Axis":
        """A uniformly sampled real interval ``[low, high]``."""
        return cls(name, "continuous", low=float(low), high=float(high))

    @classmethod
    def log(cls, name: str, low: float, high: float) -> "Axis":
        """A log-uniformly sampled positive interval (decades weigh equal)."""
        return cls(name, "log", low=float(low), high=float(high))

    @classmethod
    def integer(cls, name: str, low: int, high: int) -> "Axis":
        """A uniformly sampled integer range, both ends inclusive."""
        return cls(name, "integer", low=float(low), high=float(high))

    @classmethod
    def categorical(cls, name: str, choices: Sequence[Any]) -> "Axis":
        """An unordered finite value set (strategies, kernels, ...)."""
        return cls(name, "categorical", choices=tuple(choices))

    # -- domain operations ----------------------------------------------

    def sample(self, rng: random.Random) -> Any:
        """One value drawn from this axis's domain."""
        if self.kind == "continuous":
            return rng.uniform(self.low, self.high)
        if self.kind == "log":
            return math.exp(rng.uniform(math.log(self.low),
                                        math.log(self.high)))
        if self.kind == "integer":
            return rng.randint(int(self.low), int(self.high))
        return self.choices[rng.randrange(len(self.choices))]

    def grid(self, resolution: int) -> List[Any]:
        """``resolution`` evenly spaced values (in the axis's own metric).

        Continuous axes space linearly, log axes geometrically, integer
        axes round to distinct integers; categorical axes always return
        every choice (their resolution is fixed by the domain).
        """
        if self.kind == "categorical":
            return list(self.choices)
        if resolution < 2:
            raise ExploreError(
                f"axis {self.name!r}: grid resolution must be >= 2"
            )
        if self.kind == "log":
            lo, hi = math.log(self.low), math.log(self.high)
            return [
                math.exp(lo + (hi - lo) * i / (resolution - 1))
                for i in range(resolution)
            ]
        values = [
            self.low + (self.high - self.low) * i / (resolution - 1)
            for i in range(resolution)
        ]
        if self.kind == "integer":
            seen: List[Any] = []
            for value in values:
                rounded = int(round(value))
                if rounded not in seen:
                    seen.append(rounded)
            return seen
        return values

    def mutate(self, value: Any, rng: random.Random,
               scale: float = 0.2) -> Any:
        """A local perturbation of ``value``, clipped into the domain.

        Numeric axes take a gaussian step sized as a fraction of the
        range (log axes step in log space, integer axes step at least
        one); categorical axes resample a *different* choice.
        """
        if self.kind == "categorical":
            others = [c for c in self.choices if c != value]
            return others[rng.randrange(len(others))] if others else value
        if self.kind == "log":
            lo, hi = math.log(self.low), math.log(self.high)
            stepped = math.log(value) + rng.gauss(0.0, scale * (hi - lo))
            return math.exp(min(hi, max(lo, stepped)))
        stepped = value + rng.gauss(0.0, scale * (self.high - self.low))
        stepped = min(self.high, max(self.low, stepped))
        if self.kind == "integer":
            rounded = int(round(stepped))
            if rounded == value:  # a mutation must move
                rounded = value + (1 if value < self.high else -1)
            return int(min(self.high, max(self.low, rounded)))
        return stepped

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.kind == "categorical":
            payload["choices"] = list(self.choices)
        else:
            payload["low"] = self.low
            payload["high"] = self.high
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Axis":
        unknown = sorted(set(payload) - {"name", "kind", "low", "high",
                                         "choices"})
        if unknown:
            raise ExploreError(
                f"unknown key(s) {unknown} in axis payload; allowed: "
                "['name', 'kind', 'low', 'high', 'choices']"
            )
        for key in ("name", "kind"):
            if key not in payload:
                raise ExploreError(f"axis payload is missing {key!r}")
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            low=payload.get("low", 0.0),
            high=payload.get("high", 0.0),
            choices=tuple(payload.get("choices", ())),
        )


@dataclass(frozen=True)
class SearchSpace:
    """An ordered set of axes: the domain an exploration searches.

    Axis order is meaningful only for presentation (result tables list
    override columns in axis order); the space itself is a product of
    independent domains.
    """

    axes: Tuple[Axis, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise ExploreError("a search space needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ExploreError(
                f"search space binds duplicate override keys: {sorted(names)}"
            )

    @classmethod
    def of(cls, *axes: Axis) -> "SearchSpace":
        """Variadic constructor: ``SearchSpace.of(Axis.log(...), ...)``."""
        return cls(axes=tuple(axes))

    def __len__(self) -> int:
        return len(self.axes)

    def names(self) -> List[str]:
        """The bound override keys, in axis order."""
        return [axis.name for axis in self.axes]

    def axis(self, name: str) -> Axis:
        """The axis bound to ``name``."""
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise ExploreError(
            f"search space has no axis {name!r}; axes: {self.names()}"
        )

    # -- domain operations ----------------------------------------------

    def sample(self, rng: random.Random) -> Dict[str, Any]:
        """One point: an override mapping drawn axis-by-axis."""
        return {axis.name: axis.sample(rng) for axis in self.axes}

    def grid(self, resolution: int = 5) -> List[Dict[str, Any]]:
        """The cartesian product of per-axis grids, as override mappings.

        Matches :func:`repro.spec.specs.expand_grid` ordering (later
        axes vary fastest) so a discretised exploration and a
        ``SweepRunner`` grid enumerate identically.
        """
        from repro.spec.specs import expand_grid

        return expand_grid(
            {axis.name: axis.grid(resolution) for axis in self.axes}
        )

    def validate_against(self, base: Any) -> None:
        """Check every axis binds to a real override path of ``base``.

        Applies representative values through
        :meth:`ScenarioSpec.with_override` — the range ends for numeric
        axes, *every* choice for categorical ones (a strategy choice
        that rejects the base's strategy_params must fail here, before
        any simulation, not mid-exploration).  Cross-axis
        *combinations* can still fail at evaluation time; the driver
        pins those as error rows.
        """
        from repro.errors import SpecError

        for axis in self.axes:
            probes = (axis.choices if axis.kind == "categorical"
                      else axis.grid(2))
            for probe in probes:
                try:
                    base.with_override(axis.name, probe)
                except SpecError as error:
                    raise ExploreError(
                        f"axis {axis.name!r} (value {probe!r}) does not "
                        f"bind to scenario {base.name!r}: {error}"
                    ) from error

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"axes": [axis.to_dict() for axis in self.axes]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SearchSpace":
        unknown = sorted(set(payload) - {"axes"})
        if unknown:
            raise ExploreError(
                f"unknown key(s) {unknown} in search-space payload; "
                "allowed: ['axes']"
            )
        return cls(axes=tuple(
            Axis.from_dict(axis) for axis in payload.get("axes", ())
        ))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SearchSpace":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ExploreError(f"invalid search-space JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ExploreError("search-space JSON must be an object")
        return cls.from_dict(payload)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "SearchSpace":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())
