"""Ask/tell optimizers over a :class:`SearchSpace`.

The protocol is deliberately small: an optimizer *asks* for a batch of
:class:`Candidate` points (each an override mapping plus an evaluation
fidelity), the :class:`~repro.explore.driver.ExplorationDriver` runs
them — through the process pool, memoised by spec hash against a
:class:`ResultStore` — and *tells* the optimizer one
:class:`Evaluation` per candidate, in ask order.  Everything the
optimizer learns arrives through ``tell``; everything it decides leaves
through ``ask``.  That split is what makes explorations resumable: a
seeded optimizer re-asks the identical candidate sequence, the store
answers from cache, and the optimizer reaches the identical state
without a single recomputed simulation.

Implementations are registered by string key (mirroring the component
and metric registries) so specs, the CLI and saved studies can name
them::

    @register_optimizer("random")
    class RandomSearch(Optimizer): ...

Built-ins: ``grid`` (exhaustive discretisation — the SweepRunner
equivalent, useful as a baseline), ``random`` (budgeted random
sampling), ``successive-halving`` (multi-fidelity screening: cheap
fast-kernel short-horizon evaluations eliminate most candidates before
any full-horizon reference run), and ``evolutionary`` (Pareto-aware
NSGA-style search for multi-objective goals, ranking populations with
:func:`repro.analysis.pareto.non_dominated_indices`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.analysis.pareto import non_dominated_indices
from repro.errors import ExploreError
from repro.explore.objectives import Objective
from repro.explore.space import SearchSpace

#: Fidelity of a full-horizon reference evaluation (the default).
FULL_FIDELITY = 1.0


@dataclass(frozen=True)
class Candidate:
    """One point an optimizer wants evaluated.

    Attributes:
        overrides: axis values, keyed by override path.
        fidelity: evaluation fidelity in ``(0, 1]``; below
            :data:`FULL_FIDELITY` the driver substitutes the fast kernel
            and shortens the horizon proportionally (see
            :meth:`ExplorationDriver.spec_for`).
    """

    overrides: Dict[str, Any] = field(default_factory=dict)
    fidelity: float = FULL_FIDELITY

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", dict(self.overrides))
        if not (0.0 < self.fidelity <= 1.0):
            raise ExploreError(
                f"candidate fidelity must be in (0, 1], got {self.fidelity!r}"
            )


@dataclass(frozen=True)
class Evaluation:
    """One evaluated candidate: the driver's answer to an ask.

    Attributes:
        candidate: the asked point.
        result: the full :class:`RunResult` row (metrics, spec hash,
            error).
        scores: sign-normalised objective values (lower is better;
            ``inf`` marks infeasibility), one per driver objective.
        cached: True when the result came out of the store for free.
    """

    candidate: Candidate
    result: Any
    scores: Tuple[float, ...]
    cached: bool = False

    @property
    def feasible(self) -> bool:
        """True when every objective scored finite."""
        return all(math.isfinite(s) for s in self.scores)


class Optimizer:
    """Base ask/tell optimizer; subclasses implement :meth:`ask`/`tell`.

    Args:
        space: the search space to draw candidates from.
        objectives: the driver's objectives (scores arrive in this
            order).
        budget: total evaluations this optimizer may ask for.
        seed: RNG seed — the determinism anchor: one seed, one candidate
            sequence, which is what makes re-runs pure cache hits.
    """

    #: Registry key; set by :func:`register_optimizer`.
    name: Optional[str] = None

    def __init__(
        self,
        space: SearchSpace,
        objectives: Sequence[Objective],
        budget: int,
        seed: int = 0,
    ):
        if budget < 1:
            raise ExploreError(f"budget must be >= 1, got {budget!r}")
        self.space = space
        self.objectives = tuple(objectives)
        self.budget = budget
        self.rng = random.Random(seed)
        self.evaluations: List[Evaluation] = []
        self._asked = 0

    # -- the protocol ----------------------------------------------------

    def ask(self) -> List[Candidate]:
        """The next batch to evaluate; empty means the optimizer is done."""
        raise NotImplementedError

    def tell(self, evaluations: Sequence[Evaluation]) -> None:
        """Record one evaluation per previously asked candidate, in order."""
        self.evaluations.extend(evaluations)

    @property
    def done(self) -> bool:
        """True once no further ask will produce candidates."""
        return self._asked >= self.budget

    # -- shared bookkeeping ---------------------------------------------

    def _take(self, wanted: int) -> int:
        """Clamp a batch size to the remaining budget and account for it."""
        granted = max(0, min(wanted, self.budget - self._asked))
        self._asked += granted
        return granted

    # -- result views ----------------------------------------------------

    def feasible(self) -> List[Evaluation]:
        """Every feasible evaluation told so far."""
        return [e for e in self.evaluations if e.feasible]

    def _answer_pool(self) -> List[Evaluation]:
        """Feasible evaluations at the highest fidelity any reached.

        Screening runs must never *be* the answer: a 60%-horizon row
        accumulates less energy (time, cycles, ...) than any full run,
        so comparing across fidelities would systematically crown a
        low-fidelity artifact.  Restricting to the top fidelity seen
        makes answers commensurable; for single-fidelity optimizers it
        is the identity.
        """
        feasible = self.feasible()
        if not feasible:
            return []
        top = max(e.candidate.fidelity for e in feasible)
        return [e for e in feasible if e.candidate.fidelity == top]

    def best(self) -> Optional[Evaluation]:
        """The evaluation minimising the score tuple (None if none ran).

        Single-objective explorations get *the* optimum; multi-objective
        ones get the lexicographic-best corner of the frontier — use
        :meth:`frontier` for the full trade-off.  Only evaluations at
        the highest fidelity reached compete (see :meth:`_answer_pool`),
        so ``best.result`` always carries metrics measured over the same
        horizon/kernel as its rivals.
        """
        pool = self._answer_pool()
        if not pool:
            return None
        return min(pool, key=lambda e: e.scores)

    def frontier(self) -> List[Evaluation]:
        """Non-dominated feasible evaluations, deduped by spec hash.

        Like :meth:`best`, ranked within the highest fidelity reached —
        dominance across horizons would not be meaningful.
        """
        pool = self._answer_pool()
        frontier = [
            pool[i] for i in non_dominated_indices([e.scores for e in pool])
        ]
        seen: Dict[str, Evaluation] = {}
        for evaluation in frontier:
            seen.setdefault(evaluation.result.spec_hash, evaluation)
        return list(seen.values())


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


_OPTIMIZERS: Dict[str, Type[Optimizer]] = {}


def register_optimizer(name: str) -> Callable[[Type[Optimizer]], Type[Optimizer]]:
    """Class decorator registering an optimizer under a string key."""
    if not name:
        raise ExploreError("an optimizer needs a non-empty registry name")

    def decorator(cls: Type[Optimizer]) -> Type[Optimizer]:
        existing = _OPTIMIZERS.get(name)
        if existing is not None and existing is not cls:
            raise ExploreError(f"optimizer {name!r} is already registered")
        cls.name = name
        _OPTIMIZERS[name] = cls
        return cls

    return decorator


def available_optimizers() -> List[str]:
    """Registered optimizer names, sorted."""
    return sorted(_OPTIMIZERS)


def create_optimizer(
    name: str,
    space: SearchSpace,
    objectives: Sequence[Objective],
    budget: int,
    seed: int = 0,
    **params: Any,
) -> Optimizer:
    """Instantiate a registered optimizer; unknown keys fail actionably."""
    cls = _OPTIMIZERS.get(name)
    if cls is None:
        raise ExploreError(
            f"unknown optimizer {name!r}; available: {available_optimizers()}"
        )
    try:
        return cls(space, objectives, budget, seed=seed, **params)
    except TypeError as error:
        raise ExploreError(
            f"optimizer {name!r} rejected its parameters: {error}"
        ) from error


# ---------------------------------------------------------------------------
# Implementations
# ---------------------------------------------------------------------------


@register_optimizer("grid")
class GridSearch(Optimizer):
    """Exhaustive full-fidelity evaluation of a discretised space.

    The optimizer equivalent of handing :meth:`SearchSpace.grid` to
    :class:`SweepRunner` — every point at full horizon.  It exists as
    the baseline the budgeted optimizers are measured against (see
    ``benchmarks/perf/perf_explore.py``), and as the exploration-engine
    way to run a plain grid with store-backed memoisation.

    Args:
        resolution: per-axis grid resolution (default 5); the grid is
            truncated to the budget in enumeration order.
    """

    def __init__(self, space, objectives, budget, seed=0, resolution=5):
        super().__init__(space, objectives, budget, seed=seed)
        self._points = space.grid(resolution)

    def ask(self) -> List[Candidate]:
        granted = self._take(len(self._points))
        batch = [Candidate(point) for point in self._points[:granted]]
        self._points = self._points[granted:]
        if not batch:
            self._points = []
        return batch

    @property
    def done(self) -> bool:
        return not self._points or super().done


@register_optimizer("random")
class RandomSearch(Optimizer):
    """Budgeted random sampling at full fidelity.

    The honest baseline for any smarter search — and surprisingly
    strong in low-dimensional design spaces.

    Args:
        batch: candidates per ask (defaults to a pool-friendly 8).
    """

    def __init__(self, space, objectives, budget, seed=0, batch=8):
        super().__init__(space, objectives, budget, seed=seed)
        if batch < 1:
            raise ExploreError(f"batch must be >= 1, got {batch!r}")
        self.batch = batch

    def ask(self) -> List[Candidate]:
        granted = self._take(self.batch)
        return [Candidate(self.space.sample(self.rng)) for _ in range(granted)]


@register_optimizer("successive-halving")
class SuccessiveHalving(Optimizer):
    """Multi-fidelity screening: eliminate cheaply, confirm expensively.

    Rung 0 evaluates ``initial`` candidates at ``min_fidelity`` — the
    driver maps that to the fast kernel over a proportionally shortened
    horizon, a small fraction of a reference run's cost.  Each
    subsequent rung keeps the best ``1/eta`` of the previous rung
    (ranked by the *first* objective's score; infeasible scores rank
    last) and re-evaluates them at ``eta``-times the fidelity, ending at
    full fidelity — full horizon, the base spec's own (reference)
    kernel.  Only rung survivors ever cost a full-horizon simulation,
    which is the whole economy of the method.

    Args:
        initial: rung-0 width; defaults to filling the budget across the
            fidelity schedule.
        eta: elimination factor between rungs (default 3).
        min_fidelity: rung-0 fidelity (default ``1/eta``).  Choose it so
            the signal survives the shortened horizon — e.g. for
            completion-gated objectives, longer than the expected
            completion time fraction.
        init: ``"random"`` rung-0 sampling, or ``"grid"`` to screen a
            discretised grid (making the answer directly comparable to
            :class:`GridSearch` over the same resolution).
        resolution: per-axis grid resolution when ``init="grid"``.
            Defaults to a balanced resolution whose cartesian product
            is close to ``initial`` (for a single numeric axis: exactly
            ``initial``).  When the grid still exceeds ``initial``
            points, rung 0 screens a seeded uniform subsample — never a
            corner slice, which would silently pin early axes to their
            low bounds.
    """

    def __init__(self, space, objectives, budget, seed=0, initial=None,
                 eta=3, min_fidelity=None, init="random", resolution=None):
        super().__init__(space, objectives, budget, seed=seed)
        if eta < 2:
            raise ExploreError(f"eta must be >= 2, got {eta!r}")
        self.eta = eta
        if min_fidelity is None:
            min_fidelity = 1.0 / eta
        if not (0.0 < min_fidelity <= 1.0):
            raise ExploreError(
                f"min_fidelity must be in (0, 1], got {min_fidelity!r}"
            )
        if init not in ("random", "grid"):
            raise ExploreError(
                f"init must be 'random' or 'grid', got {init!r}"
            )
        self.fidelities = self._schedule(min_fidelity, eta)
        weight = sum(eta ** -k for k in range(len(self.fidelities)))
        if initial is None:
            initial = max(eta, int(budget / weight))
        if initial < 2:
            raise ExploreError(f"initial must be >= 2, got {initial!r}")
        self.initial = initial
        self.init = init
        if resolution is None:
            resolution = self._balanced_resolution(space, initial)
        self.resolution = resolution
        self._rung = 0
        self._pending: Optional[List[Candidate]] = None
        self._survivors: Optional[List[Dict[str, Any]]] = None
        self._finished = False

    @staticmethod
    def _balanced_resolution(space: SearchSpace, initial: int) -> int:
        """A per-axis resolution whose full grid is close to ``initial``.

        Categorical axes contribute their fixed choice counts; the
        numeric axes share the remaining budget evenly, so a two-axis
        space screens a 4x4 lattice for ``initial=16`` instead of a
        16x16 grid truncated to its first corner.
        """
        numeric = sum(1 for axis in space.axes if axis.kind != "categorical")
        if numeric == 0:
            return 2  # grids of pure-categorical spaces ignore resolution
        fixed = 1
        for axis in space.axes:
            if axis.kind == "categorical":
                fixed *= len(axis.choices)
        budget = max(1, initial // fixed)
        return max(2, int(round(budget ** (1.0 / numeric))))

    def _spread(self, points: List[Dict[str, Any]],
                count: int) -> List[Dict[str, Any]]:
        """At most ``count`` points as a seeded, order-preserving
        uniform subsample — coverage of every axis is kept, unlike a
        prefix slice of an enumeration-ordered grid."""
        if len(points) <= count:
            return points
        chosen = sorted(self.rng.sample(range(len(points)), count))
        return [points[i] for i in chosen]

    def _initial_grid(self) -> List[Dict[str, Any]]:
        """The rung-0 screening points for ``init="grid"``."""
        return self._spread(self.space.grid(self.resolution), self.initial)

    @staticmethod
    def _schedule(min_fidelity: float, eta: float) -> List[float]:
        """Geometric fidelity ladder from ``min_fidelity`` up to 1.0."""
        fidelities = []
        fidelity = min_fidelity
        while fidelity < 1.0:
            fidelities.append(fidelity)
            fidelity *= eta
        fidelities.append(1.0)
        return fidelities

    def _rung_width(self, rung: int) -> int:
        return max(1, int(self.initial / self.eta ** rung))

    def ask(self) -> List[Candidate]:
        if self.done:
            return []
        if self._pending is not None:
            raise ExploreError(
                "successive-halving asked twice without a tell in between"
            )
        fidelity = self.fidelities[self._rung]
        if self._rung == 0:
            if self.init == "grid":
                points = self._initial_grid()
            else:
                points = [self.space.sample(self.rng)
                          for _ in range(self.initial)]
        else:
            points = self._survivors or []
        width = min(self._rung_width(self._rung), len(points))
        granted = self._take(width)
        if self._rung == 0 and self.init == "grid":
            # A budget smaller than the screen must thin the grid
            # uniformly, not slice its low corner (later rungs are
            # rank-ordered, so their prefix *is* the right cut).
            selected = self._spread(points, granted)
        else:
            selected = points[:granted]
        self._pending = [
            Candidate(point, fidelity=fidelity) for point in selected
        ]
        if not self._pending:
            self._finished = True
            self._pending = None
            return []
        return list(self._pending)

    def tell(self, evaluations: Sequence[Evaluation]) -> None:
        if self._pending is None:
            raise ExploreError(
                "successive-halving told without a pending ask"
            )
        super().tell(evaluations)
        # Rank this rung by the primary objective (stable: ties keep
        # ask order), promote the top 1/eta to the next fidelity.
        ranked = sorted(
            evaluations, key=lambda e: e.scores[0] if e.scores else math.inf
        )
        self._pending = None
        self._rung += 1
        if self._rung >= len(self.fidelities):
            self._finished = True
            return
        keep = min(self._rung_width(self._rung), len(ranked))
        self._survivors = [
            dict(e.candidate.overrides) for e in ranked[:keep]
        ]
        if not self._survivors:
            self._finished = True

    @property
    def done(self) -> bool:
        return self._finished or super().done


@register_optimizer("evolutionary")
class ParetoEvolutionary(Optimizer):
    """Pareto-aware evolutionary search for multi-objective goals.

    NSGA-lite: each generation ranks the population into non-dominated
    fronts (via :func:`non_dominated_indices` over the sign-normalised
    score tuples), takes the best half as parents, and produces
    offspring by uniform crossover plus per-axis mutation
    (:meth:`Axis.mutate` — gaussian in the axis's own metric,
    choice-resampling for categorical axes).  With a single objective
    it degrades gracefully to elitist evolution; with several it grows
    an approximation of the Pareto frontier, which :meth:`frontier`
    returns.

    Args:
        population: candidates per generation.
        mutation: per-axis mutation probability.
        mutation_scale: gaussian step as a fraction of the axis range.
        fidelity: evaluation fidelity for every candidate (default
            full).
    """

    def __init__(self, space, objectives, budget, seed=0, population=12,
                 mutation=0.35, mutation_scale=0.25, fidelity=FULL_FIDELITY):
        super().__init__(space, objectives, budget, seed=seed)
        if population < 2:
            raise ExploreError(
                f"population must be >= 2, got {population!r}"
            )
        if not (0.0 <= mutation <= 1.0):
            raise ExploreError(
                f"mutation must be in [0, 1], got {mutation!r}"
            )
        self.population = population
        self.mutation = mutation
        self.mutation_scale = mutation_scale
        self.fidelity = fidelity

    def _parents(self) -> List[Evaluation]:
        """The better half of everything seen, by non-dominated front."""
        pool = self.feasible()
        parents: List[Evaluation] = []
        wanted = max(2, self.population // 2)
        while pool and len(parents) < wanted:
            front_idx = set(non_dominated_indices([e.scores for e in pool]))
            parents.extend(e for i, e in enumerate(pool) if i in front_idx)
            pool = [e for i, e in enumerate(pool) if i not in front_idx]
        return parents[:wanted] if len(parents) >= 2 else parents

    def _offspring(self, parents: List[Evaluation]) -> Dict[str, Any]:
        a, b = (self.rng.sample(parents, 2) if len(parents) >= 2
                else (parents[0], parents[0]))
        child: Dict[str, Any] = {}
        for axis in self.space.axes:
            source = a if self.rng.random() < 0.5 else b
            value = source.candidate.overrides[axis.name]
            if self.rng.random() < self.mutation:
                value = axis.mutate(value, self.rng, self.mutation_scale)
            child[axis.name] = value
        return child

    def ask(self) -> List[Candidate]:
        granted = self._take(self.population)
        if granted == 0:
            return []
        parents = self._parents()
        if not parents:
            # Generation zero (or nothing feasible yet): sample fresh.
            points = [self.space.sample(self.rng) for _ in range(granted)]
        else:
            points = [self._offspring(parents) for _ in range(granted)]
        return [Candidate(point, fidelity=self.fidelity) for point in points]
