"""The exploration driver: budgeted optimisation over real simulations.

:class:`ExplorationDriver` closes the loop between an ask/tell
:class:`~repro.explore.optimizers.Optimizer` and the rest of the
framework:

* candidate overrides become runnable specs via
  :meth:`ScenarioSpec.with_overrides`, with sub-full fidelity mapped to
  the fast kernel over a proportionally shortened horizon
  (:meth:`spec_for` — the engine's entire fidelity model);
* batches evaluate through the same process-pool worker a sweep uses
  (:func:`repro.spec.runner.execute_payloads`), so scenario failures pin
  error rows instead of killing the exploration;
* every evaluation persists as a :class:`RunResult` in a
  :class:`ResultStore`, keyed by spec hash — re-asked points (within a
  run or across resumed runs) cost a dictionary lookup, which is why an
  immediate re-run of a seeded exploration recomputes *nothing*;
* per-batch :class:`BatchProgress` events keep long explorations
  legible (computed vs cached vs error counts).
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExploreError
from repro import obs
from repro.explore.objectives import Objective, normalize_objectives, scores
from repro.explore.optimizers import (
    FULL_FIDELITY,
    Candidate,
    Evaluation,
    Optimizer,
    create_optimizer,
)
from repro.explore.space import SearchSpace
from repro.results.metrics import result_columns
from repro.results.run_result import RunResult, spec_hash
from repro.results.store import ResultStore
from repro.spec.runner import (
    BatchProgress,
    ProgressHook,
    WarmPool,
    _is_worker_crash,
    execute_payloads,
    flatten_batch_records,
    group_batch_payloads,
)
from repro.spec.specs import ScenarioSpec


@dataclass(frozen=True)
class ExplorationResult:
    """Everything one exploration run produced, summarised.

    Attributes:
        name: the base scenario's name.
        objectives: the objectives candidates were scored on.
        evaluations: every evaluation, in ask order.
        best: the feasible evaluation minimising the score tuple, or
            None when nothing was feasible.
        frontier: non-dominated feasible evaluations (multi-objective
            explorations; a single objective collapses it to ``best``).
        computed / cached: how evaluations were satisfied (in-run and
            store dedupe both count as cached).
        computed_full: *computed* evaluations at full fidelity — the
            currency multi-fidelity search economises (each one is a
            full-horizon reference simulation).
        errors: evaluations whose row carries an error (infeasible
            corners, worker crashes).
        batches: optimizer ask/tell round-trips.
        budget: the evaluation budget the run was given.
    """

    name: str
    objectives: Tuple[Objective, ...]
    evaluations: List[Evaluation] = field(default_factory=list)
    best: Optional[Evaluation] = None
    frontier: List[Evaluation] = field(default_factory=list)
    computed: int = 0
    cached: int = 0
    computed_full: int = 0
    errors: int = 0
    batches: int = 0
    budget: int = 0

    def __len__(self) -> int:
        return len(self.evaluations)

    def feasible(self) -> List[Evaluation]:
        return [e for e in self.evaluations if e.feasible]

    def columns(self) -> List[str]:
        """Table layout: axis overrides, fidelity, then objective metrics."""
        axis_names: List[str] = []
        for evaluation in self.evaluations:
            for key in evaluation.candidate.overrides:
                if key not in axis_names:
                    axis_names.append(key)
        metric_names = [
            o.metric for o in self.objectives if o.metric not in axis_names
        ]
        return axis_names + ["fidelity"] + metric_names + ["feasible"]

    def rows(self, top: Optional[int] = None) -> List[List[Any]]:
        """One row per evaluation, best-ranked first.

        ``top`` truncates to the N best; infeasible evaluations rank
        after every feasible one (and are dropped entirely when ``top``
        is given and enough feasible rows exist).
        """
        ordered = sorted(self.evaluations, key=lambda e: e.scores)
        if top is not None:
            ordered = ordered[:top]
        columns = self.columns()
        rows = []
        for evaluation in ordered:
            row: List[Any] = []
            for column in columns:
                if column == "fidelity":
                    row.append(evaluation.candidate.fidelity)
                elif column == "feasible":
                    row.append(evaluation.feasible)
                elif column in evaluation.candidate.overrides:
                    row.append(evaluation.candidate.overrides[column])
                else:
                    row.append(evaluation.result.get(column))
            rows.append(row)
        return rows

    def format(self, top: int = 10, floatfmt: str = "{:.4g}") -> str:
        """The ranked evaluation table as aligned text."""
        from repro.analysis.report import format_table

        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, bool):
                return "yes" if value else "no"
            if isinstance(value, float):
                return floatfmt.format(value)
            return str(value)

        return format_table(
            self.columns(),
            [[fmt(cell) for cell in row] for row in self.rows(top=top)],
        )

    def describe(self) -> str:
        """A one-paragraph summary of how the budget was spent."""
        lines = [
            f"exploration: {self.name}, "
            f"{len(self.evaluations)} evaluation(s) in {self.batches} "
            f"batch(es) (budget {self.budget})",
            f"  {self.computed} computed ({self.computed_full} at full "
            f"fidelity), {self.cached} cached, {self.errors} error(s)",
        ]
        if self.best is None:
            lines.append("  no feasible evaluation")
        else:
            objective = self.objectives[0]
            value = objective.value(self.best.result)
            lines.append(
                f"  best ({objective.describe()}): "
                f"{self.best.candidate.overrides} -> {value:.6g}"
            )
        if len(self.objectives) > 1 and self.frontier:
            lines.append(
                f"  frontier: {len(self.frontier)} non-dominated point(s)"
            )
        return "\n".join(lines)


class ExplorationDriver:
    """Evaluate optimizer candidates against real (memoised) simulations.

    Args:
        base: the scenario every candidate perturbs.
        space: the search space; validated against ``base`` eagerly.
        objectives: Objectives (or ``"metric[:min|max]"`` strings) to
            score evaluations on; metrics must be registry columns or
            search-axis overrides.
        optimizer: registry name (see
            :func:`~repro.explore.optimizers.available_optimizers`) or a
            ready :class:`Optimizer` instance.
        optimizer_params: extra keyword arguments for a by-name
            optimizer.
        store: persist every evaluation here; with ``resume`` (the
            default) previously stored rows satisfy re-asked candidates
            for free.  A path opens one — ``.colstore`` selects the
            sharded columnar backend, anything else JSONL
            (``store_backend`` overrides).
        resume: reuse rows the store already holds (stored worker-crash
            rows are never reused).
        parallel / max_workers: process-pool knobs, as for
            :class:`SweepRunner`.
        seed: optimizer RNG seed — fix it and a re-run asks the
            identical candidate sequence (the cache-hit guarantee).
        progress: optional per-batch :class:`BatchProgress` hook.
        pool: a caller-managed :class:`WarmPool` to evaluate on.  The
            driver then leaves lifecycle to the caller (the pool stays
            open after :meth:`run`) — how the ``repro serve`` executor
            shares one warm pool across every job.
        batch_size: evaluate each ask-batch through the batched SoA
            kernel, grouping same-topology candidates into batches of up
            to this many members (``0`` = auto, ``None``/``1`` =
            per-candidate execution).  Results and spec hashes are
            identical either way.
    """

    def __init__(
        self,
        base: ScenarioSpec,
        space: SearchSpace,
        objectives: Sequence[Any],
        *,
        optimizer: Union[str, Optimizer] = "successive-halving",
        optimizer_params: Optional[Dict[str, Any]] = None,
        store: Optional[Union[ResultStore, str, "os.PathLike[str]"]] = None,
        resume: bool = True,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        seed: int = 0,
        progress: Optional[ProgressHook] = None,
        pool: Optional[WarmPool] = None,
        store_backend: Optional[str] = None,
        batch_size: Optional[int] = None,
    ):
        self.base = base
        self.space = space
        space.validate_against(base)
        self.objectives = normalize_objectives(objectives)
        known = list(space.names()) + result_columns()
        for objective in self.objectives:
            objective.validate(known)
            # A categorical axis can never score (values are not
            # numbers): fail before the first simulation, not after the
            # whole budget scored +inf.
            if objective.metric in space.names() and \
                    space.axis(objective.metric).kind == "categorical":
                raise ExploreError(
                    f"objective {objective.metric!r} is a categorical "
                    "axis; objectives need numeric columns — make the "
                    "category an axis and optimise a metric instead"
                )
        if isinstance(optimizer, Optimizer) and optimizer_params:
            raise ExploreError(
                "optimizer_params only apply when the optimizer is "
                "given by name"
            )
        self.optimizer = optimizer
        self.optimizer_params = dict(optimizer_params or {})
        if store is not None and not isinstance(store, ResultStore):
            # A path selects its backend by suffix (`.colstore` ->
            # columnar) unless store_backend overrides it.
            store = ResultStore(store, backend=store_backend)
        self.store = store
        self.resume = resume
        self.parallel = parallel
        self.max_workers = max_workers
        self.seed = seed
        self.progress = progress
        self.batch_size = batch_size
        #: A caller-owned pool shared across runs (never closed here).
        self._external_pool = pool
        #: The warm-worker pool serving the current run(), if parallel.
        self._pool: Optional[WarmPool] = None
        #: Batched-kernel stats from the most recent _evaluate() call
        #: (empty when nothing batched); surfaced on progress events.
        self._last_batch_stats: Dict[str, int] = {}

    # -- the fidelity model ----------------------------------------------

    def spec_for(self, candidate: Candidate) -> ScenarioSpec:
        """The runnable spec for one candidate: overrides plus fidelity.

        Full fidelity is the base spec with the candidate's overrides —
        full horizon, the base's own kernel.  Sub-full fidelity
        substitutes the fast kernel and scales the *candidate's* horizon
        (so a searched ``duration`` axis keeps its per-candidate value,
        just shortened) by the fidelity: cheap, monotone (raising
        fidelity only extends the horizon), and honest — the fast
        kernel matches the reference to 1e-9, so the *only* information
        lost is whatever happens after the shortened horizon.  Because
        fidelity lands in ``duration``/``kernel``, it participates in
        the spec hash: evaluations at different fidelities cache
        independently.
        """
        spec = self.base.with_overrides(candidate.overrides)
        if candidate.fidelity < FULL_FIDELITY:
            spec = spec.with_override(
                "duration", spec.duration * candidate.fidelity
            )
            spec = spec.with_override("kernel", "fast")
        return spec

    # -- evaluation ------------------------------------------------------

    def _make_optimizer(self, budget: Optional[int]) -> Optimizer:
        if isinstance(self.optimizer, Optimizer):
            if budget is not None and budget != self.optimizer.budget:
                raise ExploreError(
                    "pass the budget either to run() or to the optimizer "
                    "instance, not two different values"
                )
            if self.optimizer._asked:
                # A consumed instance would make run() return an empty
                # evaluation list alongside the stale best/frontier of
                # its first drive — self-contradictory numbers.
                raise ExploreError(
                    "this optimizer instance was already driven; pass a "
                    "fresh instance (or the optimizer by name, which is "
                    "rebuilt per run) to explore again"
                )
            return self.optimizer
        if budget is None:
            raise ExploreError(
                "run() needs a budget when the optimizer is given by name"
            )
        return create_optimizer(
            self.optimizer,
            self.space,
            self.objectives,
            budget,
            seed=self.seed,
            **self.optimizer_params,
        )

    def _build_specs(
        self, batch: Sequence[Candidate], seen: Dict[str, RunResult]
    ) -> Tuple[List[Optional[ScenarioSpec]], List[str], List[int]]:
        """Specs and cache keys per candidate; build failures pin rows.

        Individual axis values are validated eagerly
        (:meth:`SearchSpace.validate_against`), but a cross-axis
        *combination* can still be unbuildable (a strategy choice
        rejecting another axis's strategy param).  Those are
        deterministic outcomes: they become error rows keyed by the
        candidate's content hash — cached and persisted like any
        infeasible scenario — instead of killing the exploration
        mid-budget.  The returned indices are the batch positions whose
        failure row was pinned *fresh* here (counted as computed work;
        store- or seen-satisfied failures count as cached).
        """
        from repro.errors import SpecError
        from repro.results.run_result import content_hash

        specs: List[Optional[ScenarioSpec]] = []
        keys: List[str] = []
        fresh_failures: List[int] = []
        for i, candidate in enumerate(batch):
            try:
                spec = self.spec_for(candidate)
                key = spec_hash(spec)
            except SpecError as error:
                spec = None
                key = content_hash({
                    "base": spec_hash(self.base),
                    "overrides": candidate.overrides,
                    "fidelity": candidate.fidelity,
                })
                if key not in seen:
                    stored = (self.store.get(key)
                              if self.resume and self.store is not None
                              else None)
                    if stored is not None and not _is_worker_crash(stored):
                        seen[key] = stored
                    else:
                        failed = RunResult.failed(
                            f"{type(error).__name__}: {error}",
                            spec_hash=key,
                            name=self.base.name,
                            overrides=dict(candidate.overrides),
                        )
                        seen[key] = failed
                        fresh_failures.append(i)
                        if self.store is not None:
                            self.store.add(failed, overwrite=True)
            specs.append(spec)
            keys.append(key)
        return specs, keys, fresh_failures

    def _evaluate(
        self, batch: Sequence[Candidate], seen: Dict[str, RunResult],
        index_base: int,
    ) -> Tuple[List[Evaluation], int, int]:
        """Satisfy one batch; returns (evaluations, computed, full)."""
        specs, hashes, fresh_failures = self._build_specs(batch, seen)
        to_compute: List[int] = []
        for i, key in enumerate(hashes):
            if key in seen:
                continue
            if self.resume and self.store is not None:
                stored = self.store.get(key)
                if stored is not None and not _is_worker_crash(stored):
                    seen[key] = stored.with_context(
                        index=index_base + i, spec=specs[i]
                    )
                    continue
            if key not in {hashes[j] for j in to_compute}:
                to_compute.append(i)
        payloads = []
        for i in to_compute:
            overrides = dict(batch[i].overrides)
            if batch[i].fidelity != FULL_FIDELITY:
                overrides["fidelity"] = batch[i].fidelity
            # Warm-worker task: ship only the override dict that
            # reproduces spec_for(candidate) against the shared base —
            # the candidate's axes plus, at sub-full fidelity, the
            # already-scaled horizon and the fast kernel.
            task = dict(batch[i].overrides)
            if batch[i].fidelity < FULL_FIDELITY:
                task["duration"] = specs[i].duration
                task["kernel"] = specs[i].kernel
            payloads.append({
                "spec_overrides": task,
                "overrides": overrides,
            })
        self._last_batch_stats = {}
        if (self.batch_size is not None and self.batch_size != 1
                and len(payloads) > 1):
            grouped, order = group_batch_payloads(
                payloads, [specs[i] for i in to_compute], self.batch_size
            )
            raw = execute_payloads(
                grouped,
                parallel=self.parallel,
                max_workers=self.max_workers,
                base_spec=self.base.to_dict(),
                pool=self._pool,
            )
            flat, self._last_batch_stats = flatten_batch_records(raw)
            records: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
            for position, record in zip(order, flat):
                records[position] = record
            from repro.spec.runner import WORKER_FAILURE_PREFIX

            records = [
                record if record is not None else RunResult.failed(
                    f"{WORKER_FAILURE_PREFIX}batch worker returned no "
                    "record",
                    spec_hash=hashes[to_compute[position]],
                    name=self.base.name,
                    overrides=dict(batch[to_compute[position]].overrides),
                ).to_record()
                for position, record in enumerate(records)
            ]
        else:
            records = execute_payloads(
                payloads,
                parallel=self.parallel,
                max_workers=self.max_workers,
                base_spec=self.base.to_dict(),
                pool=self._pool,
            )
        computed_full = 0
        transient: Dict[str, RunResult] = {}
        store_batch = (
            self.store.batch() if self.store is not None
            else nullcontext()
        )
        with store_batch:
            for i, record in zip(to_compute, records):
                result = RunResult.from_record(record).with_context(
                    index=index_base + i, spec=specs[i]
                )
                if batch[i].fidelity == FULL_FIDELITY:
                    computed_full += 1
                # Deterministic outcomes (successes and infeasible-
                # scenario error rows) are cacheable; worker crashes stay
                # transient — out of the store AND the in-run map, so a
                # later re-ask of the point retries it, exactly as
                # SweepRunner's resume does.
                if _is_worker_crash(result):
                    transient[hashes[i]] = result
                else:
                    seen[hashes[i]] = result
                    if self.store is not None:
                        self.store.add(result, overwrite=True)
        evaluations = []
        computed_indices = set(to_compute) | set(fresh_failures)
        for j, (candidate, key) in enumerate(zip(batch, hashes)):
            result = seen.get(key, transient.get(key))
            evaluations.append(Evaluation(
                candidate=candidate,
                result=result,
                scores=scores(self.objectives, result),
                # Per-evaluation accounting matches the run totals: only
                # the occurrence that paid for the outcome (a worker run,
                # or pinning a fresh build-failure row) is non-cached;
                # in-batch duplicates and store hits are cache hits.
                cached=j not in computed_indices,
            ))
        return evaluations, len(computed_indices), computed_full

    def run(self, budget: Optional[int] = None) -> ExplorationResult:
        """Drive the optimizer until it finishes or exhausts the budget."""
        optimizer = self._make_optimizer(budget)
        seen: Dict[str, RunResult] = {}
        evaluations: List[Evaluation] = []
        computed = cached = computed_full = batches = 0
        # One warm pool for the whole exploration: workers initialise
        # from the base spec once and serve every optimizer batch.  A
        # caller-owned pool takes precedence and outlives the run.
        owns_pool = self._external_pool is None and self.parallel
        self._pool = self._external_pool or (
            WarmPool(
                max_workers=self.max_workers,
                base_spec=self.base.to_dict(),
            )
            if self.parallel else None
        )
        explore_span = obs.span("explore.run", label=self.base.name)
        explore_span.__enter__()
        try:
            while not optimizer.done:
                batch = optimizer.ask()
                if not batch:
                    break
                batch_evals, batch_computed, batch_full = self._evaluate(
                    batch, seen, index_base=len(evaluations)
                )
                optimizer.tell(batch_evals)
                evaluations.extend(batch_evals)
                computed += batch_computed
                computed_full += batch_full
                cached += len(batch_evals) - batch_computed
                batches += 1
                # Progress always flows through the obs layer first (one
                # shared stream), then to any caller hook.
                stats = self._last_batch_stats
                event = BatchProgress(
                    label=self.base.name,
                    batch=batches,
                    computed=batch_computed,
                    cached=len(batch_evals) - batch_computed,
                    errors=sum(
                        1 for e in batch_evals
                        if e.result.error is not None
                    ),
                    total=len(evaluations),
                    members=stats.get("members") if stats else None,
                    passes=stats.get("passes"),
                    advanced=stats.get("advanced"),
                    settled=stats.get("settled"),
                    diverged=stats.get("diverged"),
                )
                obs.record_progress(event)
                if self.progress is not None:
                    self.progress(event)
        finally:
            explore_span.annotate(batches=batches, computed=computed)
            explore_span.__exit__(None, None, None)
            if self._pool is not None and owns_pool:
                self._pool.close()
            self._pool = None
        frontier = optimizer.frontier()
        return ExplorationResult(
            name=self.base.name,
            objectives=self.objectives,
            evaluations=evaluations,
            best=optimizer.best(),
            frontier=frontier,
            computed=computed,
            cached=cached,
            computed_full=computed_full,
            errors=sum(1 for e in evaluations if e.result.error is not None),
            batches=batches,
            budget=optimizer.budget,
        )
