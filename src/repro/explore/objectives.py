"""Objectives: how an exploration scores a finished run.

An :class:`Objective` names one column of the results pipeline — a
metric-registry column or a search-axis override — an optimisation
direction, and optionally a feasibility column that must be truthy
(e.g. *minimise capacitance subject to ``completed``*).  Scoring is
sign-normalised (lower is always better internally) and total: error
rows, missing/non-finite values and unmet feasibility all score
``+inf``, so optimizers rank every evaluation without special-casing
failures — an infeasible Eq. (4) corner simply loses to everything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ExploreError

INFEASIBLE = float("inf")


@dataclass(frozen=True)
class Objective:
    """One optimisation target over result columns.

    Attributes:
        metric: the column to optimise; resolves like
            :meth:`RunResult.__getitem__` (overrides first, then the
            metric registry).
        goal: ``"min"`` or ``"max"``.
        require: optional column that must be truthy for a row to be
            feasible at all — the constraint half of problems like
            "smallest capacitor that *completes* the workload".
    """

    metric: str
    goal: str = "min"
    require: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.metric:
            raise ExploreError("an objective needs a metric column name")
        if self.goal not in ("min", "max"):
            raise ExploreError(
                f"objective {self.metric!r}: goal must be 'min' or 'max', "
                f"got {self.goal!r}"
            )

    @property
    def minimize(self) -> bool:
        return self.goal == "min"

    # -- parsing ---------------------------------------------------------

    @classmethod
    def parse(cls, text: str, require: Optional[str] = None) -> "Objective":
        """Build from the CLI form ``metric`` or ``metric:max``."""
        metric, sep, goal = text.partition(":")
        if not sep:
            return cls(metric=metric, require=require)
        return cls(metric=metric, goal=goal, require=require)

    # -- scoring ---------------------------------------------------------

    def value(self, result: Any) -> Optional[float]:
        """The raw (un-normalised) column value, or None when absent."""
        value = result.get(self.metric)
        if value is None or isinstance(value, str):
            return None
        return float(value)

    def score(self, result: Any) -> float:
        """Sign-normalised rank value: lower is better, inf is infeasible.

        Infeasible means: the run failed (error row), the metric is
        missing or non-finite, or ``require`` resolved falsy.
        """
        if not result.ok:
            return INFEASIBLE
        if self.require is not None and not result.get(self.require):
            return INFEASIBLE
        value = self.value(result)
        if value is None or not math.isfinite(value):
            return INFEASIBLE
        return value if self.minimize else -value

    # -- validation ------------------------------------------------------

    def validate(self, known_columns: Iterable[str]) -> None:
        """Reject metrics (and requirements) no column will ever carry."""
        known = list(known_columns)
        for column in filter(None, (self.metric, self.require)):
            if column not in known:
                raise ExploreError(
                    f"objective column {column!r} is not a result column; "
                    f"choose from {sorted(known)}"
                )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"metric": self.metric}
        if self.goal != "min":
            payload["goal"] = self.goal
        if self.require is not None:
            payload["require"] = self.require
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Objective":
        unknown = sorted(set(payload) - {"metric", "goal", "require"})
        if unknown:
            raise ExploreError(
                f"unknown key(s) {unknown} in objective payload; allowed: "
                "['metric', 'goal', 'require']"
            )
        if "metric" not in payload:
            raise ExploreError("objective payload is missing 'metric'")
        return cls(
            metric=payload["metric"],
            goal=payload.get("goal", "min"),
            require=payload.get("require"),
        )

    def describe(self) -> str:
        """Human form: ``min capacitance (require completed)``."""
        suffix = f" (require {self.require})" if self.require else ""
        return f"{self.goal} {self.metric}{suffix}"


def normalize_objectives(
    objectives: Sequence[Any], require: Optional[str] = None
) -> Tuple[Objective, ...]:
    """Coerce a mixed list (strings, dicts, Objectives) into Objectives.

    ``require`` is applied to entries that do not already carry one —
    the CLI's single ``--require`` flag distributing over every
    ``--objective``.
    """
    if not objectives:
        raise ExploreError("an exploration needs at least one objective")
    normalized: List[Objective] = []
    for entry in objectives:
        if isinstance(entry, Objective):
            objective = entry
        elif isinstance(entry, str):
            objective = Objective.parse(entry)
        elif isinstance(entry, Mapping):
            objective = Objective.from_dict(entry)
        else:
            raise ExploreError(
                f"cannot interpret {entry!r} as an objective; pass an "
                "Objective, 'metric[:min|max]' string, or mapping"
            )
        if require is not None and objective.require is None:
            objective = Objective(objective.metric, objective.goal, require)
        normalized.append(objective)
    metrics = [o.metric for o in normalized]
    if len(set(metrics)) != len(metrics):
        raise ExploreError(
            f"objectives name duplicate metrics: {sorted(metrics)}"
        )
    return tuple(normalized)


def scores(objectives: Sequence[Objective], result: Any) -> Tuple[float, ...]:
    """Every objective's sign-normalised score for one result row."""
    return tuple(objective.score(result) for objective in objectives)
