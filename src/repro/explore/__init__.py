"""repro.explore: budgeted design-space exploration.

Four pieces (see DESIGN.md, "Exploration engine"):

* :mod:`repro.explore.space` — :class:`SearchSpace`/:class:`Axis`:
  declarative, JSON-round-trippable domains (continuous, log, integer,
  categorical) bound to :meth:`ScenarioSpec.with_override` paths.
* :mod:`repro.explore.objectives` — :class:`Objective`: metric-registry
  columns plus direction and feasibility constraints, scored
  sign-normalised (``inf`` = infeasible).
* :mod:`repro.explore.optimizers` — the ask/tell :class:`Optimizer`
  protocol and its string-keyed registry: ``grid``, ``random``,
  ``successive-halving`` (multi-fidelity) and ``evolutionary``
  (Pareto-aware).
* :mod:`repro.explore.driver` — :class:`ExplorationDriver`: evaluates
  candidate batches through the sweep process pool, memoised by spec
  hash against a :class:`ResultStore`, so resumed/repeated explorations
  recompute nothing.

Lazy init (PEP 562) like :mod:`repro.spec`/:mod:`repro.results`, so
importing one piece doesn't drag in the whole simulation stack.
"""

_LAZY = {
    "Axis": "repro.explore.space",
    "SearchSpace": "repro.explore.space",
    "AXIS_KINDS": "repro.explore.space",
    "Objective": "repro.explore.objectives",
    "normalize_objectives": "repro.explore.objectives",
    "Candidate": "repro.explore.optimizers",
    "Evaluation": "repro.explore.optimizers",
    "Optimizer": "repro.explore.optimizers",
    "register_optimizer": "repro.explore.optimizers",
    "create_optimizer": "repro.explore.optimizers",
    "available_optimizers": "repro.explore.optimizers",
    "GridSearch": "repro.explore.optimizers",
    "RandomSearch": "repro.explore.optimizers",
    "SuccessiveHalving": "repro.explore.optimizers",
    "ParetoEvolutionary": "repro.explore.optimizers",
    "ExplorationDriver": "repro.explore.driver",
    "ExplorationResult": "repro.explore.driver",
}

__all__ = list(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.explore' has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
