"""``repro.faults`` — deterministic, seedable fault injection.

Chaos testing only works when the chaos is reproducible.  This module
is a process-wide registry of **named injection points** — places in
the stack that have agreed to fail on demand — armed with a per-point
probability and a seed.  Whether a given call site fires is a pure
function of ``(seed, point, key)``: the roll is the leading 64 bits of
``sha256(f"{seed}|{point}|{key}")`` mapped to ``[0, 1)`` and compared
against the point's probability.  Two runs with the same seed and the
same keys inject *exactly* the same faults, so a chaos failure found in
CI replays locally, byte for byte.

Injection points
----------------

======================== ==================================================
``worker.crash``         a pool/serial worker raises before touching the
                         payload (exercises retry + quarantine)
``worker.hang``          a worker sleeps ``hang_s`` seconds (exercises
                         deadlines + hung-worker reaping; only reapable
                         under pool execution)
``store.append_fail``    a result-store append raises
                         :class:`InjectedIOError` (an ``OSError``)
``store.torn_write``     a result-store append writes a *partial* record
                         and then raises — simulating death mid-write
                         (exercises torn-tail recovery on reopen)
``ckernel.compile_fail`` the runtime C-kernel build reports failure
                         (exercises the compile circuit breaker and the
                         c → numpy degradation rung)
``io.slow``              an I/O path sleeps ``slow_s`` seconds before
                         proceeding (latency, not failure)
======================== ==================================================

Arming
------

Via environment (inherited by spawned pool workers)::

    REPRO_FAULTS="worker.crash:0.2,io.slow:0.1" \
    REPRO_FAULTS_SEED=7 repro sweep ...

or programmatically (tests, the ``repro chaos`` command)::

    with faults.active({"worker.crash": 0.3}, seed=7):
        ...

Pool workers are separate processes: the warm pool also ships the
current :func:`state_snapshot` with every chunk and the worker
:func:`install`\\ s it, so programmatic arming reaches workers that were
spawned before the faults were configured.

Disarmed (the default), every helper is one attribute check — the
module costs nothing in production paths.  Every fired injection bumps
``repro_faults_injected_total{point=...}``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional

from repro import obs
from repro.errors import ReproError

#: The named injection points call sites may roll against.
POINTS = (
    "worker.crash",
    "worker.hang",
    "store.append_fail",
    "store.torn_write",
    "ckernel.compile_fail",
    "io.slow",
)

#: Environment variables the registry arms itself from at import.
ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"
ENV_HANG_S = "REPRO_FAULTS_HANG_S"
ENV_SLOW_S = "REPRO_FAULTS_SLOW_S"

#: How long a ``worker.hang`` injection sleeps.  Long enough that any
#: sane task deadline expires first (the supervisor reaps the sleeping
#: worker), short enough that an *unsupervised* hang still ends.
DEFAULT_HANG_S = 30.0

#: How long an ``io.slow`` injection sleeps — latency, not death.
DEFAULT_SLOW_S = 0.05

#: Points that raise an :class:`InjectedIOError` (an ``OSError``) so
#: call sites with OS-level error handling exercise it.
_IO_POINTS = frozenset({"store.append_fail"})


class FaultInjected(Exception):
    """An injected fault fired.  Never raised when disarmed."""


class InjectedIOError(FaultInjected, OSError):
    """An injected fault presenting as an ``OSError`` (I/O failure)."""


class _FaultState:
    """One armed configuration (immutable once installed)."""

    __slots__ = ("probabilities", "seed", "hang_s", "slow_s")

    def __init__(
        self,
        probabilities: Mapping[str, float],
        seed: int,
        hang_s: float,
        slow_s: float,
    ):
        self.probabilities = dict(probabilities)
        self.seed = int(seed)
        self.hang_s = float(hang_s)
        self.slow_s = float(slow_s)


#: ``None`` = disarmed (the production state).
_state: Optional[_FaultState] = None


def parse_spec(text: str) -> Dict[str, float]:
    """Parse ``"point:prob,point:prob,..."`` into a probability map.

    The :data:`ENV_SPEC` / ``repro chaos --faults`` syntax.  Unknown
    point names and probabilities outside ``[0, 1]`` are configuration
    errors, not silently ignored chaos.
    """
    probabilities: Dict[str, float] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        point, sep, raw = entry.partition(":")
        point = point.strip()
        if not sep:
            raise ReproError(
                f"fault spec entry {entry!r} wants point:probability"
            )
        if point not in POINTS:
            raise ReproError(
                f"unknown fault point {point!r}; known: {', '.join(POINTS)}"
            )
        try:
            probability = float(raw)
        except ValueError:
            raise ReproError(
                f"fault point {point!r} has non-numeric probability {raw!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise ReproError(
                f"fault point {point!r} probability {probability} is "
                "outside [0, 1]"
            )
        probabilities[point] = probability
    return probabilities


def configure(
    probabilities: Mapping[str, float],
    seed: int = 0,
    hang_s: Optional[float] = None,
    slow_s: Optional[float] = None,
) -> None:
    """Arm the registry with per-point probabilities and a seed."""
    for point in probabilities:
        if point not in POINTS:
            raise ReproError(
                f"unknown fault point {point!r}; known: {', '.join(POINTS)}"
            )
    global _state
    _state = _FaultState(
        probabilities,
        seed=seed,
        hang_s=DEFAULT_HANG_S if hang_s is None else hang_s,
        slow_s=DEFAULT_SLOW_S if slow_s is None else slow_s,
    )


def clear() -> None:
    """Disarm every injection point (the production state)."""
    global _state
    _state = None


def is_armed() -> bool:
    """True when any injection point is configured."""
    return _state is not None


@contextmanager
def active(
    probabilities: Mapping[str, float],
    seed: int = 0,
    hang_s: Optional[float] = None,
    slow_s: Optional[float] = None,
) -> Iterator[None]:
    """Arm for the duration of a ``with`` block, then restore."""
    global _state
    previous = _state
    configure(probabilities, seed=seed, hang_s=hang_s, slow_s=slow_s)
    try:
        yield
    finally:
        _state = previous


def state_snapshot() -> Optional[Dict[str, Any]]:
    """The armed configuration as a picklable dict (None = disarmed).

    Shipped to pool workers with each task chunk so programmatic arming
    (tests, ``repro chaos``) reaches worker processes that inherited a
    disarmed environment.
    """
    if _state is None:
        return None
    return {
        "probabilities": dict(_state.probabilities),
        "seed": _state.seed,
        "hang_s": _state.hang_s,
        "slow_s": _state.slow_s,
    }


def install(snapshot: Optional[Mapping[str, Any]]) -> None:
    """Adopt a :func:`state_snapshot` (worker side of the shipment)."""
    global _state
    if snapshot is None:
        _state = None
        return
    _state = _FaultState(
        snapshot["probabilities"],
        seed=snapshot["seed"],
        hang_s=snapshot["hang_s"],
        slow_s=snapshot["slow_s"],
    )


def _roll(state: _FaultState, point: str, key: str) -> float:
    digest = hashlib.sha256(
        f"{state.seed}|{point}|{key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def fire(point: str, key: str) -> bool:
    """Roll the injection point; True when the fault should fire.

    Deterministic in ``(seed, point, key)``.  A firing roll bumps
    ``repro_faults_injected_total{point=...}`` and, when a trace is
    being captured, drops an instant event on the timeline.
    """
    state = _state
    if state is None:
        return False
    probability = state.probabilities.get(point)
    if not probability:
        return False
    if probability < 1.0 and _roll(state, point, key) >= probability:
        return False
    obs.counter("repro_faults_injected_total", point=point).inc()
    obs.instant("fault.injected", point=point, key=key)
    return True


def inject(point: str, key: str, message: Optional[str] = None) -> None:
    """Raise if the injection point fires (no-op when disarmed).

    ``store.append_fail`` raises :class:`InjectedIOError` (an
    ``OSError``, so OS-level error handling sees a realistic failure);
    everything else raises plain :class:`FaultInjected`.
    """
    if not fire(point, key):
        return
    text = message or f"injected fault {point} (key {key!r})"
    if point in _IO_POINTS:
        raise InjectedIOError(text)
    raise FaultInjected(text)


def maybe_hang(key: str) -> bool:
    """Sleep ``hang_s`` seconds if ``worker.hang`` fires.

    Under pool execution the supervisor's task deadline expires first
    and the sleeping worker is reaped; under serial execution the sleep
    runs its course (hangs are only *reapable* across a process
    boundary), which is why chaos runs exercising hangs use the pool.
    """
    state = _state
    if state is None or not fire("worker.hang", key):
        return False
    time.sleep(state.hang_s)
    return True


def maybe_delay(key: str) -> bool:
    """Sleep ``slow_s`` seconds if ``io.slow`` fires (latency fault)."""
    state = _state
    if state is None or not fire("io.slow", key):
        return False
    time.sleep(state.slow_s)
    return True


def payload_key(payload: Mapping[str, Any]) -> str:
    """A stable roll key for a worker task payload.

    Derived from the payload's spec content plus its supervision
    ``fault_attempt`` counter — so a payload whose roll fires on
    attempt 0 re-rolls on attempt 1 (a *transient* injected crash),
    while a given ``(payload, attempt)`` pair always rolls the same
    way run over run.
    """
    body = (
        payload.get("spec_overrides")
        or payload.get("spec_overrides_batch")
        or payload.get("spec")
    )
    return json.dumps(
        [body, payload.get("fault_attempt", 0)],
        sort_keys=True,
        default=str,
    )


def _load_env() -> None:
    spec = os.environ.get(ENV_SPEC)
    if not spec:
        return
    configure(
        parse_spec(spec),
        seed=int(os.environ.get(ENV_SEED, "0")),
        hang_s=float(os.environ.get(ENV_HANG_S, DEFAULT_HANG_S)),
        slow_s=float(os.environ.get(ENV_SLOW_S, DEFAULT_SLOW_S)),
    )


_load_env()
