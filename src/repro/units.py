"""Unit conventions and small helpers.

The framework uses unprefixed SI units everywhere: volts, amperes, watts,
farads, ohms, joules, seconds, hertz.  The helpers below exist purely to
make call sites read like the data sheets they are transcribed from, e.g.
``capacitance=uF(10)`` instead of ``capacitance=10e-6``.
"""

from __future__ import annotations


def kilo(value: float) -> float:
    """Scale ``value`` by 1e3."""
    return value * 1e3


def mega(value: float) -> float:
    """Scale ``value`` by 1e6."""
    return value * 1e6


def milli(value: float) -> float:
    """Scale ``value`` by 1e-3."""
    return value * 1e-3


def micro(value: float) -> float:
    """Scale ``value`` by 1e-6."""
    return value * 1e-6


def nano(value: float) -> float:
    """Scale ``value`` by 1e-9."""
    return value * 1e-9


def pico(value: float) -> float:
    """Scale ``value`` by 1e-12."""
    return value * 1e-12


# Readable aliases for common electrical quantities.
def mV(value: float) -> float:
    """Millivolts to volts."""
    return milli(value)


def uV(value: float) -> float:
    """Microvolts to volts."""
    return micro(value)


def mA(value: float) -> float:
    """Milliamps to amps."""
    return milli(value)


def uA(value: float) -> float:
    """Microamps to amps."""
    return micro(value)


def mW(value: float) -> float:
    """Milliwatts to watts."""
    return milli(value)


def uW(value: float) -> float:
    """Microwatts to watts."""
    return micro(value)


def mF(value: float) -> float:
    """Millifarads to farads."""
    return milli(value)


def uF(value: float) -> float:
    """Microfarads to farads."""
    return micro(value)


def nF(value: float) -> float:
    """Nanofarads to farads."""
    return nano(value)


def mJ(value: float) -> float:
    """Millijoules to joules."""
    return milli(value)


def uJ(value: float) -> float:
    """Microjoules to joules."""
    return micro(value)


def nJ(value: float) -> float:
    """Nanojoules to joules."""
    return nano(value)


def pJ(value: float) -> float:
    """Picojoules to joules."""
    return pico(value)


def kHz(value: float) -> float:
    """Kilohertz to hertz."""
    return kilo(value)


def MHz(value: float) -> float:
    """Megahertz to hertz."""
    return mega(value)


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return milli(value)


def us(value: float) -> float:
    """Microseconds to seconds."""
    return micro(value)


def minutes(value: float) -> float:
    """Minutes to seconds."""
    return value * 60.0


def hours(value: float) -> float:
    """Hours to seconds."""
    return value * 3600.0


def days(value: float) -> float:
    """Days to seconds."""
    return value * 86400.0


def cap_energy(capacitance: float, voltage: float) -> float:
    """Energy stored in a capacitor: E = C * V^2 / 2."""
    return 0.5 * capacitance * voltage * voltage


def cap_energy_between(capacitance: float, v_high: float, v_low: float) -> float:
    """Energy released by a capacitor discharging from ``v_high`` to ``v_low``.

    This is the left-hand side of the paper's expression (4) rearranged:
    ``E = C * (v_high^2 - v_low^2) / 2``.
    """
    return 0.5 * capacitance * (v_high * v_high - v_low * v_low)
