"""``repro.degrade`` — the explicit, observable degradation ladder.

The stack has always degraded gracefully — the batched kernel falls
back from the runtime-compiled C pass to numpy, the warm pool falls
back to in-process serial execution when multiprocessing is broken —
but those fallbacks were implicit: a slow run looked identical to a
healthy one until someone profiled it.  This module names each ladder
and makes every transition observable.

Each **domain** is one independent ladder of modes, best first::

    batch.kernel   c -> numpy        (the batched SoA pass)
    executor       pool -> serial    (payload execution)

Components report the mode they actually used via :func:`report`;
the module keeps the current rung per domain, exports it as the
``repro_degrade_level{domain=...}`` gauge (0 = full service, higher =
more degraded), counts transitions in
``repro_degrade_transitions_total{domain=..., mode=...}``, and drops an
instant event on the trace timeline when the rung *changes* — steady
state costs a dict lookup and an equality check per report.

:func:`snapshot` feeds the service ``/readyz`` payload so an operator
sees "running, but on the numpy kernel" without reading profiles.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro import obs

#: Ladder definition: domain -> modes ordered best (level 0) to worst.
LADDERS: Dict[str, tuple] = {
    "batch.kernel": ("c", "numpy"),
    "executor": ("pool", "serial"),
}

_lock = threading.Lock()
#: Current mode per domain; a domain absent here has not reported yet.
_current: Dict[str, str] = {}


def level_of(domain: str, mode: str) -> int:
    """The rung index of ``mode`` on ``domain``'s ladder (0 = best)."""
    ladder = LADDERS.get(domain)
    if ladder is None or mode not in ladder:
        return 0
    return ladder.index(mode)


def report(domain: str, mode: str) -> None:
    """Record that ``domain`` is currently serving in ``mode``.

    Idempotent and cheap in steady state; only a *change* of rung
    updates the gauge, bumps the transition counter and emits a trace
    instant.
    """
    with _lock:
        if _current.get(domain) == mode:
            return
        _current[domain] = mode
    if not obs.obs_enabled():
        return
    level = level_of(domain, mode)
    obs.gauge("repro_degrade_level", domain=domain).set(level)
    obs.counter(
        "repro_degrade_transitions_total", domain=domain, mode=mode
    ).inc()
    obs.instant("degrade.transition", domain=domain, mode=mode, level=level)


def current(domain: str) -> Optional[str]:
    """The mode ``domain`` last reported (None before first report)."""
    with _lock:
        return _current.get(domain)


def snapshot() -> Dict[str, Dict[str, object]]:
    """Every reporting domain with its current mode and rung level."""
    with _lock:
        modes = dict(_current)
    return {
        domain: {"mode": mode, "level": level_of(domain, mode)}
        for domain, mode in sorted(modes.items())
    }


def reset() -> None:
    """Forget every reported mode (tests)."""
    with _lock:
        _current.clear()
