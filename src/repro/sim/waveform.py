"""Waveform analysis helpers.

These functions turn probe traces into the quantities the paper's figures are
judged on: threshold crossings (snapshot/restore events in Fig. 7), dominant
frequency (the "many Hz" wind output of Fig. 1a), envelopes, duty cycles and
diurnal periodicity (Fig. 1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.probes import Trace


@dataclass(frozen=True)
class Crossing:
    """A threshold crossing event."""

    time: float
    rising: bool


def crossings(trace: Trace, threshold: float) -> List[Crossing]:
    """All times where the trace crosses ``threshold``.

    Crossing times are linearly interpolated between the bracketing samples.
    """
    t, v = trace.times, trace.values
    events: List[Crossing] = []
    above = v >= threshold
    for i in range(1, len(v)):
        if above[i] == above[i - 1]:
            continue
        v0, v1 = v[i - 1], v[i]
        if v1 == v0:
            tc = t[i]
        else:
            frac = (threshold - v0) / (v1 - v0)
            tc = t[i - 1] + frac * (t[i] - t[i - 1])
        events.append(Crossing(time=float(tc), rising=bool(above[i])))
    return events


def rising_crossings(trace: Trace, threshold: float) -> List[float]:
    """Times of upward crossings of ``threshold``."""
    return [c.time for c in crossings(trace, threshold) if c.rising]


def falling_crossings(trace: Trace, threshold: float) -> List[float]:
    """Times of downward crossings of ``threshold``."""
    return [c.time for c in crossings(trace, threshold) if not c.rising]


def dominant_frequency(trace: Trace) -> float:
    """Dominant nonzero frequency of the trace, via the FFT magnitude peak.

    Returns 0.0 for traces too short to analyse.  The mean is removed first
    so a DC offset never wins.
    """
    if len(trace) < 8:
        return 0.0
    dt = trace.dt
    if dt <= 0.0:
        return 0.0
    v = trace.values - trace.values.mean()
    spectrum = np.abs(np.fft.rfft(v))
    freqs = np.fft.rfftfreq(len(v), d=dt)
    if len(spectrum) < 2:
        return 0.0
    peak = int(np.argmax(spectrum[1:])) + 1
    return float(freqs[peak])


def envelope(trace: Trace, window: float) -> Trace:
    """Upper envelope: max over sliding windows of ``window`` seconds."""
    if len(trace) == 0:
        return Trace(trace.name + ".env", np.array([]), np.array([]))
    dt = trace.dt if trace.dt > 0 else 1.0
    n = max(1, int(round(window / dt)))
    times, values = [], []
    for start in range(0, len(trace), n):
        chunk_t = trace.times[start : start + n]
        chunk_v = trace.values[start : start + n]
        times.append(float(chunk_t.mean()))
        values.append(float(chunk_v.max()))
    return Trace(trace.name + ".env", np.array(times), np.array(values))


def duty_cycle(trace: Trace, threshold: float) -> float:
    """Fraction of time the signal spends above ``threshold``."""
    return trace.fraction_above(threshold)


def rms(trace: Trace) -> float:
    """Root-mean-square of the samples."""
    if len(trace) == 0:
        return 0.0
    return float(np.sqrt(np.mean(trace.values**2)))


def periodicity_strength(trace: Trace, period: float) -> float:
    """Autocorrelation at lag ``period``, normalised to [-1, 1].

    Used to check the diurnal (24 h) structure of the PV source in Fig. 1b:
    a strongly periodic trace scores near 1 at its true period.
    """
    if len(trace) < 4 or trace.dt <= 0:
        return 0.0
    lag = int(round(period / trace.dt))
    v = trace.values - trace.values.mean()
    if lag <= 0 or lag >= len(v):
        return 0.0
    head, tail = v[:-lag], v[lag:]
    denom = float(np.sqrt(np.sum(head * head) * np.sum(tail * tail)))
    if denom == 0.0:
        return 0.0
    return float(np.sum(head * tail)) / denom


def segment_above(trace: Trace, threshold: float) -> List[Tuple[float, float]]:
    """(start, end) intervals during which the trace stays above ``threshold``.

    Intervals that begin before the trace starts or end after it ends are
    clipped to the trace extent.
    """
    if len(trace) == 0:
        return []
    events = crossings(trace, threshold)
    segments: List[Tuple[float, float]] = []
    open_start = trace.times[0] if trace.values[0] >= threshold else None
    for event in events:
        if event.rising:
            open_start = event.time
        elif open_start is not None:
            segments.append((open_start, event.time))
            open_start = None
    if open_start is not None:
        segments.append((open_start, float(trace.times[-1])))
    return segments


def longest_interval_above(trace: Trace, threshold: float) -> float:
    """Length of the longest continuous interval above ``threshold``."""
    segments = segment_above(trace, threshold)
    if not segments:
        return 0.0
    return max(end - start for start, end in segments)


def resample(trace: Trace, dt: float) -> Trace:
    """Resample the trace onto a uniform grid with spacing ``dt``."""
    if len(trace) == 0:
        return Trace(trace.name, np.array([]), np.array([]))
    t0, t1 = float(trace.times[0]), float(trace.times[-1])
    n = max(2, int(round((t1 - t0) / dt)) + 1)
    grid = np.linspace(t0, t1, n)
    return Trace(trace.name, grid, np.interp(grid, trace.times, trace.values))


def correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation between two equal-length sequences.

    Returns 0.0 when either input is constant (correlation undefined).
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size != y.size or x.size < 2:
        return 0.0
    sx, sy = x.std(), y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
