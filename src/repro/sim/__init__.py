"""Fixed-timestep simulation kernel.

The kernel advances a set of components with a constant timestep and records
signals through :class:`~repro.sim.probes.Recorder` probes.  It is the
substrate that every experiment in the reproduction runs on: the oscilloscope
waveforms of Figs. 7 and 8 are literally probe traces from this kernel.
"""

from repro.sim.engine import Component, Simulator, SimulationResult, StopCondition
from repro.sim.kernel import (
    KERNELS,
    CapacitorPhysics,
    LoadProfile,
    PowerSourcePlan,
    VoltageSourcePlan,
)
from repro.sim.probes import Probe, Recorder, Trace
from repro.sim import waveform

__all__ = [
    "Component",
    "Simulator",
    "SimulationResult",
    "StopCondition",
    "KERNELS",
    "CapacitorPhysics",
    "LoadProfile",
    "PowerSourcePlan",
    "VoltageSourcePlan",
    "Probe",
    "Recorder",
    "Trace",
    "waveform",
]
