"""The fixed-timestep simulation engine.

Components implement a tiny protocol (:meth:`Component.step` plus an optional
:meth:`Component.reset`).  The engine owns time: it calls each component once
per step, in registration order, then samples every probe.  Registration
order therefore defines the causal order within one timestep; systems built
by :mod:`repro.core.system` register source conditioning before the rail and
the rail before loads are sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.sim.probes import Recorder, Trace


class Component:
    """Base class for anything stepped by the :class:`Simulator`.

    Subclasses override :meth:`step`; :meth:`reset` restores construction
    state so the same system object can be re-run.
    """

    def step(self, t: float, dt: float) -> None:
        """Advance the component from ``t`` to ``t + dt``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the component to its initial state (default: no-op)."""


StopCondition = Callable[[float], bool]


@dataclass
class SimulationResult:
    """Outcome of a :meth:`Simulator.run` call.

    Attributes:
        t_end: simulation time when the run stopped.
        steps: number of timesteps executed.
        stopped_early: True when a stop condition fired before ``duration``.
        traces: recorded signal traces keyed by probe name.
    """

    t_end: float
    steps: int
    stopped_early: bool
    traces: Dict[str, Trace] = field(default_factory=dict)

    def trace(self, name: str) -> Trace:
        """Return the trace recorded under ``name``.

        Raises:
            KeyError: if no probe with that name was registered.
        """
        return self.traces[name]


class Simulator:
    """Fixed-timestep simulator.

    Args:
        dt: timestep in seconds. Must be positive.
        components: initial component list (more can be added later).

    The engine is deliberately simple — a loop over components — because all
    the interesting dynamics live in the components (rail integration, MCU
    execution, governor control).  Determinism is guaranteed: no wall-clock
    or global RNG access happens here.
    """

    def __init__(self, dt: float, components: Optional[Sequence[Component]] = None):
        if dt <= 0.0:
            raise ConfigurationError(f"timestep must be positive, got {dt!r}")
        self.dt = dt
        self.t = 0.0
        self.steps = 0
        self._components: List[Component] = list(components or [])
        self._recorder = Recorder()
        self._stop_conditions: List[StopCondition] = []

    @property
    def recorder(self) -> Recorder:
        """The recorder holding all registered probes."""
        return self._recorder

    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        self._components.append(component)
        return component

    def probe(self, name: str, fn: Callable[[], float], decimate: int = 1) -> None:
        """Register a probe sampling ``fn()`` every ``decimate`` steps."""
        self._recorder.add(name, fn, decimate=decimate)

    def stop_when(self, condition: StopCondition) -> None:
        """Stop the run as soon as ``condition(t)`` returns True.

        The condition is evaluated after each step, so the state that made it
        true is already recorded.
        """
        self._stop_conditions.append(condition)

    def reset(self) -> None:
        """Reset time, probes and every component."""
        self.t = 0.0
        self.steps = 0
        self._recorder.clear()
        for component in self._components:
            component.reset()

    def step(self) -> None:
        """Advance the simulation by one timestep."""
        for component in self._components:
            component.step(self.t, self.dt)
        self.t += self.dt
        self.steps += 1
        self._recorder.sample(self.t)

    def run(
        self,
        duration: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> SimulationResult:
        """Run for ``duration`` seconds (or until a stop condition fires).

        Args:
            duration: seconds of simulated time to advance. May be omitted
                when ``max_steps`` is given.
            max_steps: hard cap on step count regardless of duration.

        Returns:
            A :class:`SimulationResult` with the recorded traces.

        Raises:
            ConfigurationError: when neither bound is provided.
        """
        if duration is None and max_steps is None:
            raise ConfigurationError("run() needs duration and/or max_steps")
        t_stop = self.t + duration if duration is not None else None
        stopped_early = False
        steps_before = self.steps
        while True:
            if t_stop is not None and self.t >= t_stop - 0.5 * self.dt:
                break
            if max_steps is not None and self.steps - steps_before >= max_steps:
                break
            self.step()
            if any(cond(self.t) for cond in self._stop_conditions):
                stopped_early = True
                break
        return SimulationResult(
            t_end=self.t,
            steps=self.steps - steps_before,
            stopped_early=stopped_early,
            traces=self._recorder.traces(),
        )

    def run_steps(self, n: int) -> SimulationResult:
        """Run at most ``n`` steps.

        Stop conditions registered with :meth:`stop_when` still apply:
        the run ends at the first step after which one fires (with
        ``stopped_early`` set), so exactly ``n`` steps execute only when
        no stop condition fires earlier.
        """
        if n < 0:
            raise ConfigurationError(f"step count must be non-negative, got {n}")
        return self.run(max_steps=n)


def integrate_trapezoid(values: Sequence[float], dt: float) -> float:
    """Trapezoidal integral of regularly sampled ``values`` with spacing ``dt``.

    Utility used by energy accounting: the integral of a power trace is the
    energy over the run.
    """
    n = len(values)
    if n == 0:
        return 0.0
    if n == 1:
        return 0.0
    total = 0.5 * (values[0] + values[-1]) + sum(values[1:-1])
    return total * dt


def require_state(condition: bool, message: str) -> None:
    """Raise :class:`SimulationError` unless ``condition`` holds."""
    if not condition:
        raise SimulationError(message)
