"""The fixed-timestep simulation engine.

Components implement a tiny protocol (:meth:`Component.step` plus an optional
:meth:`Component.reset`).  The engine owns time: it calls each component once
per step, in registration order, then samples every probe.  Registration
order therefore defines the causal order within one timestep; systems built
by :mod:`repro.core.system` register source conditioning before the rail and
the rail before loads are sampled.

Two kernels execute that schedule:

* ``"reference"`` — the plain per-step loop; the semantic baseline.
* ``"fast"`` — advances in macro-chunks of up to ``chunk_size`` steps
  through :meth:`Component.step_chunk` when the (single) component can
  vectorize its current regime, falling back to per-step execution at
  every declared event boundary — voltage thresholds *and* timed events
  (snapshot/restore completion, workload task boundaries), so the step
  an event fires on always runs the unmodified reference path (see
  :mod:`repro.sim.kernel`).  Probes
  must be chunk-capable (see :class:`~repro.sim.probes.Probe`) for
  chunking to engage; otherwise the fast kernel behaves exactly like the
  reference one.  A stop condition registered without ``chunk_safe=True``
  also disables chunking — it must be observed after every step; a
  ``chunk_safe`` condition (one that can only turn true during per-step
  execution, e.g. workload completion) keeps chunking engaged and still
  fires on the same step under both kernels.

Time is derived, not accumulated: ``t == steps * dt`` always, so a
10-million-step run lands on exactly ``10e6 * dt`` seconds instead of
drifting by accumulated rounding error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import ChunkStats, validate_kernel
from repro.sim.probes import Recorder, Trace


class Component:
    """Base class for anything stepped by the :class:`Simulator`.

    Subclasses override :meth:`step`; :meth:`reset` restores construction
    state so the same system object can be re-run.  Components that can
    vectorize stretches of their dynamics additionally override
    :meth:`step_chunk`, which the fast kernel calls.
    """

    def step(self, t: float, dt: float) -> None:
        """Advance the component from ``t`` to ``t + dt``."""
        raise NotImplementedError

    def step_chunk(self, t0: float, dt: float, n: int) -> int:
        """Advance up to ``n`` steps starting at ``t0``; return steps taken.

        Returning 0 means the component cannot chunk its present regime
        (an event boundary is imminent or its state is not vectorizable);
        the engine then executes one reference :meth:`step`.  A non-zero
        return k means the component advanced exactly k full steps with
        per-step semantics identical to k :meth:`step` calls.
        """
        return 0

    def reset(self) -> None:
        """Restore the component to its initial state (default: no-op)."""


StopCondition = Callable[[float], bool]

#: Initial (and post-event) macro-chunk length for the fast kernel.
_MIN_CHUNK = 64
#: Cap on the failed-chunk-attempt backoff (reference steps skipped).
_MAX_BACKOFF = 64


@dataclass
class SimulationResult:
    """Outcome of a :meth:`Simulator.run` call.

    Attributes:
        t_end: simulation time when the run stopped.
        steps: number of timesteps executed.
        stopped_early: True when a stop condition fired before ``duration``.
        traces: recorded signal traces keyed by probe name.
    """

    t_end: float
    steps: int
    stopped_early: bool
    traces: Dict[str, Trace] = field(default_factory=dict)

    def trace(self, name: str) -> Trace:
        """Return the trace recorded under ``name``.

        Raises:
            KeyError: if no probe with that name was registered.
        """
        return self.traces[name]


class Simulator:
    """Fixed-timestep simulator.

    Args:
        dt: timestep in seconds. Must be positive.
        components: initial component list (more can be added later).
        kernel: ``"reference"`` (plain per-step loop) or ``"fast"``
            (chunked execution where components support it; identical
            per-step semantics, see the module docstring).
        chunk_size: maximum steps per macro-chunk for the fast kernel.

    The engine is deliberately simple — a loop over components — because all
    the interesting dynamics live in the components (rail integration, MCU
    execution, governor control).  Determinism is guaranteed: no wall-clock
    or global RNG access happens here.
    """

    def __init__(
        self,
        dt: float,
        components: Optional[Sequence[Component]] = None,
        kernel: str = "reference",
        chunk_size: int = 4096,
    ):
        if dt <= 0.0:
            raise ConfigurationError(f"timestep must be positive, got {dt!r}")
        try:
            self.kernel = validate_kernel(kernel)
        except ValueError as error:
            raise ConfigurationError(str(error)) from error
        if chunk_size < 2:
            raise ConfigurationError(f"chunk_size must be >= 2, got {chunk_size}")
        self.dt = dt
        self.t = 0.0
        self.steps = 0
        self.chunk_size = chunk_size
        #: Fast-kernel diagnostics: how much of the run actually chunked.
        self.chunk_stats = ChunkStats()
        self._components: List[Component] = list(components or [])
        self._recorder = Recorder()
        self._stop_conditions: List[StopCondition] = []
        self._has_unchunkable_conditions = False

    @property
    def recorder(self) -> Recorder:
        """The recorder holding all registered probes."""
        return self._recorder

    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        self._components.append(component)
        return component

    def probe(
        self,
        name: str,
        fn: Callable[[], float],
        decimate: int = 1,
        chunk_fn=None,
        capacity: Optional[int] = None,
    ) -> None:
        """Register a probe sampling ``fn()`` every ``decimate`` steps.

        ``chunk_fn`` makes the probe bulk-samplable by the fast kernel
        (see :class:`~repro.sim.probes.Probe`); ``capacity`` bounds the
        ring buffer to the most recent samples.
        """
        self._recorder.add(name, fn, decimate=decimate, chunk_fn=chunk_fn,
                           capacity=capacity)

    def stop_when(self, condition: StopCondition, chunk_safe: bool = False) -> None:
        """Stop the run as soon as ``condition(t)`` returns True.

        The condition is evaluated after each step, so the state that made it
        true is already recorded.

        Under the fast kernel a condition registered with the default
        ``chunk_safe=False`` disables chunking — it must be observed after
        every step, and a chunk only checks at its boundary.  Pass
        ``chunk_safe=True`` for conditions that can only become true
        during per-step execution (e.g. workload completion: the platform
        is never ACTIVE inside a chunk), which keeps chunking engaged
        while still firing on exactly the same step as the reference
        kernel.
        """
        self._stop_conditions.append(condition)
        if not chunk_safe:
            self._has_unchunkable_conditions = True

    def reset(self) -> None:
        """Reset time, probes, chunk diagnostics and every component."""
        self.t = 0.0
        self.steps = 0
        self.chunk_stats = ChunkStats()
        self._recorder.clear()
        for component in self._components:
            component.reset()

    def step(self) -> None:
        """Advance the simulation by one timestep."""
        for component in self._components:
            component.step(self.t, self.dt)
        self.steps += 1
        # Derived, not accumulated: t == steps * dt exactly, so long runs
        # do not drift by summed rounding error.
        self.t = self.steps * self.dt
        self._recorder.sample(self.t)

    def _last_startable_step(self, t_stop: float) -> int:
        """Largest step index allowed to *start* a step before ``t_stop``.

        The per-step loop starts a step while ``t < t_stop - dt/2``; with
        ``t == steps * dt`` that predicate is exactly ``steps <= s`` for
        the integer this computes, so the chunked path executes the same
        step count as per-step execution.
        """
        limit = t_stop - 0.5 * self.dt
        s = int(limit / self.dt)
        while s * self.dt >= limit:
            s -= 1
        while (s + 1) * self.dt < limit:
            s += 1
        return s

    def run(
        self,
        duration: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> SimulationResult:
        """Run for ``duration`` seconds (or until a stop condition fires).

        Args:
            duration: seconds of simulated time to advance. May be omitted
                when ``max_steps`` is given.
            max_steps: hard cap on step count regardless of duration.

        Returns:
            A :class:`SimulationResult` with the recorded traces.

        Raises:
            ConfigurationError: when neither bound is provided.
        """
        if duration is None and max_steps is None:
            raise ConfigurationError("run() needs duration and/or max_steps")
        t_stop = self.t + duration if duration is not None else None
        steps_before = self.steps
        # Instrumentation is per *run*, never per step: one span, a few
        # counter bumps from the cumulative ChunkStats delta.
        stats = self.chunk_stats
        chunks0, chunked0, fallback0 = (
            stats.chunks, stats.chunked_steps, stats.fallback_steps,
        )
        t0 = time.monotonic()
        with obs.span("kernel.run", kernel=self.kernel) as kspan:
            if self.kernel == "fast":
                stopped_early = self._run_fast(t_stop, max_steps, steps_before)
            else:
                stopped_early = self._run_reference(
                    t_stop, max_steps, steps_before
                )
            kspan.annotate(steps=self.steps - steps_before)
        if obs.obs_enabled():
            obs.counter("repro_kernel_runs_total", kernel=self.kernel).inc()
            obs.counter(
                "repro_kernel_steps_total", kernel=self.kernel
            ).inc(self.steps - steps_before)
            obs.histogram(
                "repro_kernel_run_seconds", kernel=self.kernel
            ).observe(time.monotonic() - t0)
            if self.kernel == "fast":
                obs.counter("repro_kernel_chunks_total").inc(
                    stats.chunks - chunks0
                )
                obs.counter("repro_kernel_chunked_steps_total").inc(
                    stats.chunked_steps - chunked0
                )
                obs.counter("repro_kernel_fallback_steps_total").inc(
                    stats.fallback_steps - fallback0
                )
        return SimulationResult(
            t_end=self.t,
            steps=self.steps - steps_before,
            stopped_early=stopped_early,
            traces=self._recorder.traces(),
        )

    def _run_reference(
        self,
        t_stop: Optional[float],
        max_steps: Optional[int],
        steps_before: int,
    ) -> bool:
        while True:
            if t_stop is not None and self.t >= t_stop - 0.5 * self.dt:
                return False
            if max_steps is not None and self.steps - steps_before >= max_steps:
                return False
            self.step()
            if any(cond(self.t) for cond in self._stop_conditions):
                return True

    def _run_fast(
        self,
        t_stop: Optional[float],
        max_steps: Optional[int],
        steps_before: int,
    ) -> bool:
        dt = self.dt
        component = self._components[0] if len(self._components) == 1 else None
        # Chunking engages only when the whole per-step schedule can be
        # reproduced in bulk: at most one component, that component
        # overrides step_chunk (an empty simulator chunks trivially),
        # every probe knows how to produce per-step values for a chunk,
        # and no stop condition demands per-step observation.
        chunkable = (
            self._recorder.chunk_capable()
            and not self._has_unchunkable_conditions
            and (
                not self._components
                or (
                    component is not None
                    and type(component).step_chunk is not Component.step_chunk
                )
            )
        )
        conditions = self._stop_conditions
        s_max = self._last_startable_step(t_stop) if t_stop is not None else None
        if s_max is not None:
            self._recorder.reserve(s_max + 1)
        # Scheduling heuristics (semantics-neutral: steps not chunked just
        # run per-step): chunks start short and double while fully
        # consumed, so a chunk ending at a nearby event boundary never
        # pays for a full-length source plan; failed attempts back off
        # exponentially so unchunkable regimes (ACTIVE execution) don't
        # re-probe the component every step.
        grow = _MIN_CHUNK
        skip = 0
        backoff = 0
        stats = self.chunk_stats
        while True:
            if s_max is not None and self.steps > s_max:
                return False
            if max_steps is not None and self.steps - steps_before >= max_steps:
                return False
            taken = 0
            if chunkable and skip == 0:
                n = min(grow, self.chunk_size)
                if s_max is not None:
                    n = min(n, s_max - self.steps + 1)
                if max_steps is not None:
                    n = min(n, max_steps - (self.steps - steps_before))
                if n > 1:
                    taken = n if component is None else component.step_chunk(
                        self.t, dt, n
                    )
                    if taken:
                        backoff = 0
                        grow = (
                            min(2 * n, self.chunk_size)
                            if taken == n
                            else _MIN_CHUNK
                        )
                        stats.chunks += 1
                        stats.chunked_steps += taken
                        first = self.steps + 1
                        self.steps += taken
                        self.t = self.steps * dt
                        self._recorder.sample_chunk(first, taken, dt)
                    else:
                        backoff = (
                            min(2 * backoff, _MAX_BACKOFF) if backoff else 1
                        )
                        skip = backoff
            elif skip:
                skip -= 1
            if taken == 0:
                stats.fallback_steps += 1
                self.step()
            if conditions and any(cond(self.t) for cond in conditions):
                return True

    def run_steps(self, n: int) -> SimulationResult:
        """Run at most ``n`` steps.

        Stop conditions registered with :meth:`stop_when` still apply:
        the run ends at the first step after which one fires (with
        ``stopped_early`` set), so exactly ``n`` steps execute only when
        no stop condition fires earlier.
        """
        if n < 0:
            raise ConfigurationError(f"step count must be non-negative, got {n}")
        return self.run(max_steps=n)


def integrate_trapezoid(values: Sequence[float], dt: float) -> float:
    """Trapezoidal integral of regularly sampled ``values`` with spacing ``dt``.

    Utility used by energy accounting: the integral of a power trace is the
    energy over the run.
    """
    n = len(values)
    if n == 0:
        return 0.0
    if n == 1:
        return 0.0
    total = 0.5 * (values[0] + values[-1]) + sum(values[1:-1])
    return total * dt


def require_state(condition: bool, message: str) -> None:
    """Raise :class:`SimulationError` unless ``condition`` holds."""
    if not condition:
        raise SimulationError(message)
