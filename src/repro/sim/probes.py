"""Signal probes and trace recording.

A :class:`Probe` samples a scalar-returning callable once per engine step
(optionally decimated).  The collected samples become a :class:`Trace`, a
thin wrapper over numpy arrays with the handful of operations the analysis
code needs (slicing by time, min/max, mean, integration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class Trace:
    """A regularly-ish sampled signal: paired time and value arrays."""

    name: str
    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.shape != self.values.shape:
            raise ConfigurationError(
                f"trace {self.name!r}: times and values lengths differ "
                f"({self.times.shape} vs {self.values.shape})"
            )

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def dt(self) -> float:
        """Median sample spacing (robust to decimation boundary effects)."""
        if len(self) < 2:
            return 0.0
        return float(np.median(np.diff(self.times)))

    def between(self, t_start: float, t_end: float) -> "Trace":
        """Return the sub-trace with ``t_start <= t <= t_end``."""
        mask = (self.times >= t_start) & (self.times <= t_end)
        return Trace(self.name, self.times[mask], self.values[mask])

    def value_at(self, t: float) -> float:
        """Linearly interpolated value at time ``t``."""
        return float(np.interp(t, self.times, self.values))

    def minimum(self) -> float:
        """Smallest sample value."""
        return float(self.values.min())

    def maximum(self) -> float:
        """Largest sample value."""
        return float(self.values.max())

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return float(self.values.mean())

    def peak_to_peak(self) -> float:
        """max - min."""
        return self.maximum() - self.minimum()

    def integral(self) -> float:
        """Trapezoidal integral over time (e.g. power trace -> energy)."""
        if len(self) < 2:
            return 0.0
        return float(np.trapezoid(self.values, self.times))

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold``."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.values > threshold))


class Probe:
    """Samples ``fn()`` every ``decimate`` engine steps."""

    def __init__(self, name: str, fn: Callable[[], float], decimate: int = 1):
        if decimate < 1:
            raise ConfigurationError(f"decimate must be >= 1, got {decimate}")
        self.name = name
        self._fn = fn
        self._decimate = decimate
        self._counter = 0
        self._times: List[float] = []
        self._values: List[float] = []

    def sample(self, t: float) -> None:
        """Record a sample if this step is on the decimation grid."""
        self._counter += 1
        if self._counter >= self._decimate:
            self._counter = 0
            self._times.append(t)
            self._values.append(float(self._fn()))

    def clear(self) -> None:
        """Drop all recorded samples."""
        self._counter = 0
        self._times.clear()
        self._values.clear()

    def trace(self) -> Trace:
        """Materialise the samples as a :class:`Trace`."""
        return Trace(self.name, np.array(self._times), np.array(self._values))


class Recorder:
    """A named collection of probes sampled together by the engine."""

    def __init__(self) -> None:
        self._probes: Dict[str, Probe] = {}

    def add(self, name: str, fn: Callable[[], float], decimate: int = 1) -> Probe:
        """Create and register a probe. Names must be unique."""
        if name in self._probes:
            raise ConfigurationError(f"duplicate probe name {name!r}")
        probe = Probe(name, fn, decimate=decimate)
        self._probes[name] = probe
        return probe

    def sample(self, t: float) -> None:
        """Sample every probe at time ``t``."""
        for probe in self._probes.values():
            probe.sample(t)

    def clear(self) -> None:
        """Clear all probes' samples."""
        for probe in self._probes.values():
            probe.clear()

    def traces(self) -> Dict[str, Trace]:
        """Snapshot all probes as traces keyed by name."""
        return {name: probe.trace() for name, probe in self._probes.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._probes
