"""Signal probes and trace recording.

A :class:`Probe` samples a scalar-returning callable once per engine step
(optionally decimated).  The collected samples become a :class:`Trace`, a
thin wrapper over numpy arrays with the handful of operations the analysis
code needs (slicing by time, min/max, mean, integration).

Storage is a preallocated numpy ring buffer: samples land in
amortised-doubling arrays rather than Python lists, the fast kernel
appends whole chunks at once through :meth:`Probe.sample_chunk`, and an
optional ``capacity`` turns the buffer into a true ring that retains only
the most recent samples (long soak runs at bounded memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class Trace:
    """A regularly-ish sampled signal: paired time and value arrays."""

    name: str
    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.shape != self.values.shape:
            raise ConfigurationError(
                f"trace {self.name!r}: times and values lengths differ "
                f"({self.times.shape} vs {self.values.shape})"
            )

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def dt(self) -> float:
        """Median sample spacing (robust to decimation boundary effects)."""
        if len(self) < 2:
            return 0.0
        return float(np.median(np.diff(self.times)))

    def between(self, t_start: float, t_end: float) -> "Trace":
        """Return the sub-trace with ``t_start <= t <= t_end``."""
        mask = (self.times >= t_start) & (self.times <= t_end)
        return Trace(self.name, self.times[mask], self.values[mask])

    def value_at(self, t: float) -> float:
        """Linearly interpolated value at time ``t``."""
        return float(np.interp(t, self.times, self.values))

    def minimum(self) -> float:
        """Smallest sample value."""
        return float(self.values.min())

    def maximum(self) -> float:
        """Largest sample value."""
        return float(self.values.max())

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return float(self.values.mean())

    def peak_to_peak(self) -> float:
        """max - min."""
        return self.maximum() - self.minimum()

    def integral(self) -> float:
        """Trapezoidal integral over time (e.g. power trace -> energy)."""
        if len(self) < 2:
            return 0.0
        return float(np.trapezoid(self.values, self.times))

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above ``threshold``."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.values > threshold))


#: Initial ring-buffer allocation (samples); buffers double as they fill.
_INITIAL_CAPACITY = 1024

#: Cap on up-front :meth:`Probe.reserve` allocations (samples) so a huge
#: requested horizon cannot balloon memory; growth falls back to doubling.
_MAX_RESERVE = 4_000_000


class Probe:
    """Samples ``fn()`` every ``decimate`` engine steps.

    Args:
        name: probe name (trace key).
        fn: zero-argument callable returning the present sample value.
        decimate: record every ``decimate``-th step.
        chunk_fn: optional bulk sampler for the fast kernel — called with
            the number of steps a chunk advanced and returning that many
            per-step values.  Probes without one force the fast kernel
            back to per-step execution (values must be observed every
            step; there is no way to reconstruct them after the fact).
        capacity: optional ring limit — when set, only the most recent
            ``capacity`` (decimated) samples are retained.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[], float],
        decimate: int = 1,
        chunk_fn: Optional[Callable[[int], np.ndarray]] = None,
        capacity: Optional[int] = None,
    ):
        if decimate < 1:
            raise ConfigurationError(f"decimate must be >= 1, got {decimate}")
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self._fn = fn
        self._decimate = decimate
        self._chunk_fn = chunk_fn
        self._capacity = capacity
        self._counter = 0
        size = capacity if capacity is not None else _INITIAL_CAPACITY
        self._times = np.empty(size, dtype=float)
        self._values = np.empty(size, dtype=float)
        #: Samples stored; for a full ring this stays at ``capacity``.
        self._n = 0
        #: Ring write head (index of the next slot), used when capacity set.
        self._head = 0

    @property
    def chunkable(self) -> bool:
        """True when the probe can be bulk-sampled by the fast kernel."""
        return self._chunk_fn is not None

    # -- storage ---------------------------------------------------------

    def reserve(self, steps: int) -> None:
        """Pre-size the sample buffers for a run of ``steps`` steps.

        A no-op for ring probes (fixed capacity) and for buffers that
        are already large enough.  Callers that know the run horizon
        (the fast kernel, the batched kernel) use this to skip the
        incremental grow-and-copy churn of long runs.
        """
        if self._capacity is not None:
            return
        needed = steps // self._decimate + 2
        if needed > _MAX_RESERVE:
            needed = _MAX_RESERVE
        self._grow(needed)

    def _grow(self, needed: int) -> None:
        capacity = self._times.size
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity)
        times = np.empty(new_capacity, dtype=float)
        values = np.empty(new_capacity, dtype=float)
        times[: self._n] = self._times[: self._n]
        values[: self._n] = self._values[: self._n]
        self._times = times
        self._values = values

    def _append(self, times: np.ndarray, values: np.ndarray) -> None:
        k = times.size
        if k == 0:
            return
        if self._capacity is None:
            self._grow(self._n + k)
            self._times[self._n : self._n + k] = times
            self._values[self._n : self._n + k] = values
            self._n += k
            return
        cap = self._capacity
        if k >= cap:  # only the newest `cap` samples survive
            self._times[:] = times[k - cap :]
            self._values[:] = values[k - cap :]
            self._n = cap
            self._head = 0
            return
        first = min(k, cap - self._head)
        self._times[self._head : self._head + first] = times[:first]
        self._values[self._head : self._head + first] = values[:first]
        rest = k - first
        if rest:
            self._times[:rest] = times[first:]
            self._values[:rest] = values[first:]
        self._head = (self._head + k) % cap
        self._n = min(self._n + k, cap)

    # -- sampling --------------------------------------------------------

    def sample(self, t: float) -> None:
        """Record a sample if this step is on the decimation grid."""
        self._counter += 1
        if self._counter >= self._decimate:
            self._counter = 0
            if self._capacity is None:
                n = self._n
                if n == self._times.size:
                    self._grow(n + 1)
                self._times[n] = t
                self._values[n] = self._fn()
                self._n = n + 1
            else:
                head = self._head
                self._times[head] = t
                self._values[head] = self._fn()
                self._head = (head + 1) % self._capacity
                self._n = min(self._n + 1, self._capacity)

    def sample_chunk(self, times: np.ndarray, values: np.ndarray) -> None:
        """Record a chunk of per-step samples (pre-decimation).

        ``times``/``values`` cover every step of the chunk; decimation is
        applied here, continuing the running per-step counter so chunked
        and per-step execution select identical sample steps.
        """
        k = len(times)
        if k == 0:
            return
        d = self._decimate
        if d == 1:
            self._append(np.asarray(times, dtype=float),
                         np.asarray(values, dtype=float))
            return
        first = d - self._counter - 1  # 0-based index of the first hit
        self._counter = (self._counter + k) % d
        if first >= k:
            return
        sel = slice(first, k, d)
        self._append(np.asarray(times[sel], dtype=float),
                     np.asarray(values[sel], dtype=float))

    def sample_chunk_grid(self, first_step: int, k: int, dt: float) -> None:
        """Record a chunk of ``k`` steps on the regular ``steps * dt`` grid.

        Equivalent to ``sample_chunk(arange(first_step, first_step+k)*dt,
        chunk_fn(k))`` but materialises only the decimated sample times
        (``(first_step + j) * dt`` for the selected ``j`` — bit-identical
        to slicing the full grid, since the integer step indices are
        exact either way).
        """
        if k == 0:
            return
        d = self._decimate
        values = self._chunk_fn(k)
        first = 0 if d == 1 else d - self._counter - 1
        self._counter = (self._counter + k) % d
        if first >= k:
            return
        steps = np.arange(first_step + first, first_step + k, d)
        values = np.asarray(values, dtype=float)
        if d > 1:
            values = values[first::d]
        self._append(steps * dt, values)

    def clear(self) -> None:
        """Drop all recorded samples (buffers are kept allocated)."""
        self._counter = 0
        self._n = 0
        self._head = 0

    def trace(self) -> Trace:
        """Materialise the samples as a :class:`Trace` (oldest first)."""
        if self._capacity is not None and self._n == self._capacity:
            head = self._head
            times = np.concatenate((self._times[head:], self._times[:head]))
            values = np.concatenate((self._values[head:], self._values[:head]))
            return Trace(self.name, times, values)
        return Trace(
            self.name,
            self._times[: self._n].copy(),
            self._values[: self._n].copy(),
        )


class Recorder:
    """A named collection of probes sampled together by the engine."""

    def __init__(self) -> None:
        self._probes: Dict[str, Probe] = {}

    def add(
        self,
        name: str,
        fn: Callable[[], float],
        decimate: int = 1,
        chunk_fn: Optional[Callable[[int], np.ndarray]] = None,
        capacity: Optional[int] = None,
    ) -> Probe:
        """Create and register a probe. Names must be unique."""
        if name in self._probes:
            raise ConfigurationError(f"duplicate probe name {name!r}")
        probe = Probe(name, fn, decimate=decimate, chunk_fn=chunk_fn,
                      capacity=capacity)
        self._probes[name] = probe
        return probe

    def reserve(self, steps: int) -> None:
        """Pre-size every probe's buffers for a run of ``steps`` steps."""
        for probe in self._probes.values():
            probe.reserve(steps)

    def sample(self, t: float) -> None:
        """Sample every probe at time ``t``."""
        for probe in self._probes.values():
            probe.sample(t)

    def sample_chunk(self, first_step: int, k: int, dt: float) -> None:
        """Bulk-sample every probe for a chunk of ``k`` steps.

        ``first_step`` is the 1-based index of the first step in the
        chunk, so sample times are ``first_step*dt .. (first_step+k-1)*dt``
        — the exact ``steps * dt`` grid per-step execution produces.
        """
        for probe in self._probes.values():
            probe.sample_chunk_grid(first_step, k, dt)

    def chunk_capable(self) -> bool:
        """True when every probe supports bulk chunk sampling."""
        return all(probe.chunkable for probe in self._probes.values())

    def clear(self) -> None:
        """Clear all probes' samples."""
        for probe in self._probes.values():
            probe.clear()

    def traces(self) -> Dict[str, Trace]:
        """Snapshot all probes as traces keyed by name."""
        return {name: probe.trace() for name, probe in self._probes.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._probes
