"""Batched structure-of-arrays execution of scenario batches.

The fast kernel (:mod:`repro.sim.kernel`) chunks *one* scenario at a
time; a sweep over M grid points still pays the per-step Python cost M
times.  This module advances M scenarios that share a topology *together*
as structure-of-arrays state: one numpy lane per member holding the rail
voltage ``vcc[M]``, the cumulative energy ledger, and per-lane event
horizons, with closed-form source plans evaluated once over the full run
horizon and shared across every member with an identical harvester
configuration.

Execution model (see DESIGN.md, "Batched SoA kernel"):

* Each member is a **lane**: its own built system, simulator, rail and
  platform, plus the per-lane scalars the array passes need (capacitor
  physics, precomputed source-plan arrays, the last startable step).
* A **round** gathers every runnable lane's current regime — exactly the
  same :meth:`~repro.power.rail.RailLoad.load_profile` /
  source-plan protocol the per-scenario fast kernel uses — groups lanes
  whose regimes have the same shape, and advances each group through one
  masked **array pass**.  Per-step arithmetic inside a pass replicates
  the scalar chunk loops of :class:`~repro.power.rail.SupplyRail`
  operation for operation, so the committed voltage sequence is
  bit-identical to a per-scenario fast run (chunk partitioning cannot
  change a pure per-step recurrence).
* Per-lane event boundaries (boot/wake/brownout/active-guard voltage
  crossings, snapshot/restore countdowns via ``max_steps``) freeze the
  lane inside the pass at exactly the step the scalar loop would have
  broken on; the boundary step then settles scalar-side through the
  unmodified reference path and the lane re-enters the next round.
* Lanes whose regime cannot be vectorized degrade gracefully: a lane in
  a one-member group advances through the ordinary scalar
  :meth:`~repro.power.rail.SupplyRail.step_chunk`; a lane whose sources
  cannot publish array plans at all (MPPT trackers, converter-fronted
  power sources, stateful harvesters) runs the entire scenario through
  the untouched per-scenario path.

Exactness contract: the vcc trace and every event step index are
bit-identical to per-scenario fast runs.  Scalar metric accumulators
that the fast kernel itself folds per-chunk (state-residency times,
per-chunk committed energies) agree to floating-point re-association
tolerance (~1e-12 relative), exactly as fast-vs-reference already does.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import degrade, obs
from repro.power.rail import HarvesterInjector, RectifiedInjector, SupplyRail
from repro.results.run_result import MAX_TRACE_SAMPLES, RunResult, spec_hash
from repro.sim import _ckernel
from repro.sim.engine import _MAX_BACKOFF, _MIN_CHUNK
from repro.spec.specs import ScenarioSpec

#: Hard cap on steps per array pass (bounds the per-pass vcc matrix and
#: amortises the per-pass Python overheads; any pass partition commits
#: bit-identical results, so the cap is purely a scheduling knob).
_PASS_CAP = 65536
#: Per-pass vcc matrix byte budget: for wide batches the effective pass
#: length shrinks below ``_PASS_CAP`` so the trace matrix stays bounded.
#: Longer passes mean fewer commit/regather cycles per lane — the
#: dominant fixed cost once the step loop itself is vectorized.
_PASS_BUDGET_BYTES = 256 * 1024 * 1024
#: Minimum steps before the break-at-quarter early exit may trigger.
_EARLY_EXIT_MIN_STEPS = 64
#: Below this many runnable lanes a round stops vectorizing and the
#: remaining lanes finish through the per-scenario chunked path.
_MIN_VECTOR_LANES = 2
#: Minimum lanes in a pass group before the vectorized pass beats the
#: scalar chunk loop (per-row numpy dispatch is ~30x a scalar step, so
#: small groups advance through ``step_chunk`` instead).  Tests lower
#: this to force array passes on tiny batches.
_MIN_VECTOR_GROUP = 32
#: Auto batch size cap (memory: one full-horizon plan per distinct
#: harvester configuration plus O(pass_cap * M) scratch — ~17 MB of
#: per-pass vcc matrix at the cap, amortised over 512 grid points).
AUTO_BATCH_SIZE = 512


def _uniform_scalar(arr: np.ndarray) -> Any:
    """``arr`` as a Python float when every lane shares one value.

    A scalar ufunc operand computes the exact same IEEE result as the
    equal-valued array while skipping one array read per step — grid
    axes usually leave most per-lane parameter arrays constant.
    """
    first = arr[0]
    if bool((arr == first).all()):
        return float(first)
    return arr


def _pass_cap(m_count: int) -> int:
    """Steps per pass for an ``m_count``-lane group.

    ``_PASS_CAP`` bounded by the ``_PASS_BUDGET_BYTES`` trace-matrix
    budget (8 bytes per lane-step).  Any pass partition commits
    bit-identical results, so this is purely a scheduling knob.
    """
    by_budget = _PASS_BUDGET_BYTES // (max(1, m_count) * 8)
    return max(1, min(_PASS_CAP, by_budget))


@dataclass
class BatchStats:
    """Per-batch execution diagnostics, reported through progress events.

    Attributes:
        members: lanes that entered batched execution.
        passes: array passes executed.
        advanced: member-steps advanced through array passes.
        settled: member-steps settled through the scalar reference path.
        diverged: members that left array execution for the per-scenario
            fast kernel (ineligible sources or a drained batch).
    """

    members: int = 0
    passes: int = 0
    advanced: int = 0
    settled: int = 0
    diverged: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "members": self.members,
            "passes": self.passes,
            "advanced": self.advanced,
            "settled": self.settled,
            "diverged": self.diverged,
        }


#: Optional per-round progress hook: called with the running BatchStats
#: after every round of array passes.
RoundHook = Callable[[BatchStats], None]


def topology_key(spec: ScenarioSpec) -> str:
    """The batching-compatibility key of a spec: its non-numeric skeleton.

    Two grid points may share a batch only when they differ in *numeric*
    parameters alone.  Every string-valued axis — the kernel, the
    strategy kind, the harvester/storage/load/rectifier/converter
    families, the engine and program — stays in the key, so a grid that
    sweeps any axis changing chunk eligibility partitions into separate
    sub-batches instead of batching incompatible members together.
    """

    def strip(value: Any) -> Any:
        if isinstance(value, Mapping):
            return {key: strip(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [strip(item) for item in value]
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return None
        return value

    skeleton = strip(spec.to_dict())
    # to_dict omits default-valued fields; pin the ones that gate
    # batching so presence/absence differences cannot alias.
    skeleton["kernel"] = spec.kernel
    skeleton["stop_on_completion"] = spec.stop_on_completion
    return json.dumps(skeleton, sort_keys=True)


def batchable(spec: ScenarioSpec) -> bool:
    """Whether a spec may join an array batch at all (fast kernel only)."""
    return spec.kernel == "fast"


class _PlanCache:
    """Full-horizon source-plan arrays shared across batch members.

    Keyed by the harvester's resolved configuration and the time grid, so
    a capacitance sweep — every member carrying the same harvester —
    plans each waveform exactly once per batch, not once per member.
    Values are a pure function of the step index (evaluated at the exact
    engine grid ``k * dt``), so any member's window is a plain slice.
    """

    def __init__(self) -> None:
        self._plans: Dict[str, np.ndarray] = {}

    @staticmethod
    def key(spec: ScenarioSpec, index: int, variant: str) -> str:
        """Cache key for one harvester's plan.

        ``source_resistance`` is excluded: an open-circuit voltage (or
        harvested power) waveform is by definition independent of the
        source's Thevenin resistance, so a resistance sweep shares one
        plan.  ``variant`` marks what the stored array holds ('p' for
        power, 'v'/'v-abs' for plain/rectified voltage) so the same
        harvester behind different rectifiers cannot alias.
        """
        entry = spec.harvesters[index]
        params = dict(spec._harvester_params(index, entry))
        params.pop("source_resistance", None)
        return json.dumps(
            {
                "kind": entry.kind,
                "params": params,
                "dt": spec.dt,
                "variant": variant,
            },
            sort_keys=True,
            default=str,
        )

    def voltage_values(
        self, key: str, injector: RectifiedInjector, take_abs: bool,
        dt: float, steps: int,
    ) -> np.ndarray:
        plan = self._plans.get(key)
        if plan is None or len(plan) < steps:
            times = np.arange(0, steps) * dt
            values = injector.harvester.open_circuit_voltage_array(times)
            if take_abs:
                values = np.abs(values)
            plan = np.asarray(values, dtype=float)
            self._plans[key] = plan
        return plan

    def power_values(
        self, key: str, injector: HarvesterInjector, dt: float, steps: int
    ) -> np.ndarray:
        plan = self._plans.get(key)
        if plan is None or len(plan) < steps:
            times = np.arange(0, steps) * dt
            plan = np.asarray(
                injector.harvester.power_array(times), dtype=float
            )
            self._plans[key] = plan
        return plan


@dataclass
class _Source:
    """One injector's array-pass descriptor (full-horizon values)."""

    kind: str  # 'v' (rectified voltage source) or 'p' (power source)
    values: np.ndarray
    drop: float = 0.0
    r_total: float = 1.0


class _Lane:
    """One batch member: a built system plus its array-pass state."""

    __slots__ = (
        "index", "spec", "overrides", "system", "sim", "rail", "platform",
        "physics", "s_max", "dt", "sources", "leak", "overhead",
        "done", "stopped_early", "pending_scalar", "backoff", "error",
    )

    def __init__(self, index: int, spec: ScenarioSpec,
                 overrides: Dict[str, Any]):
        self.index = index
        self.spec = spec
        self.overrides = overrides
        self.system = None
        self.sim = None
        self.rail: Optional[SupplyRail] = None
        self.platform = None
        self.physics = None
        self.s_max = -1
        self.dt = spec.dt
        self.sources: List[_Source] = []
        self.leak: Optional[float] = None
        self.overhead = 1.0
        self.done = False
        self.stopped_early = False
        self.pending_scalar = 0
        self.backoff = 0
        self.error: Optional[str] = None


@dataclass
class _Gathered:
    """One lane's regime for the pass about to run."""

    lane: _Lane
    v: float
    horizon: int
    profiles: List[Any] = field(default_factory=list)


def _build_lane(index: int, spec: ScenarioSpec,
                overrides: Dict[str, Any]) -> _Lane:
    """Construct a lane: build the system and install the probes."""
    lane = _Lane(index, spec, overrides)
    system = spec.build()
    system.install_probes(decimate=spec.decimate)
    lane.system = system
    lane.sim = system.simulator
    lane.rail = system.rail
    lane.platform = system.platform
    lane.s_max = lane.sim._last_startable_step(spec.duration)
    lane.sim._recorder.reserve(lane.s_max + 1)
    return lane


def _lane_chunkable(lane: _Lane) -> bool:
    """Mirror of the solo fast kernel's chunk-engagement predicate."""
    sim = lane.sim
    if lane.spec.kernel != "fast" or lane.rail is None:
        return False
    if len(sim._components) != 1 or sim._components[0] is not lane.rail:
        return False
    if not sim._recorder.chunk_capable():
        return False
    if sim._has_unchunkable_conditions:
        return False
    physics = lane.rail.storage.chunk_physics()
    if physics is None:
        return False
    lane.physics = physics
    lane.leak = physics.leak_factor(lane.dt)
    lane.overhead = physics.draw_overhead
    return True


def _lane_vectorizable(lane: _Lane, cache: _PlanCache) -> bool:
    """Resolve every injector to a full-horizon array plan, or fail.

    The eligibility predicates mirror the injectors' own ``chunk_plan``
    guards; a converter-fronted power source additionally disqualifies
    the lane (``ConversionStage.output_power`` is per-step Python), as
    does any injector outside the two standard classes.
    """
    rail = lane.rail
    total_steps = lane.s_max + 1
    if total_steps <= 0:
        return True  # zero-step run: trivially fine
    sources: List[_Source] = []
    for position, injector in enumerate(rail._injectors):
        if isinstance(injector, RectifiedInjector):
            if type(injector).inject is not RectifiedInjector.inject:
                return False
            if not injector.harvester.chunk_safe():
                return False
            chunk_params = getattr(injector.rectifier, "chunk_params", None)
            params = (
                chunk_params(injector.harvester.source_resistance)
                if chunk_params is not None
                else None
            )
            if params is None:
                return False
            drop, r_total, take_abs = params
            key = cache.key(
                lane.spec, position, "v-abs" if take_abs else "v"
            )
            values = cache.voltage_values(
                key, injector, take_abs, lane.dt, total_steps
            )
            sources.append(
                _Source("v", values, drop=drop, r_total=r_total)
            )
        elif isinstance(injector, HarvesterInjector):
            if type(injector).inject is not HarvesterInjector.inject:
                return False
            if injector.mppt is not None or injector.converter is not None:
                return False
            if not injector.harvester.chunk_safe():
                return False
            key = cache.key(lane.spec, position, "p")
            values = cache.power_values(key, injector, lane.dt, total_steps)
            sources.append(_Source("p", values))
        else:
            return False
    lane.sources = sources
    return True


def _check_lane_stopped(lane: _Lane) -> None:
    """Post-advance bookkeeping shared by every execution path."""
    sim = lane.sim
    conditions = sim._stop_conditions
    if conditions and any(cond(sim.t) for cond in conditions):
        lane.done = True
        lane.stopped_early = True
    elif sim.steps > lane.s_max:
        lane.done = True


def _run_scalar_steps(lane: _Lane, count: int, stats: BatchStats) -> None:
    """Settle ``count`` steps through the unmodified reference path."""
    sim = lane.sim
    chunk_stats = sim.chunk_stats
    for _ in range(count):
        if sim.steps > lane.s_max:
            lane.done = True
            return
        chunk_stats.fallback_steps += 1
        sim.step()
        stats.settled += 1
        conditions = sim._stop_conditions
        if conditions and any(cond(sim.t) for cond in conditions):
            lane.done = True
            lane.stopped_early = True
            return
    if sim.steps > lane.s_max:
        lane.done = True


def _advance_chunk_scalar(lane: _Lane, stats: BatchStats) -> None:
    """Advance a lone lane one chunk through the ordinary scalar loop."""
    sim = lane.sim
    n = min(sim.chunk_size, lane.s_max - sim.steps + 1)
    taken = 0
    if n > 1:
        taken = lane.rail.step_chunk(sim.t, sim.dt, n)
    if taken:
        lane.backoff = 0
        chunk_stats = sim.chunk_stats
        chunk_stats.chunks += 1
        chunk_stats.chunked_steps += taken
        first = sim.steps + 1
        sim.steps += taken
        sim.t = sim.steps * sim.dt
        sim._recorder.sample_chunk(first, taken, sim.dt)
        stats.advanced += taken
        _check_lane_stopped(lane)
    else:
        lane.backoff = (
            min(2 * lane.backoff, _MAX_BACKOFF) if lane.backoff else 1
        )
        lane.pending_scalar = lane.backoff


def _finish_solo(lane: _Lane, stats: BatchStats) -> None:
    """Run a lane to completion through the per-scenario fast schedule.

    Identical results to :meth:`Simulator._run_fast` continuing from the
    lane's current state: the grow/backoff schedule only changes which
    steps chunk, never their arithmetic.
    """
    sim = lane.sim
    rail = lane.rail
    dt = sim.dt
    chunk_stats = sim.chunk_stats
    conditions = sim._stop_conditions
    grow = _MIN_CHUNK
    skip = 0
    backoff = 0
    chunkable = lane.physics is not None
    while not lane.done:
        if sim.steps > lane.s_max:
            lane.done = True
            return
        taken = 0
        if chunkable and skip == 0:
            n = min(grow, sim.chunk_size, lane.s_max - sim.steps + 1)
            if n > 1:
                taken = rail.step_chunk(sim.t, dt, n)
                if taken:
                    backoff = 0
                    grow = (
                        min(2 * n, sim.chunk_size)
                        if taken == n
                        else _MIN_CHUNK
                    )
                    chunk_stats.chunks += 1
                    chunk_stats.chunked_steps += taken
                    first = sim.steps + 1
                    sim.steps += taken
                    sim.t = sim.steps * dt
                    sim._recorder.sample_chunk(first, taken, dt)
                    stats.advanced += taken
                else:
                    backoff = min(2 * backoff, _MAX_BACKOFF) if backoff else 1
                    skip = backoff
        elif skip:
            skip -= 1
        if taken == 0:
            chunk_stats.fallback_steps += 1
            sim.step()
            stats.settled += 1
        if conditions and any(cond(sim.t) for cond in conditions):
            lane.done = True
            lane.stopped_early = True
            return


def _gather(lane: _Lane) -> Optional[_Gathered]:
    """One lane's regime for the next pass, or None to settle scalar-side.

    Mirrors :meth:`SupplyRail.step_chunk`'s gather phase: fresh load
    profiles at the present voltage, the horizon bounded by every
    profile's ``max_steps`` and the last startable step.  Source windows
    come from the lane's precomputed full-horizon arrays instead of
    per-chunk ``chunk_plan`` calls.
    """
    sim = lane.sim
    remaining = lane.s_max - sim.steps + 1
    if remaining <= 0:
        lane.done = True
        return None
    v = lane.physics.read_voltage()
    t0 = sim.t
    dt = sim.dt
    horizon = remaining
    profiles = []
    for load in lane.rail._loads:
        profile = load.load_profile(t0, dt, v)
        if profile is None:
            return None
        if profile.max_steps is not None:
            if profile.max_steps <= 0:
                return None
            horizon = min(horizon, profile.max_steps)
        profiles.append(profile)
    if horizon < 1:
        return None
    return _Gathered(lane=lane, v=v, horizon=horizon, profiles=profiles)


def _group_key(gathered: _Gathered) -> Tuple:
    """The pass-group a gathered lane joins.

    ``('s',)`` is the simple-loop shape (single rectified source, single
    constant-energy load, ideal capacitor) — classified with exactly the
    predicate :meth:`SupplyRail.step_chunk` uses, so the committed
    per-load energies follow the same accumulation as the scalar kernel.
    A load profile mixing a resistive and a current-like term falls back
    to the scalar chunk loop (``('c', ...)``: a one-lane group).
    """
    lane = gathered.lane
    profiles = gathered.profiles
    for profile in profiles:
        if profile.resistance is not None and profile.current != 0.0:
            return ("c", lane.index)
    if (
        len(lane.sources) == 1
        and lane.sources[0].kind == "v"
        and len(profiles) == 1
        and profiles[0].resistance is None
        and profiles[0].current == 0.0
        and lane.leak is None
        and lane.overhead == 1.0
    ):
        return ("s",)
    kinds = tuple(source.kind for source in lane.sources)
    return ("g", kinds, len(profiles))


def _commit_lane(
    lane: _Lane,
    gathered: _Gathered,
    taken: int,
    v_final: float,
    ledger: Dict[str, float],
    esums: Sequence[float],
    vcc: np.ndarray,
    evented: bool,
    stats: BatchStats,
) -> None:
    """Fold one lane's pass outcome back into its live system.

    Mirrors the commit the solo fast kernel performs after
    ``step_chunk``: voltage write-back, stats ledger, per-load commits,
    probe bulk-sampling, then the stop-condition / end-of-run checks.
    """
    sim = lane.sim
    dt = sim.dt
    if taken > 0:
        lane.physics.write_voltage(v_final)
        rail_stats = lane.rail.stats
        rail_stats.harvested = ledger["harvested"]
        rail_stats.consumed = ledger["consumed"]
        rail_stats.starved = ledger["starved"]
        if "leaked" in ledger:
            rail_stats.leaked = ledger["leaked"]
        lane.rail._chunk_vcc = vcc
        for profile, esum in zip(gathered.profiles, esums):
            if profile.commit is not None:
                profile.commit(taken, dt, esum)
        chunk_stats = sim.chunk_stats
        chunk_stats.chunks += 1
        chunk_stats.chunked_steps += taken
        first = sim.steps + 1
        sim.steps += taken
        sim.t = sim.steps * dt
        sim._recorder.sample_chunk(first, taken, dt)
        stats.advanced += taken
    _check_lane_stopped(lane)
    if not lane.done and evented:
        # The boundary step itself must execute through the reference
        # path — exactly as the solo kernel's failed-attempt fallback.
        lane.pending_scalar = max(lane.pending_scalar, 1)


def _pass_order(members: List[_Gathered]) -> None:
    """Sort a pass group so lanes sharing plans and step positions are
    adjacent (member order within a pass is free — every lane commits
    independently).  Runs of identical (plan, start) then fill their
    window columns with one broadcast slice each instead of M strided
    column writes."""
    members.sort(
        key=lambda g: (
            tuple(id(source.values) for source in g.lane.sources),
            g.lane.sim.steps,
        )
    )


def _source_windows(
    members: Sequence[_Gathered], source_index: int, pass_n: int,
) -> np.ndarray:
    """The ``[pass_n, M]`` value matrix for one source position.

    Members must be in :func:`_pass_order`; each run of lanes sharing a
    plan array and step position fills as one broadcast column block.
    Rows past a short run's plan stay zero — they are beyond every such
    lane's horizon and never commit.
    """
    m_count = len(members)
    vals = np.zeros((pass_n, m_count), dtype=float)
    begin = 0
    while begin < m_count:
        lane = members[begin].lane
        plan = lane.sources[source_index].values
        start = lane.sim.steps
        end = begin + 1
        while (
            end < m_count
            and members[end].lane.sources[source_index].values is plan
            and members[end].lane.sim.steps == start
        ):
            end += 1
        span = min(pass_n, len(plan) - start)
        vals[:span, begin:end] = plan[start:start + span, None]
        begin = end
    return vals


def _compiled_windows(
    lanes: Sequence[_Lane], horizons: np.ndarray
) -> Optional[np.ndarray]:
    """Per-lane data pointers into each lane's full source plan.

    The compiled kernel reads each lane's pass window in place (no
    [pass_n, M] matrix, no ``tolist``).  Returns None when any plan
    cannot back a raw double pointer — then the numpy pass runs.
    """
    ptrs = np.empty(len(lanes), dtype=np.uintp)
    for m, lane in enumerate(lanes):
        plan = lane.sources[0].values
        if (
            not isinstance(plan, np.ndarray)
            or plan.dtype != np.float64
            or not plan.flags.c_contiguous
        ):
            return None
        start = lane.sim.steps
        if len(plan) - start < int(horizons[m]):
            return None
        ptrs[m] = plan.ctypes.data + start * 8
    return ptrs


def _commit_pass(
    members: Sequence[_Gathered],
    horizons: np.ndarray,
    taken: np.ndarray,
    v: np.ndarray,
    harvested: np.ndarray,
    consumed: np.ndarray,
    starved: np.ndarray,
    e_dem_py: Sequence[float],
    vcc: np.ndarray,
    stats: BatchStats,
) -> None:
    """Fold a finished simple pass back into every member lane."""
    for m, gathered in enumerate(members):
        steps_taken = int(taken[m])
        _commit_lane(
            gathered.lane,
            gathered,
            steps_taken,
            float(v[m]),
            {
                "harvested": float(harvested[m]),
                "consumed": float(consumed[m]),
                "starved": float(starved[m]),
            },
            [steps_taken * e_dem_py[m]],
            vcc[m, :steps_taken],
            evented=steps_taken < int(horizons[m]),
            stats=stats,
        )
    stats.passes += 1


def _simple_pass(members: List[_Gathered], stats: BatchStats) -> None:
    """Vectorized counterpart of :meth:`SupplyRail._chunk_loop_simple`.

    Per-step operation sequence and association order replicate the
    scalar loop exactly; lanes that hit an event boundary (or their own
    horizon) freeze in place via the ``alive`` mask while the rest of
    the batch keeps advancing.
    """
    _pass_order(members)
    m_count = len(members)
    lanes = [g.lane for g in members]
    cap_n = _pass_cap(m_count)
    horizons = np.array(
        [min(g.horizon, cap_n) for g in members], dtype=np.int64
    )
    pass_n = int(horizons.max())
    v = np.array([g.v for g in members], dtype=float)
    cap = np.array([lane.physics.capacitance for lane in lanes], dtype=float)
    half_c = 0.5 * cap
    v_max = np.array([lane.physics.v_max for lane in lanes], dtype=float)
    drop = np.array([lane.sources[0].drop for lane in lanes], dtype=float)
    r_total = np.array(
        [lane.sources[0].r_total for lane in lanes], dtype=float
    )
    # Per-step demand precombined in Python floats, exactly as the
    # scalar loop computes its local e_dem.
    e_dem_py = [
        g.profiles[0].power * g.lane.dt + g.profiles[0].energy
        for g in members
    ]
    e_dem = np.array(e_dem_py, dtype=float)
    v_rise = np.array([g.profiles[0].v_rising for g in members], dtype=float)
    v_fall = np.array([g.profiles[0].v_falling for g in members], dtype=float)
    has_fall = bool(np.isfinite(v_fall).any())
    harvested = np.array(
        [lane.rail.stats.harvested for lane in lanes], dtype=float
    )
    consumed = np.array(
        [lane.rail.stats.consumed for lane in lanes], dtype=float
    )
    starved = np.array(
        [lane.rail.stats.starved for lane in lanes], dtype=float
    )
    dt_raw = np.array([lane.dt for lane in lanes], dtype=float)
    # Lane-major so each lane's committed trace is a contiguous row
    # (the per-step column write touches one cache line per lane and
    # stays resident; a step-major layout would make every lane's
    # commit re-walk the whole matrix at page stride).  Rows are padded
    # so the column-write stride is not a power of two — an exact 32 KB
    # stride would alias every lane onto one cache set.
    vcc_full = np.empty((m_count, pass_n + 8), dtype=float)
    taken = horizons.copy()
    # Compiled fast path: the runtime-built C kernel replays the exact
    # scalar operation sequence per lane (see repro.sim._ckernel), so
    # masking, the deferred ledger and the early-exit heuristics are
    # unnecessary — every lane simply runs to its own event boundary or
    # horizon.  Ledger totals accumulate in the scalar loop's own
    # per-step order, so they match solo fast runs bit for bit.
    kernel = _ckernel.load()
    if kernel is not None:
        ptrs = _compiled_windows(lanes, horizons)
        if ptrs is not None:
            obs.counter("repro_batch_pass_path_total", path="c").inc()
            degrade.report("batch.kernel", "c")
            kernel(
                m_count, ptrs, horizons, v, cap, v_max, drop, r_total,
                e_dem, v_rise, v_fall, dt_raw, harvested, consumed,
                starved, vcc_full, pass_n + 8, taken,
            )
            _commit_pass(members, horizons, taken, v, harvested,
                         consumed, starved, e_dem_py, vcc_full, stats)
            return
    obs.counter("repro_batch_pass_path_total", path="numpy").inc()
    degrade.report("batch.kernel", "numpy")
    # When every lane shares one plan array *and* the same step position
    # (lock-step batches: the common case for numeric sweeps over a
    # single harvester configuration), the pass reads a zero-copy 1-D
    # window of the shared plan and broadcasts each scalar across the
    # batch — skipping the [pass_n, M] matrix build entirely.  Values
    # are identical either way (same array, same indices).
    plan0 = lanes[0].sources[0].values
    start0 = lanes[0].sim.steps
    if all(
        lane.sources[0].values is plan0 and lane.sim.steps == start0
        for lane in lanes
    ):
        # Python-float rows: the fastest scalar ufunc operand path.
        vals = plan0[start0:start0 + pass_n].tolist()
    else:
        vals = _source_windows(members, 0, pass_n)
    # Parameters every lane agrees on collapse to Python-float operands
    # (bit-identical arithmetic, one array read per step less; grid
    # sweeps usually vary only an axis or two).
    cap = _uniform_scalar(cap)
    half_c = 0.5 * cap if isinstance(cap, float) else half_c
    v_max = _uniform_scalar(v_max)
    drop = _uniform_scalar(drop)
    r_total = _uniform_scalar(r_total)
    e_dem = _uniform_scalar(e_dem)
    v_rise = _uniform_scalar(v_rise)
    v_fall = _uniform_scalar(v_fall)
    vcc = vcc_full[:, :pass_n]
    alive = np.ones(m_count, dtype=bool)
    alive_all = True
    min_hz = int(horizons.min())
    dt_arr = _uniform_scalar(dt_raw)
    # ``has_fall`` (computed above, pre-scalarization): skip the lower-
    # threshold comparison when no lane has one (the OFF phase:
    # v_falling is -inf across the batch) — the upper threshold is
    # always finite (boot/wake voltages), so it is always checked.
    # Preallocated per-step scratch: the hot loop runs allocation-free.
    b_head = np.empty(m_count, dtype=float)
    b_before = np.empty(m_count, dtype=float)
    b_q = np.empty(m_count, dtype=float)
    b_tv = np.empty(m_count, dtype=float)
    b_after = np.empty(m_count, dtype=float)
    b_gain = np.empty(m_count, dtype=float)
    b_rem = np.empty(m_count, dtype=float)
    b_deliv = np.empty(m_count, dtype=float)
    b_sdel = np.empty(m_count, dtype=float)
    b_ge = np.empty(m_count, dtype=bool)
    b_lt = np.empty(m_count, dtype=bool)
    b_starve = np.empty(m_count, dtype=bool)
    b_flag = np.empty(m_count, dtype=bool)
    # Deferred energy ledger.  Within an uninterrupted run of unmasked
    # no-starve steps every lane delivers exactly e_dem, and the commit
    # relation half_c*v'^2 = avail - e_dem makes the per-step harvest
    # gains telescope:
    #
    #   sum(dh) = half_c*(v_end^2 - v_start^2) + n*e_dem
    #   sum(delivered) = n*e_dem,  sum(starved) = 0
    #
    # so the per-step ledger arithmetic drops out of the hot loop and a
    # segment settles in O(1) vector ops when it closes (a starve, an
    # event, a frozen lane, or the end of the pass).  The vcc recursion
    # itself is untouched — traces stay bit-identical; the settled sums
    # differ from per-step accumulation only by float re-association,
    # far inside the kernel's documented ~1e-12 metrics tolerance.
    seg_sq = np.multiply(v, v)
    seg_start = 0
    deferred = True
    committed = 0

    def _settle_segment(upto: int) -> None:
        """Fold the deferred ledger for steps [seg_start, upto) using the
        present ``v`` as the segment-end voltage."""
        nonlocal seg_start
        n = upto - seg_start
        if n > 0:
            t = np.multiply(v, v, out=b_before)
            np.subtract(t, seg_sq, out=t)
            np.multiply(t, half_c, out=t)
            np.add(harvested, t, out=harvested)
            nd = np.multiply(e_dem, float(n), out=b_gain)
            np.add(harvested, nd, out=harvested)
            np.add(consumed, nd, out=consumed)
        seg_start = upto

    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        for i in range(pass_n):
            # Shared prefix, scalar-loop order: head = values[i]-v-drop;
            # vn = v + (head/r_total*dt)/C, clamped to v_max.  The
            # head>0 gate folds into max(q, 0): a non-positive charge
            # becomes +0.0 and v + 0.0 is bit-identical to v, and the
            # energy gain (after - before) is then a - a = +0.0, exactly
            # the scalar loop's dh = 0.0 for a non-charging step.
            head = np.subtract(vals[i], v, out=b_head)
            np.subtract(head, drop, out=head)
            q = np.divide(head, r_total, out=b_q)
            np.multiply(q, dt_arr, out=q)
            np.divide(q, cap, out=q)
            np.maximum(q, 0.0, out=q)
            tv = np.add(v, q, out=b_tv)
            np.minimum(tv, v_max, out=tv)
            ev = np.greater_equal(tv, v_rise, out=b_ge)
            if has_fall:
                lt = np.less(tv, v_fall, out=b_lt)
                ev = np.logical_or(ev, lt, out=b_ge)
            after = np.multiply(half_c, tv, out=b_after)
            np.multiply(after, tv, out=after)
            if alive_all:
                starve = np.greater_equal(e_dem, after, out=b_starve)
                flag = np.logical_or(ev, starve, out=b_flag)
                if not flag.any():
                    # Fast path: every lane commits, nobody starves —
                    # one reduction, no ledger arithmetic (deferred).
                    rem = np.subtract(after, e_dem, out=b_rem)
                    np.multiply(rem, 2.0, out=rem)
                    np.divide(rem, cap, out=rem)
                    np.sqrt(rem, out=v)
                    vcc[:, i] = v
                    committed = i + 1
                    if i + 1 >= min_hz:
                        np.greater(horizons, i + 1, out=alive)
                        alive_all = bool(alive.all())
                        live = int(np.count_nonzero(alive))
                        if live == 0:
                            break
                        if (
                            i + 1 >= _EARLY_EXIT_MIN_STEPS
                            and live * 4 < m_count
                        ):
                            np.copyto(taken, i + 1, where=alive)
                            break
                    continue
                if not ev.any():
                    # Some lane starves but nobody events: settle the
                    # open segment (v is still the pre-step voltage)
                    # and take this one step with the explicit ledger.
                    _settle_segment(i)
                    before = np.multiply(half_c, v, out=b_before)
                    np.multiply(before, v, out=before)
                    gain = np.subtract(after, before, out=b_gain)
                    np.add(harvested, gain, out=harvested)
                    rem = np.subtract(after, e_dem, out=b_rem)
                    np.multiply(rem, 2.0, out=rem)
                    np.divide(rem, cap, out=rem)
                    root = np.sqrt(rem, out=rem)
                    np.copyto(v, root)
                    np.copyto(v, 0.0, where=starve)
                    deliv = b_deliv
                    np.copyto(deliv, e_dem)
                    np.copyto(deliv, after, where=starve)
                    np.add(consumed, deliv, out=consumed)
                    sdel = np.subtract(e_dem, deliv, out=b_sdel)
                    np.add(starved, sdel, out=starved)
                    vcc[:, i] = v
                    committed = i + 1
                    np.multiply(v, v, out=seg_sq)
                    seg_start = i + 1
                    if i + 1 >= min_hz:
                        np.greater(horizons, i + 1, out=alive)
                        alive_all = bool(alive.all())
                        live = int(np.count_nonzero(alive))
                        if live == 0:
                            break
                        if (
                            i + 1 >= _EARLY_EXIT_MIN_STEPS
                            and live * 4 < m_count
                        ):
                            np.copyto(taken, i + 1, where=alive)
                            break
                    continue
            # Masked path: at least one lane is frozen or events now.
            if deferred:
                # All lanes committed steps [seg_start, i) unmasked and
                # v is unchanged since the last commit: settle once,
                # then run the explicit per-lane ledger from here on.
                _settle_segment(i)
                deferred = False
            newly = alive & ev
            if newly.any():
                np.copyto(taken, i, where=newly)
            commit = alive & ~ev
            before = np.multiply(half_c, v, out=b_before)
            np.multiply(before, v, out=before)
            gain = np.subtract(after, before, out=b_gain)
            np.copyto(harvested, harvested + gain, where=commit)
            starve = np.greater_equal(e_dem, after, out=b_starve)
            rem = np.subtract(after, e_dem, out=b_rem)
            np.multiply(rem, 2.0, out=rem)
            np.divide(rem, cap, out=rem)
            root = np.sqrt(rem, out=rem)
            np.copyto(v, root, where=commit)
            np.copyto(v, 0.0, where=commit & starve)
            deliv = b_deliv
            np.copyto(deliv, e_dem)
            np.copyto(deliv, after, where=starve)
            np.copyto(consumed, consumed + deliv, where=commit)
            sdel = np.subtract(e_dem, deliv, out=b_sdel)
            np.copyto(starved, starved + sdel, where=commit)
            vcc[:, i] = v
            alive = commit & (np.int64(i + 1) < horizons)
            alive_all = False
            live = int(np.count_nonzero(alive))
            if live == 0:
                break
            if i + 1 >= _EARLY_EXIT_MIN_STEPS and live * 4 < m_count:
                # Most lanes are frozen: cut the pass short (shorter
                # chunks are equally valid) and regather.
                np.copyto(taken, i + 1, where=alive)
                break
    if deferred:
        _settle_segment(committed)
    _commit_pass(members, horizons, taken, v, harvested, consumed,
                 starved, e_dem_py, vcc, stats)


def _general_pass(members: List[_Gathered], stats: BatchStats) -> None:
    """Vectorized counterpart of :meth:`SupplyRail._chunk_loop`.

    Handles any mix of rectified/power sources, multiple loads, leakage
    and ESR draw overhead.  Every lane in the group shares the source
    kind sequence and load count; all other parameters are per-lane
    arrays.  Operation order per step matches the scalar loop so every
    committed step is bit-identical.
    """
    obs.counter("repro_batch_pass_path_total", path="numpy-general").inc()
    _pass_order(members)
    m_count = len(members)
    lanes = [g.lane for g in members]
    n_sources = len(lanes[0].sources)
    n_loads = len(members[0].profiles)
    cap_n = _pass_cap(m_count)
    horizons = np.array(
        [min(g.horizon, cap_n) for g in members], dtype=np.int64
    )
    pass_n = int(horizons.max())
    dt_arr = np.array([lane.dt for lane in lanes], dtype=float)
    v = np.array([g.v for g in members], dtype=float)
    cap = np.array([lane.physics.capacitance for lane in lanes], dtype=float)
    half_c = 0.5 * cap
    v_max = np.array([lane.physics.v_max for lane in lanes], dtype=float)
    e_cap = (half_c * v_max) * v_max
    overhead = np.array([lane.overhead for lane in lanes], dtype=float)
    has_leak = any(lane.leak is not None for lane in lanes)
    leak = np.array(
        [1.0 if lane.leak is None else lane.leak for lane in lanes],
        dtype=float,
    )
    source_vals = [
        _source_windows(members, k, pass_n) for k in range(n_sources)
    ]
    source_kind = [lanes[0].sources[k].kind for k in range(n_sources)]
    source_drop = [
        np.array([lane.sources[k].drop for lane in lanes], dtype=float)
        for k in range(n_sources)
    ]
    source_rt = [
        np.array([lane.sources[k].r_total for lane in lanes], dtype=float)
        for k in range(n_sources)
    ]
    # Per-load constants; e_const precombined per lane in Python floats
    # (power * dt + energy), matching the scalar loop's precombination.
    load_e_const = [
        np.array(
            [g.profiles[j].power * g.lane.dt + g.profiles[j].energy
             for g in members],
            dtype=float,
        )
        for j in range(n_loads)
    ]
    load_res = [
        np.array(
            [np.inf if g.profiles[j].resistance is None
             else g.profiles[j].resistance for g in members],
            dtype=float,
        )
        for j in range(n_loads)
    ]
    load_cur = [
        np.array([g.profiles[j].current for g in members], dtype=float)
        for j in range(n_loads)
    ]
    load_gain = [
        np.array([g.profiles[j].current_gain for g in members], dtype=float)
        for j in range(n_loads)
    ]
    load_rise = [
        np.array([g.profiles[j].v_rising for g in members], dtype=float)
        for j in range(n_loads)
    ]
    load_fall = [
        np.array([g.profiles[j].v_falling for g in members], dtype=float)
        for j in range(n_loads)
    ]
    harvested = np.array(
        [lane.rail.stats.harvested for lane in lanes], dtype=float
    )
    leaked = np.array([lane.rail.stats.leaked for lane in lanes], dtype=float)
    consumed = np.array(
        [lane.rail.stats.consumed for lane in lanes], dtype=float
    )
    starved = np.array(
        [lane.rail.stats.starved for lane in lanes], dtype=float
    )
    esums = [np.zeros(m_count, dtype=float) for _ in range(n_loads)]
    edems = [None] * n_loads
    # Lane-major, padded rows: see the matching comment in _simple_pass.
    vcc = np.empty((m_count, pass_n + 8), dtype=float)[:, :pass_n]
    taken = horizons.copy()
    alive = np.ones(m_count, dtype=bool)
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        for i in range(pass_n):
            v0 = v
            tv = v.copy()
            h_t = harvested
            for k in range(n_sources):
                if source_kind[k] == "v":
                    head = source_vals[k][i] - v0
                    head = head - source_drop[k]
                    pos = head > 0.0
                    before = (half_c * tv) * tv
                    q = head / source_rt[k]
                    q = q * dt_arr
                    q = q / cap
                    vn = tv + q
                    clamped = np.minimum(vn, v_max)
                    after = (half_c * clamped) * clamped
                    h_t = np.where(pos, h_t + (after - before), h_t)
                    tv = np.where(pos, clamped, tv)
                else:
                    p = source_vals[k][i]
                    p_dt = p * dt_arr
                    ppos = p > 0.0
                    e = (half_c * tv) * tv
                    e_new = e + p_dt
                    over = e_new > e_cap
                    accepted = e_cap - e
                    rem = 2.0 * e_new
                    rem = rem / cap
                    root = np.sqrt(rem)
                    h_over = np.where(accepted > 0.0, h_t + accepted, h_t)
                    h_new = np.where(over, h_over, h_t + p_dt)
                    tv_new = np.where(over, v_max, root)
                    tv = np.where(ppos, tv_new, tv)
                    h_t = np.where(ppos, h_new, h_t)
            le_t = leaked
            if has_leak:
                before = (half_c * tv) * tv
                tv = tv * leak
                after = (half_c * tv) * tv
                le_t = le_t + (before - after)
            co_t = consumed
            st_t = starved
            evstep = np.zeros(m_count, dtype=bool)
            for j in range(n_loads):
                ev = (tv >= load_rise[j]) | (tv < load_fall[j])
                evstep = evstep | ev
                r_term = ((tv * tv) / load_res[j]) * dt_arr
                c_term = ((load_cur[j] * tv) * load_gain[j]) * dt_arr
                e_dem = (r_term + c_term) + load_e_const[j]
                demand = e_dem * overhead
                avail = (half_c * tv) * tv
                starve = demand >= avail
                rem = avail - demand
                rem = 2.0 * rem
                rem = rem / cap
                root = np.sqrt(rem)
                delivered = np.where(
                    starve, avail / overhead, demand / overhead
                )
                tv = np.where(starve, 0.0, root)
                co_t = co_t + delivered
                st_t = st_t + (e_dem - delivered)
                edems[j] = e_dem
            newly = alive & evstep
            if newly.any():
                np.copyto(taken, i, where=newly)
            commit = alive & ~evstep
            np.copyto(v, tv, where=commit)
            np.copyto(harvested, h_t, where=commit)
            if has_leak:
                np.copyto(leaked, le_t, where=commit)
            np.copyto(consumed, co_t, where=commit)
            np.copyto(starved, st_t, where=commit)
            for j in range(n_loads):
                np.copyto(esums[j], esums[j] + edems[j], where=commit)
            vcc[:, i] = v
            alive = commit & (np.int64(i + 1) < horizons)
            live = int(np.count_nonzero(alive))
            if live == 0:
                break
            if i + 1 >= _EARLY_EXIT_MIN_STEPS and live * 4 < m_count:
                np.copyto(taken, i + 1, where=alive)
                break
    for m, gathered in enumerate(members):
        steps_taken = int(taken[m])
        _commit_lane(
            gathered.lane,
            gathered,
            steps_taken,
            float(v[m]),
            {
                "harvested": float(harvested[m]),
                "leaked": float(leaked[m]),
                "consumed": float(consumed[m]),
                "starved": float(starved[m]),
            },
            [float(esums[j][m]) for j in range(n_loads)],
            vcc[m, :steps_taken],
            evented=steps_taken < int(horizons[m]),
            stats=stats,
        )
    stats.passes += 1


def _finalize(lane: _Lane, capture_traces: Sequence[str],
              max_trace_samples: int) -> RunResult:
    """Wrap a finished lane as a RunResult, mirroring run_point_payload."""
    from repro.core.system import SystemRunResult

    spec = lane.spec
    try:
        run = SystemRunResult(
            t_end=lane.sim.t,
            traces=lane.sim._recorder.traces(),
            rail=lane.rail,
            platform=lane.platform,
        )
        return RunResult.from_system_run(
            run,
            spec,
            overrides=lane.overrides,
            capture_traces=tuple(capture_traces),
            max_trace_samples=max_trace_samples,
        )
    except Exception as error:
        return RunResult.failed(
            f"{type(error).__name__}: {error}",
            spec_hash=spec_hash(spec),
            name=spec.name,
            overrides=lane.overrides,
            spec=spec,
        )


def _run_solo(spec: ScenarioSpec, overrides: Dict[str, Any],
              capture_traces: Sequence[str],
              max_trace_samples: int) -> RunResult:
    """The unbatched per-scenario path, identical to run_point_payload."""
    try:
        system = spec.build()
        run = system.run(spec.duration, decimate=spec.decimate)
        return RunResult.from_system_run(
            run,
            spec,
            overrides=overrides,
            capture_traces=tuple(capture_traces),
            max_trace_samples=max_trace_samples,
        )
    except Exception as error:
        return RunResult.failed(
            f"{type(error).__name__}: {error}",
            spec_hash=spec_hash(spec),
            name=spec.name,
            overrides=overrides,
            spec=spec,
        )


def run_specs_batched(
    specs: Sequence[ScenarioSpec],
    overrides_list: Optional[Sequence[Dict[str, Any]]] = None,
    capture_traces: Sequence[str] = (),
    max_trace_samples: int = MAX_TRACE_SAMPLES,
    stats: Optional[BatchStats] = None,
    round_hook: Optional[RoundHook] = None,
) -> List[RunResult]:
    """Run a batch of same-topology scenarios through the SoA kernel.

    Returns one :class:`RunResult` per spec, in order — each identical
    in spec hash, event timing and vcc trace to a per-scenario fast run.
    Members the batch kernel cannot vectorize run through the untouched
    per-scenario path (and count as ``diverged`` in ``stats``); a member
    that fails to build or run becomes an error result, exactly as
    :func:`repro.spec.runner.run_point_payload` produces.

    Args:
        specs: the batch members (callers group by :func:`topology_key`;
            mixed batches still produce correct results, just fewer
            shared passes).
        overrides_list: per-member override dicts recorded on results.
        capture_traces / max_trace_samples: as for the point worker.
        stats: a :class:`BatchStats` to accumulate into (optional).
        round_hook: called with the running stats after every round.
    """
    if overrides_list is None:
        overrides_list = [{} for _ in specs]
    if stats is None:
        stats = BatchStats()
    # Delta basis for the obs flush below: the caller may hand in a
    # BatchStats that already accumulated earlier batches.
    stats0 = stats.to_dict()
    t0 = time.monotonic()
    batch_span = obs.span("batch.run", specs=len(specs))
    batch_span.__enter__()
    results: List[Optional[RunResult]] = [None] * len(specs)
    cache = _PlanCache()
    lanes: List[_Lane] = []
    for index, (spec, overrides) in enumerate(zip(specs, overrides_list)):
        overrides = dict(overrides)
        if not batchable(spec):
            results[index] = _run_solo(
                spec, overrides, capture_traces, max_trace_samples
            )
            continue
        try:
            lane = _build_lane(index, spec, overrides)
            if not _lane_chunkable(lane) or not _lane_vectorizable(
                lane, cache
            ):
                results[index] = _run_solo(
                    spec, overrides, capture_traces, max_trace_samples
                )
                stats.diverged += 1
                continue
        except Exception as error:
            results[index] = RunResult.failed(
                f"{type(error).__name__}: {error}",
                spec_hash=spec_hash(spec),
                name=spec.name,
                overrides=overrides,
                spec=spec,
            )
            continue
        lanes.append(lane)
    stats.members += len(lanes)
    try:
        _drive_lanes(lanes, stats, round_hook)
        for lane in lanes:
            results[lane.index] = _finalize(
                lane, capture_traces, max_trace_samples
            )
    except Exception:
        # Batch-machinery safety net: rerun every unfinished member
        # through the per-scenario path on a fresh system (results are
        # deterministic, so a rebuild reproduces the run exactly).
        for lane in lanes:
            if results[lane.index] is None:
                results[lane.index] = _run_solo(
                    lane.spec, lane.overrides, capture_traces,
                    max_trace_samples,
                )
                stats.diverged += 1
    if obs.obs_enabled():
        delta = {
            key: value - stats0.get(key, 0)
            for key, value in stats.to_dict().items()
        }
        for key in ("members", "passes", "advanced", "settled", "diverged"):
            if delta.get(key):
                obs.counter(f"repro_batch_{key}_total").inc(delta[key])
        obs.histogram("repro_batch_run_seconds").observe(
            time.monotonic() - t0
        )
        batch_span.annotate(**delta)
    batch_span.__exit__(None, None, None)
    return [result for result in results if result is not None]


def _drive_lanes(
    lanes: List[_Lane], stats: BatchStats, round_hook: Optional[RoundHook]
) -> None:
    """The round loop: settle, gather, group, pass — until all lanes end."""
    while True:
        runnable = [lane for lane in lanes if not lane.done]
        if not runnable:
            return
        if len(runnable) < _MIN_VECTOR_LANES:
            for lane in runnable:
                stats.diverged += 1
                _finish_solo(lane, stats)
            return
        # 1. Scalar settlement: event-boundary steps and backoff runs
        #    execute through the unmodified reference path.
        for lane in runnable:
            if lane.pending_scalar and not lane.done:
                count = lane.pending_scalar
                lane.pending_scalar = 0
                _run_scalar_steps(lane, count, stats)
        # 2. Gather every lane's current regime and group compatible
        #    shapes for shared passes.
        groups: Dict[Tuple, List[_Gathered]] = {}
        for lane in runnable:
            if lane.done:
                continue
            gathered = _gather(lane)
            if gathered is None:
                if not lane.done:
                    lane.backoff = (
                        min(2 * lane.backoff, _MAX_BACKOFF)
                        if lane.backoff
                        else 1
                    )
                    lane.pending_scalar = lane.backoff
                continue
            lane.backoff = 0
            groups.setdefault(_group_key(gathered), []).append(gathered)
        # 3. Advance each group: vectorized passes for real groups, the
        #    ordinary scalar chunk loop for loners.
        for key, members in groups.items():
            if len(members) < _MIN_VECTOR_GROUP or key[0] == "c":
                for gathered in members:
                    _advance_chunk_scalar(gathered.lane, stats)
            elif key[0] == "s":
                _simple_pass(members, stats)
            else:
                _general_pass(members, stats)
        if round_hook is not None:
            round_hook(stats)
