"""Runtime-compiled C fast path for the batched simple pass.

The hot loop of :func:`repro.sim.batch._simple_pass` is a per-step
voltage recursion whose dependency chain (divide, then square root)
cannot be hidden by numpy's one-ufunc-at-a-time execution.  This module
compiles a C transcription of :meth:`SupplyRail._chunk_loop_simple` at
first use — each lane runs the exact scalar operation sequence, and
lanes are interleaved in blocks so their independent chains pipeline
through the divider — and loads it through :mod:`ctypes`.

Exactness: the C body performs the same IEEE-754 double operations in
the same order as the Python loop (CPython floats are C doubles), and
the build disables contraction (``-ffp-contract=off -fno-fast-math``)
so no fused multiply-add can perturb a rounding.  A self-check at load
time replays a small scenario against a Python reference and discards
the library on any bit difference.

Everything degrades gracefully: no compiler, a failed build, a failed
self-check, or ``REPRO_BATCH_CKERNEL=0`` simply leave the numpy pass in
charge.  The compiled object is cached on disk keyed by a digest of the
source and flags, so each machine compiles once.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

from repro import faults, obs

#: Interleave width: independent per-lane recursions advanced together
#: so their divide/sqrt latencies overlap.  8 saturates the divider on
#: current x86-64 cores; the tail loop handles any remainder.
_BLOCK = 8

_SOURCE = r"""
#include <math.h>
#include <stdint.h>

#define BLK %(block)d

/* Exact transcription of SupplyRail._chunk_loop_simple for one lane,
   starting at pass step i0.  Returns the committed step count (an
   event boundary leaves the lane frozen at the pre-step voltage). */
static int64_t lane_tail(
    const double *values, int64_t i0, int64_t n,
    double *v_io, double C, double vm, double dp, double rt,
    double ed, double vr, double vf, double dtv,
    double *hv_io, double *co_io, double *st_io, double *row)
{
    const double half_c = 0.5 * C;
    double vv = *v_io, hv = *hv_io, co = *co_io, st = *st_io;
    int64_t i = i0;
    while (i < n) {
        double head = values[i] - vv - dp;
        double vn, dh;
        if (head > 0.0) {
            double before = half_c * vv * vv;
            vn = vv + (head / rt * dtv) / C;
            if (vn > vm) vn = vm;
            dh = half_c * vn * vn - before;
        } else {
            vn = vv;
            dh = 0.0;
        }
        if (vn >= vr || vn < vf) break;
        double avail = half_c * vn * vn;
        double delivered;
        if (ed >= avail) { vn = 0.0; delivered = avail; }
        else { vn = sqrt(2.0 * (avail - ed) / C); delivered = ed; }
        hv += dh;
        co += delivered;
        st += ed - delivered;
        vv = vn;
        row[i] = vv;
        ++i;
    }
    *v_io = vv; *hv_io = hv; *co_io = co; *st_io = st;
    return i;
}

void simple_pass(
    int64_t m_count,
    const uintptr_t *vals,      /* per-lane pointer to pass step 0 */
    const int64_t *horizons,
    double *v,
    const double *cap,
    const double *v_max,
    const double *drop,
    const double *r_total,
    const double *e_dem,
    const double *v_rise,
    const double *v_fall,
    const double *dt,
    double *harvested,
    double *consumed,
    double *starved,
    double *vcc,                /* [m_count, row_stride] */
    int64_t row_stride,
    int64_t *taken)
{
    int64_t lane = 0;
    while (lane + BLK <= m_count) {
        const double *values[BLK];
        double vv[BLK], C[BLK], hc[BLK], vm[BLK], dp[BLK], rt[BLK];
        double ed[BLK], vr[BLK], vf[BLK], dtv[BLK];
        double hv[BLK], co[BLK], st[BLK];
        double *row[BLK];
        int64_t n_min = horizons[lane];
        for (int k = 0; k < BLK; ++k) {
            int64_t l = lane + k;
            values[k] = (const double *) vals[l];
            vv[k] = v[l]; C[k] = cap[l]; hc[k] = 0.5 * C[k];
            vm[k] = v_max[l]; dp[k] = drop[l]; rt[k] = r_total[l];
            ed[k] = e_dem[l]; vr[k] = v_rise[l]; vf[k] = v_fall[l];
            dtv[k] = dt[l];
            hv[k] = harvested[l]; co[k] = consumed[l]; st[k] = starved[l];
            row[k] = vcc + l * row_stride;
            if (horizons[l] < n_min) n_min = horizons[l];
        }
        /* Lock-step over the block while nobody events.  The branchless
           first half computes identical doubles to the branch form: a
           non-positive charge clamps to +0.0 (vv + 0.0 == vv, and the
           energy gain becomes a - a = +0.0, the scalar loop's dh = 0.0),
           and vv <= vm always holds so the unconditional clamp is a
           no-op on a non-charging step. */
        int64_t i = 0;
        for (; i < n_min; ++i) {
            double vn[BLK], dh[BLK];
            int ev = 0;
            for (int k = 0; k < BLK; ++k) {
                double head = values[k][i] - vv[k] - dp[k];
                double before = hc[k] * vv[k] * vv[k];
                double q = head / rt[k] * dtv[k] / C[k];
                q = (q > 0.0) ? q : 0.0;
                double tv = vv[k] + q;
                tv = (tv > vm[k]) ? vm[k] : tv;
                vn[k] = tv;
                dh[k] = hc[k] * tv * tv - before;
                ev |= (tv >= vr[k]) | (tv < vf[k]);
            }
            if (ev) break;  /* no lane committed this step */
            for (int k = 0; k < BLK; ++k) {
                double avail = hc[k] * vn[k] * vn[k];
                int sv = (ed[k] >= avail);
                double root = sqrt(2.0 * (avail - ed[k]) / C[k]);
                double vfin = sv ? 0.0 : root;
                double delivered = sv ? avail : ed[k];
                hv[k] += dh[k];
                co[k] += delivered;
                st[k] += ed[k] - delivered;
                vv[k] = vfin;
                row[k][i] = vfin;
            }
        }
        /* Settle each lane to its own event or horizon (step i reruns
           from the unchanged pre-step state, so the eventing lane
           freezes there and the others continue). */
        for (int k = 0; k < BLK; ++k) {
            int64_t l = lane + k;
            double vl = vv[k], hl = hv[k], cl = co[k], sl = st[k];
            taken[l] = lane_tail(values[k], i, horizons[l], &vl,
                                 C[k], vm[k], dp[k], rt[k], ed[k],
                                 vr[k], vf[k], dtv[k],
                                 &hl, &cl, &sl, row[k]);
            v[l] = vl; harvested[l] = hl; consumed[l] = cl; starved[l] = sl;
        }
        lane += BLK;
    }
    for (; lane < m_count; ++lane) {
        double vl = v[lane], hl = harvested[lane];
        double cl = consumed[lane], sl = starved[lane];
        taken[lane] = lane_tail((const double *) vals[lane], 0,
                                horizons[lane], &vl,
                                cap[lane], v_max[lane], drop[lane],
                                r_total[lane], e_dem[lane], v_rise[lane],
                                v_fall[lane], dt[lane],
                                &hl, &cl, &sl, vcc + lane * row_stride);
        v[lane] = vl; harvested[lane] = hl;
        consumed[lane] = cl; starved[lane] = sl;
    }
}
""" % {"block": _BLOCK}

#: No ``-march``: correctly-rounded scalar/SSE2 code is both portable
#: and (measured) faster here than the wide-vector encodings, and the
#: contraction switches guarantee no FMA rewrites the rounding sequence.
_CFLAGS = ["-O3", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off"]

_UNSET = object()
_cached: object = _UNSET

#: Circuit breaker on the runtime build: after this many consecutive
#: failed compile attempts the loader stops invoking the compiler and
#: the numpy pass stays in charge until :func:`reset_breaker` (a flaky
#: toolchain should cost a bounded number of build attempts, not one
#: per ``reset_cache``/process-pool respawn).  Successful builds —
#: including cache hits — close the breaker.
BREAKER_THRESHOLD = 3
_compile_failures = 0


def breaker_open() -> bool:
    """True when repeated compile failures disabled further attempts."""
    return _compile_failures >= BREAKER_THRESHOLD


def reset_breaker() -> None:
    """Close the compile circuit breaker (tests, operator override)."""
    global _compile_failures
    _compile_failures = 0


def _note_compile_failure() -> None:
    global _compile_failures
    _compile_failures += 1
    obs.counter("repro_ckernel_compile_failures_total").inc()
    if _compile_failures == BREAKER_THRESHOLD:
        obs.counter("repro_ckernel_breaker_trips_total").inc()
        obs.instant("ckernel.breaker_open", failures=_compile_failures)


def _cache_dir() -> str:
    override = os.environ.get("REPRO_CKERNEL_DIR")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-ckernel")


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile() -> Optional[str]:
    """Build (or reuse) the shared object; returns its path or None."""
    global _compile_failures
    if breaker_open():
        return None
    digest = hashlib.sha256(
        ("\x00".join([_SOURCE] + _CFLAGS)).encode()
    ).hexdigest()[:16]
    # The injection fires *before* the disk-cache check so chaos runs
    # exercise the breaker even on machines holding a warm build cache.
    if faults.fire("ckernel.compile_fail", digest):
        _note_compile_failure()
        return None
    cache = _cache_dir()
    so_path = os.path.join(cache, f"simple_pass-{digest}.so")
    if os.path.exists(so_path):
        _compile_failures = 0
        return so_path
    compiler = _find_compiler()
    if compiler is None:
        # No toolchain at all is a permanent condition, not a flaky
        # build — it neither trips nor closes the breaker.
        return None
    try:
        os.makedirs(cache, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as work:
            c_path = os.path.join(work, "simple_pass.c")
            with open(c_path, "w") as fh:
                fh.write(_SOURCE)
            tmp_so = os.path.join(work, "simple_pass.so")
            result = subprocess.run(
                [compiler, *_CFLAGS, "-o", tmp_so, c_path, "-lm"],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                _note_compile_failure()
                return None
            # Atomic publish: concurrent builders (warm-pool workers)
            # race benignly to install identical bytes.
            os.replace(tmp_so, so_path)
        _compile_failures = 0
        return so_path
    except (OSError, subprocess.SubprocessError):
        _note_compile_failure()
        return None


def _bind(so_path: str):
    lib = ctypes.CDLL(so_path)
    fn = lib.simple_pass
    fn.restype = None
    f64 = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
    i64 = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
    uptr = np.ctypeslib.ndpointer(np.uintp, flags="C_CONTIGUOUS")
    fn.argtypes = [
        ctypes.c_int64,  # m_count
        uptr,            # vals (per-lane data pointers)
        i64,             # horizons
        f64, f64, f64, f64, f64, f64, f64, f64, f64,  # v .. dt
        f64, f64, f64,   # harvested, consumed, starved
        f64,             # vcc
        ctypes.c_int64,  # row_stride
        i64,             # taken
    ]
    return fn


def _reference_lane(values, v, C, vm, dp, rt, ed, vr, vf, dtv, n):
    """Python-float replay of the scalar loop (the exactness oracle)."""
    import math

    half_c = 0.5 * C
    hv = co = st = 0.0
    out = []
    i = 0
    while i < n:
        head = values[i] - v - dp
        if head > 0.0:
            before = half_c * v * v
            vn = v + (head / rt * dtv) / C
            if vn > vm:
                vn = vm
            dh = half_c * vn * vn - before
        else:
            vn = v
            dh = 0.0
        if vn >= vr or vn < vf:
            break
        avail = half_c * vn * vn
        if ed >= avail:
            vn = 0.0
            delivered = avail
        else:
            vn = math.sqrt(2.0 * (avail - ed) / C)
            delivered = ed
        hv += dh
        co += delivered
        st += ed - delivered
        v = vn
        out.append(v)
        i += 1
    return i, v, hv, co, st, out


def _self_check(fn) -> bool:
    """Replay a tiny mixed scenario and demand bit-identical results.

    The case exercises every branch: charging, the v_max clamp, a
    starved step, a non-charging step, and an event boundary on one
    lane while the other runs to horizon.
    """
    n = 40
    steps = np.arange(n, dtype=float)
    plan = np.ascontiguousarray(
        np.maximum(1.2 * np.sin(steps * 0.7), 0.0)
    )
    m = 3
    params = [
        # (v0, C, v_max, drop, r_total, e_dem, v_rise, v_fall, dt)
        (0.30, 47e-6, 3.3, 0.2, 150.0, 5e-11, 2.9, -np.inf, 50e-6),
        (0.90, 10e-6, 1.0, 0.2, 50.0, 1e-9, 1.0, -np.inf, 50e-6),
        (0.05, 22e-6, 3.3, 0.2, 500.0, 2e-7, 2.9, 0.01, 50e-6),
    ]
    cols = [np.array([p[j] for p in params]) for j in range(9)]
    v, cap, vmx, drp, rt, ed, vr, vf, dt = cols
    hv = np.zeros(m)
    co = np.zeros(m)
    st = np.zeros(m)
    horizons = np.full(m, n, dtype=np.int64)
    stride = n + 8
    vcc = np.empty((m, stride))
    taken = np.empty(m, dtype=np.int64)
    ptrs = np.full(m, plan.ctypes.data, dtype=np.uintp)
    fn(m, ptrs, horizons, v, cap, vmx, drp, rt, ed, vr, vf, dt,
       hv, co, st, vcc, stride, taken)
    values = plan.tolist()
    for lane in range(m):
        ri, rv, rhv, rco, rst, rout = _reference_lane(
            values, *params[lane], n
        )
        if int(taken[lane]) != ri:
            return False
        if (rv != v[lane] or rhv != hv[lane] or rco != co[lane]
                or rst != st[lane]):
            return False
        if rout and list(vcc[lane, :ri]) != rout:
            return False
    return True


def load():
    """The bound ``simple_pass`` callable, or None when unavailable."""
    global _cached
    if _cached is not _UNSET:
        return _cached
    fn = None
    if os.environ.get("REPRO_BATCH_CKERNEL", "1") != "0":
        try:
            so_path = _compile()
            if so_path is not None:
                candidate = _bind(so_path)
                if _self_check(candidate):
                    fn = candidate
        except Exception:
            fn = None
    _cached = fn
    return fn


def reset_cache() -> None:
    """Forget the memoized load result (tests toggle the env switch)."""
    global _cached
    _cached = _UNSET
