"""Chunk-protocol descriptors for the fast simulation kernel.

The fast kernel (``Simulator(kernel="fast")``) advances the simulation in
macro-chunks of up to N steps instead of one step at a time.  Inside a
chunk every per-step quantity must be either precomputable (source
waveforms, which depend only on time) or expressible as a closed
per-step update on a scalar state (the storage voltage).  Stateful
discrete components — the MCU platform, checkpointing strategies,
governors — cannot be vectorized; instead they *declare their event
boundaries* (threshold crossings, state-machine transitions) through the
descriptors in this module, and the chunk is split at the first step
whose voltage crosses one of them.  The boundary step itself, and every
step for which no descriptor is available, runs through the unmodified
reference path, so chunking changes the execution schedule but not the
physics.

Three descriptor families exist:

* :class:`CapacitorPhysics` — published by a storage element
  (:meth:`~repro.storage.base.StorageElement.chunk_physics`) whose
  charge/energy updates the rail may inline: capacitor-law physics with
  an overvoltage clamp, optional exponential leakage and an optional
  fixed draw-overhead factor (supercap ESR).
* :class:`LoadProfile` — published by a rail load
  (:meth:`~repro.power.rail.RailLoad.load_profile`): the load's *event
  schedule descriptor* for its present regime.  The demand may mix a
  constant power, a constant per-step energy, a current-like
  voltage-proportional term and a resistive term; ``v_rising`` /
  ``v_falling`` are the declared voltage event boundaries (the chunk
  ends *before* the first step whose rail voltage, as seen by this
  load, satisfies ``v >= v_rising`` or ``v < v_falling``), and
  ``max_steps`` is the declared *time-based* event boundary (snapshot /
  restore completion, workload task boundaries): the chunk may advance
  at most that many steps, so the step on which the timed event fires
  always executes through the reference path.
* :class:`VoltageSourcePlan` / :class:`PowerSourcePlan` — published by an
  injector (:meth:`~repro.power.rail.Injector.chunk_plan`): the source
  waveform for the chunk precomputed as a plain list plus the scalar
  parameters needed to turn it into charge/energy per step.

All values are stored as plain Python floats/lists, not numpy arrays —
the rail's inner loop is scalar Python, and float arithmetic on list
elements is substantially faster than on numpy scalars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

#: The simulation kernels a Simulator/ScenarioSpec may select.
KERNELS = ("reference", "fast")


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` if valid, raise ``ValueError`` otherwise."""
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose one of {list(KERNELS)}"
        )
    return kernel


def chunk_times(t0: float, dt: float, n: int) -> np.ndarray:
    """The ``n`` step-start times from ``t0`` on the exact engine grid.

    The engine derives time as ``t == steps * dt``; source plans must
    evaluate waveforms at exactly those floats, because
    ``fl(t0) + fl(i*dt)`` differs from ``fl((steps+i)*dt)`` by an ulp on
    a quarter of all steps — enough to flip a threshold comparison onto
    an adjacent step and desynchronize event timing between kernels.
    When ``t0`` sits on the grid (the only case the engine produces),
    the step index is recovered exactly; any off-grid ``t0`` falls back
    to the additive form.
    """
    step0 = round(t0 / dt)
    if step0 * dt == t0:
        return np.arange(step0, step0 + n) * dt
    return t0 + np.arange(n) * dt


@dataclass
class CapacitorPhysics:
    """Inline-able storage physics: ``E = C V^2 / 2`` with a clamp.

    Attributes:
        capacitance: farads.
        v_max: overvoltage clamp.
        leak_tau: RC self-discharge time constant in seconds, or None for
            an ideal element.
        draw_overhead: multiplicative overhead applied to every energy
            draw (1.0 for an ideal capacitor; ``1 + esr_loss_fraction``
            for a supercapacitor).
        read_voltage / write_voltage: accessors syncing the live storage
            object with the chunk loop's local scalar state.
    """

    capacitance: float
    v_max: float
    leak_tau: Optional[float]
    draw_overhead: float
    read_voltage: Callable[[], float]
    write_voltage: Callable[[float], None]

    def leak_factor(self, dt: float) -> Optional[float]:
        """Per-step exponential decay factor, or None when ideal."""
        if self.leak_tau is None:
            return None
        return math.exp(-dt / self.leak_tau)


@dataclass
class LoadProfile:
    """A load's declared behaviour between event boundaries.

    The per-step energy demand (joules), with ``v`` the rail voltage the
    load sees that step, is assembled exactly as the reference
    :meth:`~repro.power.rail.RailLoad.advance` implementations compute
    it::

        ((current * v) * current_gain) * dt    (when current != 0)
        + power * dt                           (when power != 0)
        + v * v / resistance * dt              (when resistance set)
        + energy                               (constant joules per step)

    The association order of the ``current`` term mirrors the MCU active
    power model (``(i_leak + i_per_hz*f) * V * factor``) so chunked
    execution reproduces the reference arithmetic bit-for-bit.

    ``v_rising`` / ``v_falling`` declare voltage event boundaries;
    ``max_steps`` declares a time-based event boundary (the profile is
    only valid for that many further steps — an in-flight snapshot or
    restore completing, a workload reaching its final cycles).  The
    chunk stops short of every declared boundary; the boundary step
    itself reruns through the reference path.

    ``commit`` is called once with ``(steps, dt, energy)`` after the
    chunk — ``energy`` being the total joules this load demanded over
    the committed steps — so the load can account bulk side effects
    (state-residency metrics, consumed-energy counters, operation
    countdowns) for the steps it was advanced through.
    """

    power: float = 0.0
    resistance: Optional[float] = None
    current: float = 0.0
    current_gain: float = 1.0
    energy: float = 0.0
    v_rising: float = math.inf
    v_falling: float = -math.inf
    max_steps: Optional[int] = None
    commit: Optional[Callable[[int, float, float], None]] = None


@dataclass
class VoltageSourcePlan:
    """A rectified voltage source precomputed over one chunk.

    Per step ``i`` the charging current is
    ``max(0, values[i] - v_rail - drop) / r_total`` — exactly the
    rectifier equation with the per-chunk constants folded in.
    """

    values: List[float]
    drop: float
    r_total: float


@dataclass
class PowerSourcePlan:
    """A power-domain source precomputed over one chunk.

    ``values[i]`` is the available power at step ``i``; when ``converter``
    is set it is passed through ``converter.output_power`` against the
    live rail voltage each step (the converter is a pure function of
    ``(p_in, v_in)``).
    """

    values: List[float]
    converter: Optional[object] = None


class SourcePlanMemo:
    """Memoised per-step source values on the exact engine time grid.

    Closed-form harvesters evaluate their waveform over a whole chunk at
    once (:func:`chunk_times`); when a chunk ends early at an event
    boundary, the already-evaluated tail covers the grid the *next*
    chunks will ask for.  Because plan values are a pure function of the
    step index (``values[i]`` belongs to step ``step0 + i``), any
    requested window that falls inside a previously computed one is
    served as a slice — bit-identical to recomputing it — so a transient
    scenario that chunks in short state-bounded bursts still pays for
    each waveform sample once.

    ``get`` returns the cached slice or None; ``put`` stores a freshly
    computed window.  Only on-grid requests (``t0 == step0 * dt``, the
    only kind the engine produces) are memoised.
    """

    __slots__ = ("_step0", "_dt", "_values")

    def __init__(self) -> None:
        self._step0 = 0
        self._dt = 0.0
        self._values: Optional[List[float]] = None

    @staticmethod
    def grid_step(t0: float, dt: float) -> Optional[int]:
        """The exact step index of ``t0`` on the ``dt`` grid, or None."""
        step0 = round(t0 / dt)
        return step0 if step0 * dt == t0 else None

    def get(self, step0: int, dt: float, n: int) -> Optional[List[float]]:
        """The cached values for steps ``[step0, step0 + n)``, or None."""
        values = self._values
        if values is None or dt != self._dt:
            return None
        lo = step0 - self._step0
        hi = lo + n
        if lo < 0 or hi > len(values):
            return None
        return values[lo:hi]

    def put(self, step0: int, dt: float, values: List[float]) -> None:
        """Remember a freshly computed window."""
        self._step0 = step0
        self._dt = dt
        self._values = values

    def clear(self) -> None:
        """Drop the cache (component reset / waveform state change)."""
        self._values = None


@dataclass
class ChunkStats:
    """Diagnostic counters a fast-kernel simulator accumulates."""

    chunks: int = 0
    chunked_steps: int = 0
    fallback_steps: int = 0

    def chunked_fraction(self) -> float:
        """Fraction of all steps executed through the chunk path."""
        total = self.chunked_steps + self.fallback_steps
        if total == 0:
            return 0.0
        return self.chunked_steps / total
