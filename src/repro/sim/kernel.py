"""Chunk-protocol descriptors for the fast simulation kernel.

The fast kernel (``Simulator(kernel="fast")``) advances the simulation in
macro-chunks of up to N steps instead of one step at a time.  Inside a
chunk every per-step quantity must be either precomputable (source
waveforms, which depend only on time) or expressible as a closed
per-step update on a scalar state (the storage voltage).  Stateful
discrete components — the MCU platform, checkpointing strategies,
governors — cannot be vectorized; instead they *declare their event
boundaries* (threshold crossings, state-machine transitions) through the
descriptors in this module, and the chunk is split at the first step
whose voltage crosses one of them.  The boundary step itself, and every
step for which no descriptor is available, runs through the unmodified
reference path, so chunking changes the execution schedule but not the
physics.

Three descriptor families exist:

* :class:`CapacitorPhysics` — published by a storage element
  (:meth:`~repro.storage.base.StorageElement.chunk_physics`) whose
  charge/energy updates the rail may inline: capacitor-law physics with
  an overvoltage clamp, optional exponential leakage and an optional
  fixed draw-overhead factor (supercap ESR).
* :class:`LoadProfile` — published by a rail load
  (:meth:`~repro.power.rail.RailLoad.load_profile`) that currently
  behaves as a constant-power or resistive drain.  ``v_rising`` /
  ``v_falling`` are the declared event boundaries: the chunk ends
  *before* the first step whose rail voltage (as seen by this load)
  satisfies ``v >= v_rising`` or ``v < v_falling``.
* :class:`VoltageSourcePlan` / :class:`PowerSourcePlan` — published by an
  injector (:meth:`~repro.power.rail.Injector.chunk_plan`): the source
  waveform for the chunk precomputed as a plain list plus the scalar
  parameters needed to turn it into charge/energy per step.

All values are stored as plain Python floats/lists, not numpy arrays —
the rail's inner loop is scalar Python, and float arithmetic on list
elements is substantially faster than on numpy scalars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

#: The simulation kernels a Simulator/ScenarioSpec may select.
KERNELS = ("reference", "fast")


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` if valid, raise ``ValueError`` otherwise."""
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose one of {list(KERNELS)}"
        )
    return kernel


def chunk_times(t0: float, dt: float, n: int) -> np.ndarray:
    """The ``n`` step-start times from ``t0`` on the exact engine grid.

    The engine derives time as ``t == steps * dt``; source plans must
    evaluate waveforms at exactly those floats, because
    ``fl(t0) + fl(i*dt)`` differs from ``fl((steps+i)*dt)`` by an ulp on
    a quarter of all steps — enough to flip a threshold comparison onto
    an adjacent step and desynchronize event timing between kernels.
    When ``t0`` sits on the grid (the only case the engine produces),
    the step index is recovered exactly; any off-grid ``t0`` falls back
    to the additive form.
    """
    step0 = round(t0 / dt)
    if step0 * dt == t0:
        return np.arange(step0, step0 + n) * dt
    return t0 + np.arange(n) * dt


@dataclass
class CapacitorPhysics:
    """Inline-able storage physics: ``E = C V^2 / 2`` with a clamp.

    Attributes:
        capacitance: farads.
        v_max: overvoltage clamp.
        leak_tau: RC self-discharge time constant in seconds, or None for
            an ideal element.
        draw_overhead: multiplicative overhead applied to every energy
            draw (1.0 for an ideal capacitor; ``1 + esr_loss_fraction``
            for a supercapacitor).
        read_voltage / write_voltage: accessors syncing the live storage
            object with the chunk loop's local scalar state.
    """

    capacitance: float
    v_max: float
    leak_tau: Optional[float]
    draw_overhead: float
    read_voltage: Callable[[], float]
    write_voltage: Callable[[float], None]

    def leak_factor(self, dt: float) -> Optional[float]:
        """Per-step exponential decay factor, or None when ideal."""
        if self.leak_tau is None:
            return None
        return math.exp(-dt / self.leak_tau)


@dataclass
class LoadProfile:
    """A load's declared behaviour between event boundaries.

    Exactly one of ``power`` (constant-power drain) or ``resistance``
    (resistive drain, ``P = V^2/R``) describes the demand.  ``commit`` is
    called once with ``(steps, dt)`` after the chunk so the load can
    account bulk side effects (state-residency metrics) for the steps it
    was advanced through.
    """

    power: float = 0.0
    resistance: Optional[float] = None
    v_rising: float = math.inf
    v_falling: float = -math.inf
    commit: Optional[Callable[[int, float], None]] = None


@dataclass
class VoltageSourcePlan:
    """A rectified voltage source precomputed over one chunk.

    Per step ``i`` the charging current is
    ``max(0, values[i] - v_rail - drop) / r_total`` — exactly the
    rectifier equation with the per-chunk constants folded in.
    """

    values: List[float]
    drop: float
    r_total: float


@dataclass
class PowerSourcePlan:
    """A power-domain source precomputed over one chunk.

    ``values[i]`` is the available power at step ``i``; when ``converter``
    is set it is passed through ``converter.output_power`` against the
    live rail voltage each step (the converter is a pure function of
    ``(p_in, v_in)``).
    """

    values: List[float]
    converter: Optional[object] = None


@dataclass
class ChunkStats:
    """Diagnostic counters a fast-kernel simulator accumulates."""

    chunks: int = 0
    chunked_steps: int = 0
    fallback_steps: int = 0

    def chunked_fraction(self) -> float:
        """Fraction of all steps executed through the chunk path."""
        total = self.chunked_steps + self.fallback_steps
        if total == 0:
            return 0.0
        return self.chunked_steps / total
