"""Exception hierarchy for the :mod:`repro` framework.

All errors raised by the framework derive from :class:`ReproError` so that
callers can catch framework errors without masking programming mistakes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an invalid or inconsistent state."""


class BrownoutError(SimulationError):
    """The supply voltage collapsed while an atomic operation was running."""


class AssemblerError(ReproError):
    """The mini-ISA assembler rejected a source program."""


class MachineError(ReproError):
    """The MCU interpreter hit an invalid instruction or memory access."""


class SnapshotError(ReproError):
    """A checkpoint snapshot is missing, incomplete, or corrupt."""


class TaxonomyError(ReproError):
    """A system descriptor cannot be placed in the taxonomy."""


class SpecError(ReproError):
    """A declarative scenario spec is invalid or cannot be built."""


class UnknownComponentError(SpecError):
    """A spec referenced a registry key that no component registered."""


class ResultStoreError(ReproError):
    """A persisted result store is corrupt or was queried invalidly."""


class ExploreError(ReproError):
    """A design-space exploration was configured or driven invalidly."""
