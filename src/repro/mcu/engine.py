"""Compute-engine abstraction over the interpreter.

Checkpointing strategies need a uniform handle on "the thing making forward
progress".  Two implementations exist:

* :class:`MachineEngine` — the real mini-ISA interpreter.  Snapshots copy
  actual registers and memory; correctness across outages is checked by
  comparing program output against an uninterrupted run.  Used by the
  waveform-level experiments (Figs. 6, 7).
* :class:`SyntheticEngine` — a cycle-counting workload with the same
  snapshot geometry but no interpretation.  Used by the large parameter
  sweeps (Eq. 5 crossover, ablations) where thousands of runs would make
  interpretation the bottleneck without changing the answer (progress and
  energy depend on cycle counts and state sizes, not on which instruction
  ran).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError, SnapshotError
from repro.mcu.machine import Machine
from repro.mcu.power_model import FRAM_TECH, SRAM_TECH, McuPowerModel, MemoryTechnology
from repro.results.metrics import register_metric
from repro.spec.registry import register


@dataclass
class EngineSlice:
    """Result of one ``run_cycles`` call on a compute engine.

    Attributes:
        cycles: cycles actually consumed (<= budget).
        memory_energy: joules of memory-access energy in the slice.
        peripheral_energy: joules of peripheral energy in the slice.
        halted: the workload has fully completed.
        hit_checkpoint: execution paused at a potential-checkpoint site.
    """

    cycles: int = 0
    memory_energy: float = 0.0
    peripheral_energy: float = 0.0
    halted: bool = False
    hit_checkpoint: bool = False


class ComputeEngine:
    """Uniform interface the transient strategies drive."""

    @property
    def done(self) -> bool:
        """True when the workload has run to completion."""
        raise NotImplementedError

    @property
    def full_state_words(self) -> int:
        """Words a full (registers + volatile memory) snapshot occupies."""
        raise NotImplementedError

    @property
    def register_state_words(self) -> int:
        """Words a register-only snapshot occupies."""
        raise NotImplementedError

    def run_cycles(self, budget: int, stop_at_ckpt: bool = False) -> EngineSlice:
        """Execute up to ``budget`` cycles; see :class:`EngineSlice`."""
        raise NotImplementedError

    def active_plan(
        self, cycles_per_step: int, stop_at_ckpt: bool = False
    ) -> Optional["tuple[float, int, Any]"]:
        """Fast-kernel descriptor of ACTIVE execution, or None.

        Returning ``(energy_per_step, safe_steps, commit)`` asserts
        that for up to ``safe_steps`` further engine steps of
        ``cycles_per_step`` cycles each:

        * every step consumes exactly ``cycles_per_step`` cycles and
          ``energy_per_step`` joules of memory + peripheral energy
          (the same float value :meth:`run_cycles` would report),
        * no step halts, hits a snapshot-relevant checkpoint pause the
          caller has to observe, or otherwise changes engine state
          beyond pure forward progress,

        and that ``commit(steps)`` applies ``steps`` such steps of
        forward progress in bulk.  Engines whose per-step energy or
        control flow is data-dependent (the real interpreter) return
        None, keeping ACTIVE execution per-step.
        """
        return None

    def capture(self, full: bool) -> Any:
        """Capture volatile state (full or register-only)."""
        raise NotImplementedError

    def restore(self, state: Any) -> None:
        """Restore previously captured state."""
        raise NotImplementedError

    def power_fail(self) -> None:
        """Lose volatile state (supply collapsed below V_min)."""
        raise NotImplementedError

    def cold_boot(self) -> None:
        """Restart from scratch, losing all progress."""
        raise NotImplementedError

    def progress(self) -> float:
        """Forward progress in [0, 1] (best effort for open-ended work)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Full reset to the initial state (fresh run)."""
        raise NotImplementedError


@register("machine", kind="engine")
class MachineEngine(ComputeEngine):
    """Drives a real :class:`~repro.mcu.machine.Machine`.

    Args:
        machine: the interpreter instance.
        power_model: used only for memory-energy accounting of slices.
        expected_total_cycles: optional a-priori cycle count for the
            workload, enabling a meaningful :meth:`progress` value.
        include_peripherals: make full snapshots peripheral-aware — device
            state (ADC stream position, radio FIFO...) is saved and
            restored alongside the CPU state.  Costs a few extra NVM words
            per peripheral; removes the re-execution sample-slip problem
            the paper's discussion section describes.
    """

    def __init__(
        self,
        machine: Machine,
        power_model: Optional[McuPowerModel] = None,
        expected_total_cycles: Optional[int] = None,
        sram: MemoryTechnology = SRAM_TECH,
        fram: MemoryTechnology = FRAM_TECH,
        include_peripherals: bool = False,
    ):
        self.machine = machine
        self.power_model = power_model or McuPowerModel()
        self.expected_total_cycles = expected_total_cycles
        self.sram = sram
        self.fram = fram
        self.include_peripherals = include_peripherals
        self._useful_cycles = 0

    @property
    def done(self) -> bool:
        return self.machine.halted

    @property
    def full_state_words(self) -> int:
        # Registers + pc + all of data space (the Hibernus 'save all RAM'),
        # plus per-peripheral context words when peripheral-aware.
        words = 17 + self.machine.config.data_space_words
        if self.include_peripherals:
            words += sum(p.state_words for p in self.machine.ports.values())
        return words

    @property
    def register_state_words(self) -> int:
        return 17

    def run_cycles(self, budget: int, stop_at_ckpt: bool = False) -> EngineSlice:
        if budget < 0:
            raise ConfigurationError("cycle budget must be non-negative")
        if budget == 0 or self.machine.halted:
            return EngineSlice(halted=self.machine.halted)
        raw = self.machine.run(budget, stop_at_ckpt=stop_at_ckpt)
        self._useful_cycles += raw.cycles
        return EngineSlice(
            cycles=raw.cycles,
            memory_energy=self.power_model.slice_memory_energy(
                raw, sram=self.sram, fram=self.fram
            ),
            peripheral_energy=raw.peripheral_energy,
            halted=raw.halted,
            hit_checkpoint=raw.hit_checkpoint,
        )

    def capture(self, full: bool) -> Any:
        if full:
            return self.machine.capture_full(
                include_peripherals=self.include_peripherals
            )
        if not self.machine.config.data_in_fram:
            raise SnapshotError(
                "register-only snapshots need data in FRAM (QuickRecall config)"
            )
        return self.machine.capture_registers()

    def restore(self, state: Any) -> None:
        self.machine.restore(state)

    def power_fail(self) -> None:
        self.machine.power_fail()

    def cold_boot(self) -> None:
        self.machine.cold_boot()

    def progress(self) -> float:
        if self.machine.halted:
            return 1.0
        if not self.expected_total_cycles:
            return 0.0
        return min(1.0, self.machine.total_cycles / self.expected_total_cycles)

    def reset(self) -> None:
        self.machine.cold_boot()
        self.machine.total_cycles = 0
        for peripheral in self.machine.ports.values():
            peripheral.reset()
        self._useful_cycles = 0


@register("synthetic", kind="engine")
class SyntheticEngine(ComputeEngine):
    """Cycle-counting workload with configurable snapshot geometry.

    Progress is a single counter; a snapshot is the counter value.  Memory
    energy is approximated as a constant per-cycle figure (matching the
    average the interpreter reports for the mixed workloads).

    Args:
        total_cycles: workload length; the engine halts when reached.
        full_state_words / register_state_words: snapshot geometry, default
            matching a 4 KiB-SRAM machine (2048 words + 17).
        checkpoint_interval: cycles between potential-checkpoint sites
            (Mementos instrumentation density).
        memory_energy_per_cycle: average joules of memory traffic per cycle.
    """

    def __init__(
        self,
        total_cycles: int,
        full_state_words: int = 2065,
        register_state_words: int = 17,
        checkpoint_interval: int = 5000,
        memory_energy_per_cycle: float = 60e-12,
    ):
        if total_cycles <= 0:
            raise ConfigurationError("total_cycles must be positive")
        if checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive")
        self.total_cycles = total_cycles
        self._full_state_words = full_state_words
        self._register_state_words = register_state_words
        self.checkpoint_interval = checkpoint_interval
        self.memory_energy_per_cycle = memory_energy_per_cycle
        self.executed = 0

    @property
    def done(self) -> bool:
        return self.executed >= self.total_cycles

    @property
    def full_state_words(self) -> int:
        return self._full_state_words

    @property
    def register_state_words(self) -> int:
        return self._register_state_words

    def run_cycles(self, budget: int, stop_at_ckpt: bool = False) -> EngineSlice:
        if budget < 0:
            raise ConfigurationError("cycle budget must be non-negative")
        if self.done or budget == 0:
            return EngineSlice(halted=self.done)
        limit = self.total_cycles - self.executed
        run = min(budget, limit)
        hit_ckpt = False
        if stop_at_ckpt:
            next_site = (
                (self.executed // self.checkpoint_interval) + 1
            ) * self.checkpoint_interval
            to_site = next_site - self.executed
            if to_site <= run:
                run = to_site
                hit_ckpt = True
        self.executed += run
        return EngineSlice(
            cycles=run,
            memory_energy=run * self.memory_energy_per_cycle,
            halted=self.done,
            hit_checkpoint=hit_ckpt and not self.done,
        )

    def active_plan(
        self, cycles_per_step: int, stop_at_ckpt: bool = False
    ) -> Optional["tuple[float, int, Any]"]:
        """Chunk descriptor: progress is a counter, so ACTIVE vectorizes.

        Safe steps are bounded by the workload's halt boundary (the
        halting step must run per-step so completion is observed) and,
        in checkpoint mode, by the next checkpoint site (the step whose
        cycle window reaches a site splits into slices and pauses for
        the strategy, so it must run per-step too).  Every safe step
        consumes exactly ``cycles_per_step`` cycles and the same memory
        energy ``run_cycles`` would report for an unsplit slice.
        """
        if cycles_per_step <= 0 or self.done:
            return None
        limit = self.total_cycles - self.executed
        # Largest k with executed + k*cycles_per_step < total: every
        # chunked step runs a full budget and does not halt.
        safe = (limit - 1) // cycles_per_step
        if stop_at_ckpt:
            next_site = (
                (self.executed // self.checkpoint_interval) + 1
            ) * self.checkpoint_interval
            to_site = next_site - self.executed
            # A step splits when its cycle window reaches the site:
            # keep only steps ending strictly before it.
            safe = min(safe, -(-to_site // cycles_per_step) - 1)
        if safe <= 0:
            return None

        def commit(steps: int) -> None:
            self.executed += steps * cycles_per_step

        return (
            cycles_per_step * self.memory_energy_per_cycle, safe, commit
        )

    def capture(self, full: bool) -> Any:
        return self.executed

    def restore(self, state: Any) -> None:
        if not isinstance(state, int):
            raise SnapshotError("synthetic snapshot must be a cycle count")
        self.executed = state

    def power_fail(self) -> None:
        # Volatile progress evaporates with the registers.  The strategy
        # either restores a snapshot or cold-boots afterwards; losing the
        # counter here makes a missing restore visible as lost progress.
        self.executed = 0

    def cold_boot(self) -> None:
        self.executed = 0

    def progress(self) -> float:
        return min(1.0, self.executed / self.total_cycles)

    def reset(self) -> None:
        self.executed = 0


# ---------------------------------------------------------------------------
# Results-pipeline contribution (see repro.results.metrics)
# ---------------------------------------------------------------------------


@register_metric("engine", columns=("cycles_executed", "progress"), order=20)
def _engine_metric_columns(run, spec):
    """Forward-progress counters of the platform's compute engine."""
    platform = run.platform
    if platform is None:
        return None
    emitted = {"cycles_executed": platform.metrics.cycles_executed}
    progress = getattr(platform.engine, "progress", None)
    if callable(progress):
        emitted["progress"] = float(progress())
    return emitted
