"""In-place radix-2 DIT fixed-point FFT for the mini-ISA.

This is the Fig. 7 workload: "an FFT that began at the beginning of
execution is completed" across an intermittent supply.  The implementation
is a classic iterative Q15 FFT with per-stage scaling (each butterfly
output is halved) to prevent overflow, and a final XOR/sum checksum
emitted on the output port.

``ckpt`` markers sit at the stage and k-loop headers — the loop-boundary
heuristic Mementos uses for checkpoint placement.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.mcu.isa import to_signed, to_word


def fft_input_samples(n: int) -> List[int]:
    """Deterministic Q15 input block: two superposed tones."""
    samples = []
    for i in range(n):
        value = 8192.0 * math.sin(2.0 * math.pi * 3.0 * i / n)
        value += 4096.0 * math.sin(2.0 * math.pi * 7.0 * i / n + 0.5)
        samples.append(to_word(int(round(value))))
    return samples


def _twiddles(n: int) -> Tuple[List[int], List[int]]:
    """Q15 twiddle tables for W_n^k = exp(-j*2*pi*k/n), k in [0, n/2)."""
    wr, wi = [], []
    for k in range(n // 2):
        angle = 2.0 * math.pi * k / n
        wr.append(to_word(int(round(32767.0 * math.cos(angle)))))
        wi.append(to_word(int(round(-32767.0 * math.sin(angle)))))
    return wr, wi


def fft_program(n: int = 64) -> str:
    """Generate mini-ISA source for an in-place ``n``-point FFT.

    Args:
        n: transform size; must be a power of two >= 4.
    """
    if n < 4 or n & (n - 1):
        raise ConfigurationError(f"FFT size must be a power of two >= 4, got {n}")
    logn = n.bit_length() - 1
    re = fft_input_samples(n)
    im = [0] * n
    wr, wi = _twiddles(n)

    def words(values: List[int]) -> str:
        return ", ".join(str(v) for v in values)

    return f"""
; ---- {n}-point Q15 radix-2 DIT FFT ----
.equ N, {n}
.equ LOGN, {logn}
.data re_arr: {words(re)}
.data im_arr: {words(im)}
.data wr_arr: {words(wr)}
.data wi_arr: {words(wi)}

start:
    ; ---------- bit-reversal permutation ----------
    ldi r9, 1              ; i
bitrev_loop:
    ldi r1, N
    subi r1, r1, 1
    bge r9, r1, bitrev_done
    mov r2, r9             ; x = i
    ldi r3, 0              ; j = 0
    ldi r4, LOGN
brbit:
    shli r3, r3, 1
    andi r5, r2, 1
    or   r3, r3, r5
    shri r2, r2, 1
    subi r4, r4, 1
    bne  r4, r0, brbit
    bge  r9, r3, no_swap   ; only swap when i < j
    ldi r5, re_arr
    add r6, r5, r9
    add r7, r5, r3
    ld  r1, r6, 0
    ld  r2, r7, 0
    st  r2, r6, 0
    st  r1, r7, 0
    ldi r5, im_arr
    add r6, r5, r9
    add r7, r5, r3
    ld  r1, r6, 0
    ld  r2, r7, 0
    st  r2, r6, 0
    st  r1, r7, 0
no_swap:
    addi r9, r9, 1
    jmp bitrev_loop
bitrev_done:
    ; ---------- butterfly stages ----------
    ldi r10, 2             ; m = 2
    ldi r12, N
    shri r12, r12, 1       ; step = N / 2
stage_loop:
    ckpt                   ; Mementos site: stage boundary
    mov r11, r10
    shri r11, r11, 1       ; half = m / 2
    ldi r9, 0              ; k = 0
k_loop:
    ckpt                   ; Mementos site: k-loop boundary
    ldi r8, 0              ; j = 0
j_loop:
    add r13, r9, r8        ; idx1 = k + j
    add r14, r13, r11      ; idx2 = idx1 + half
    mul r7, r8, r12        ; tw = j * step
    ldi r6, wr_arr
    add r6, r6, r7
    ld  r1, r6, 0          ; wr
    ldi r6, wi_arr
    add r6, r6, r7
    ld  r2, r6, 0          ; wi
    ldi r6, re_arr
    add r6, r6, r14
    ld  r3, r6, 0          ; bre
    ldi r6, im_arr
    add r6, r6, r14
    ld  r4, r6, 0          ; bim
    mulq r5, r1, r3
    mulq r6, r2, r4
    sub  r5, r5, r6        ; tr = wr*bre - wi*bim
    mulq r6, r1, r4
    mulq r7, r2, r3
    add  r6, r6, r7        ; ti = wr*bim + wi*bre
    ldi r7, re_arr
    add r7, r7, r13
    ld  r1, r7, 0          ; are
    ldi r4, im_arr
    add r4, r4, r13
    ld  r2, r4, 0          ; aim
    add r3, r1, r5
    srai r3, r3, 1
    st  r3, r7, 0          ; re[idx1] = (are + tr) / 2
    sub r3, r1, r5
    srai r3, r3, 1
    ldi r1, re_arr
    add r1, r1, r14
    st  r3, r1, 0          ; re[idx2] = (are - tr) / 2
    add r3, r2, r6
    srai r3, r3, 1
    st  r3, r4, 0          ; im[idx1] = (aim + ti) / 2
    sub r3, r2, r6
    srai r3, r3, 1
    ldi r2, im_arr
    add r2, r2, r14
    st  r3, r2, 0          ; im[idx2] = (aim - ti) / 2
    addi r8, r8, 1
    blt  r8, r11, j_loop
    add  r9, r9, r10       ; k += m
    ldi  r1, N
    blt  r9, r1, k_loop
    shli r10, r10, 1       ; m *= 2
    shri r12, r12, 1       ; step /= 2
    ldi  r1, N
    bge  r1, r10, stage_loop
    ; ---------- checksum ----------
    ldi r9, 0
    ldi r10, 0
sum_loop:
    ldi r5, re_arr
    add r5, r5, r9
    ld  r1, r5, 0
    ldi r5, im_arr
    add r5, r5, r9
    ld  r2, r5, 0
    xor r1, r1, r2
    add r10, r10, r1
    addi r9, r9, 1
    ldi r1, N
    blt r9, r1, sum_loop
    out 7, r10
    halt
"""


def fft_golden(n: int = 64) -> Tuple[List[int], List[int], int]:
    """Bit-exact Python model of :func:`fft_program`.

    Returns:
        (re, im, checksum) — final memory contents (as 16-bit words) and
        the checksum word the program writes to port 7.
    """
    if n < 4 or n & (n - 1):
        raise ConfigurationError(f"FFT size must be a power of two >= 4, got {n}")
    logn = n.bit_length() - 1
    re = [to_signed(v) for v in fft_input_samples(n)]
    im = [0] * n
    wr_t, wi_t = _twiddles(n)
    wr_t = [to_signed(v) for v in wr_t]
    wi_t = [to_signed(v) for v in wi_t]

    # Bit reversal.
    for i in range(1, n - 1):
        j, x = 0, i
        for _ in range(logn):
            j = (j << 1) | (x & 1)
            x >>= 1
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]

    # Stages (replicating the 16-bit wrap/shift semantics exactly).
    def q15(a: int, b: int) -> int:
        return to_signed(to_word((a * b) >> 15))

    def sra1(a: int) -> int:
        return to_signed(to_word(to_signed(to_word(a)) >> 1))

    m = 2
    step = n // 2
    while m <= n:
        half = m // 2
        for k in range(0, n, m):
            for j in range(half):
                tw = j * step
                wr, wi = wr_t[tw], wi_t[tw]
                idx1, idx2 = k + j, k + j + half
                bre, bim = re[idx2], im[idx2]
                tr = to_signed(to_word(q15(wr, bre) - q15(wi, bim)))
                ti = to_signed(to_word(q15(wr, bim) + q15(wi, bre)))
                are, aim = re[idx1], im[idx1]
                re[idx1] = sra1(are + tr)
                re[idx2] = sra1(are - tr)
                im[idx1] = sra1(aim + ti)
                im[idx2] = sra1(aim - ti)
        m <<= 1
        step >>= 1

    checksum = 0
    for i in range(n):
        checksum = to_word(checksum + (to_word(re[i]) ^ to_word(im[i])))
    return [to_word(v) for v in re], [to_word(v) for v in im], checksum
