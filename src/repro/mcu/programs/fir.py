"""8-tap Q15 FIR filter over ADC samples.

Exercises the peripheral path: samples are read live from the ADC port, so
intermittent execution interacts with an external data source.  The golden
model replays the same deterministic ADC stream.

Note the transient-computing subtlety this workload makes visible: an ADC
read is *not idempotent* (each read consumes a sample).  Re-execution after
a restore-from-snapshot replays only un-checkpointed reads; tests quantify
the resulting sample slip, one of the peripheral problems the paper's
discussion section calls out as open.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.mcu.isa import to_signed, to_word
from repro.mcu.peripherals import ADCPeripheral

#: Q15 low-pass taps (symmetric, sum < 32768).
FIR_TAPS = [1024, 3072, 6144, 8192, 8192, 6144, 3072, 1024]

#: Port the program reads samples from.
ADC_PORT = 0


def fir_program(n_samples: int = 96) -> str:
    """Generate mini-ISA source filtering ``n_samples`` ADC samples."""
    if n_samples <= len(FIR_TAPS):
        raise ConfigurationError("need more samples than taps")
    taps = ", ".join(str(t) for t in FIR_TAPS)
    return f"""
; ---- 8-tap FIR over {n_samples} ADC samples ----
.equ NSAMP, {n_samples}
.equ NTAPS, {len(FIR_TAPS)}
.data taps: {taps}
.reserve window, {len(FIR_TAPS)}

start:
    ldi r9, 0              ; sample index
    ldi r10, 0             ; checksum accumulator
sample_loop:
    ckpt                   ; Mementos site: per-sample boundary
    ; shift window left by one
    ldi r1, 1              ; src index
shift_loop:
    ldi r3, window
    add r4, r3, r1
    ld  r5, r4, 0
    subi r4, r4, 1
    st  r5, r4, 0
    addi r1, r1, 1
    ldi  r2, NTAPS
    blt  r1, r2, shift_loop
    ; read new sample into window tail
    in  r5, {ADC_PORT}
    srai r5, r5, 2         ; scale to keep the MAC in range
    ldi r3, window
    ldi r2, NTAPS
    add r3, r3, r2
    subi r3, r3, 1
    st  r5, r3, 0
    ; MAC across taps
    ldi r1, 0              ; tap index
    ldi r6, 0              ; acc
mac_loop:
    ldi r3, window
    add r3, r3, r1
    ld  r4, r3, 0
    ldi r3, taps
    add r3, r3, r1
    ld  r5, r3, 0
    mulq r5, r4, r5
    add  r6, r6, r5
    addi r1, r1, 1
    ldi  r2, NTAPS
    blt  r1, r2, mac_loop
    ; fold output into checksum
    xor r10, r10, r6
    addi r10, r10, 1
    addi r9, r9, 1
    ldi  r1, NSAMP
    blt  r9, r1, sample_loop
    out 7, r10
    halt
"""


def fir_golden(n_samples: int = 96, adc: ADCPeripheral = None) -> Tuple[List[int], int]:
    """Bit-exact model fed from a fresh (or supplied) ADC peripheral.

    Returns:
        (filter outputs as words, final checksum word).
    """
    adc = adc or ADCPeripheral()
    window = [0] * len(FIR_TAPS)
    checksum = 0
    outputs: List[int] = []
    for _ in range(n_samples):
        window = window[1:] + [0]
        raw = adc.read()
        window[-1] = to_signed(to_word(to_signed(raw) >> 2))
        acc = 0
        for tap_index, tap in enumerate(FIR_TAPS):
            prod = (to_signed(to_word(window[tap_index])) * tap) >> 15
            acc = to_word(acc + to_word(prod))
        outputs.append(acc)
        checksum = to_word((checksum ^ acc) + 1)
    return outputs, checksum
