"""CRC-16/CCITT over a message block.

A branchy bit-twiddling kernel that stresses control flow and the shifter —
a useful contrast to the FFT's multiply-heavy profile.  ``ckpt`` markers at
the per-word loop boundary give Mementos a dense checkpoint lattice.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.mcu.isa import to_word


def crc_message(length: int = 128) -> List[int]:
    """Deterministic pseudo-random message words (LCG-generated)."""
    if length <= 0:
        raise ConfigurationError(f"message length must be positive, got {length}")
    state = 0xACE1
    words = []
    for _ in range(length):
        state = to_word(state * 25173 + 13849)
        words.append(state)
    return words


def crc_program(length: int = 128) -> str:
    """Generate mini-ISA source computing CRC-16/CCITT over the message."""
    message = crc_message(length)
    data = ", ".join(str(w) for w in message)
    return f"""
; ---- CRC-16/CCITT over {length} words ----
.equ LEN, {length}
.equ POLY, 0x1021
.data msg: {data}

start:
    ldi r10, 0xFFFF        ; crc
    ldi r9, 0              ; word index
word_loop:
    ckpt                   ; Mementos site: per-word boundary
    ldi r5, msg
    add r5, r5, r9
    ld  r1, r5, 0          ; next word
    xor r10, r10, r1
    ldi r8, 16             ; bit counter
bit_loop:
    andi r2, r10, 0x8000
    shli r10, r10, 1
    beq  r2, r0, no_xor
    xori r10, r10, POLY
no_xor:
    andi r10, r10, 0xFFFF
    subi r8, r8, 1
    bne  r8, r0, bit_loop
    addi r9, r9, 1
    ldi  r1, LEN
    blt  r9, r1, word_loop
    out 7, r10
    halt
"""


def crc_golden(length: int = 128) -> int:
    """Bit-exact model of :func:`crc_program`'s final CRC word."""
    crc = 0xFFFF
    for word in crc_message(length):
        crc ^= word
        for _ in range(16):
            top = crc & 0x8000
            crc = to_word(crc << 1)
            if top:
                crc ^= 0x1021
    return to_word(crc)
