"""Sense-and-send loop: the canonical WSN / task-based workload.

Reads the environmental sensor, keeps a 4-sample moving average, queues the
averaged values on the radio and flushes one packet every 8 samples.  The
task boundary (one packet) is exactly what the task-based transient systems
of §II.B buffer energy for.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Port assignments used by the program.
SENSOR_PORT = 1
RADIO_PORT = 2


def sense_program(n_samples: int = 64) -> str:
    """Generate mini-ISA source for the sense-and-send loop."""
    if n_samples <= 0 or n_samples % 8 != 0:
        raise ConfigurationError("n_samples must be a positive multiple of 8")
    return f"""
; ---- sense-and-send: {n_samples} samples, packet per 8 ----
.equ NSAMP, {n_samples}
.reserve window, 4

start:
    ldi r9, 0              ; sample counter
    ldi r11, 0             ; samples since last flush
loop:
    ckpt                   ; Mementos site / task boundary
    ; shift 4-sample window
    ldi r1, 1
shift:
    ldi r3, window
    add r4, r3, r1
    ld  r5, r4, 0
    subi r4, r4, 1
    st  r5, r4, 0
    addi r1, r1, 1
    ldi  r2, 4
    blt  r1, r2, shift
    in  r5, {SENSOR_PORT}
    ldi r3, window
    st  r5, r3, 3
    ; moving average of 4
    ld  r1, r3, 0
    ld  r2, r3, 1
    add r1, r1, r2
    ld  r2, r3, 2
    add r1, r1, r2
    ld  r2, r3, 3
    add r1, r1, r2
    shri r1, r1, 2
    out {RADIO_PORT}, r1   ; queue averaged sample
    addi r11, r11, 1
    ldi  r2, 8
    bne  r11, r2, no_flush
    ldi r1, 0xFFFF
    out {RADIO_PORT}, r1   ; flush packet
    ldi r11, 0
no_flush:
    addi r9, r9, 1
    ldi  r1, NSAMP
    blt  r9, r1, loop
    out 7, r9              ; report samples processed
    halt
"""
