"""A minimal checkpoint-dense counting loop for unit tests.

Counts to ``target`` in data memory (so progress lives in RAM, not just
registers), hitting a ``ckpt`` marker every iteration, and finally emits
the counter value.  Small enough that tests can reason about exact cycle
counts.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def counter_program(target: int = 1000) -> str:
    """Generate mini-ISA source counting to ``target``."""
    if not 0 < target < 0x8000:
        raise ConfigurationError(f"target must be in (0, 32768), got {target}")
    return f"""
; ---- count to {target} with a ckpt per iteration ----
.equ TARGET, {target}
.data count: 0

start:
    ldi r2, count
loop:
    ckpt
    ld  r1, r2, 0
    addi r1, r1, 1
    st  r1, r2, 0
    ldi r3, TARGET
    blt r1, r3, loop
    ld  r1, r2, 0
    out 7, r1
    halt
"""
