"""Workload programs written in the mini-ISA.

Each module provides a source generator (returning assembly text) and a
*golden model* — a plain-Python replication of the exact integer arithmetic
— so tests can check that execution across power failures produces
bit-identical results to an uninterrupted run.

The FFT is the paper's own demonstration workload (Fig. 7 executes an FFT
across an intermittent supply).
"""

from repro.spec.registry import register

from repro.mcu.programs.fft import fft_program, fft_golden, fft_input_samples
from repro.mcu.programs.crc import crc_program, crc_golden, crc_message
from repro.mcu.programs.matmul import matmul_program, matmul_golden
from repro.mcu.programs.fir import fir_program, fir_golden
from repro.mcu.programs.sieve import sieve_program, sieve_golden
from repro.mcu.programs.sense import sense_program
from repro.mcu.programs.sort import sort_golden, sort_program
from repro.mcu.programs.counter import counter_program

# Program generators by short name: spec platforms say program="fft".
register("fft", kind="program")(fft_program)
register("crc", kind="program")(crc_program)
register("matmul", kind="program")(matmul_program)
register("fir", kind="program")(fir_program)
register("sieve", kind="program")(sieve_program)
register("sense", kind="program")(sense_program)
register("sort", kind="program")(sort_program)
register("counter", kind="program")(counter_program)

__all__ = [
    "fft_program",
    "fft_golden",
    "fft_input_samples",
    "crc_program",
    "crc_golden",
    "crc_message",
    "matmul_program",
    "matmul_golden",
    "fir_program",
    "fir_golden",
    "sieve_program",
    "sieve_golden",
    "sense_program",
    "sort_program",
    "sort_golden",
    "counter_program",
]
