"""Integer matrix multiply (C = A x B, low 16 bits).

Dense load/store traffic through data memory: the workload whose snapshot
*content* (a half-written C matrix) most obviously must survive power
failures intact.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.mcu.isa import to_signed, to_word


def _matrices(n: int) -> Tuple[List[int], List[int]]:
    """Deterministic small-valued input matrices (row-major)."""
    a = [to_word((i * 7 + 3) % 23 - 11) for i in range(n * n)]
    b = [to_word((i * 13 + 5) % 19 - 9) for i in range(n * n)]
    return a, b


def matmul_program(n: int = 8) -> str:
    """Generate mini-ISA source for an ``n x n`` integer matrix multiply."""
    if n < 2 or n > 24:
        raise ConfigurationError(f"matrix size must be in [2, 24], got {n}")
    a, b = _matrices(n)
    return f"""
; ---- {n}x{n} integer matmul ----
.equ N, {n}
.data mat_a: {', '.join(str(v) for v in a)}
.data mat_b: {', '.join(str(v) for v in b)}
.reserve mat_c, {n * n}

start:
    ldi r9, 0              ; i
i_loop:
    ckpt                   ; Mementos site: row boundary
    ldi r8, 0              ; j
j_loop:
    ldi r7, 0              ; k
    ldi r10, 0             ; acc
k_loop:
    ldi r1, N
    mul r1, r9, r1         ; i*N
    add r1, r1, r7         ; i*N + k
    ldi r2, mat_a
    add r2, r2, r1
    ld  r3, r2, 0          ; A[i][k]
    ldi r1, N
    mul r1, r7, r1         ; k*N
    add r1, r1, r8         ; k*N + j
    ldi r2, mat_b
    add r2, r2, r1
    ld  r4, r2, 0          ; B[k][j]
    mul r5, r3, r4
    add r10, r10, r5
    addi r7, r7, 1
    ldi  r1, N
    blt  r7, r1, k_loop
    ldi r1, N
    mul r1, r9, r1
    add r1, r1, r8
    ldi r2, mat_c
    add r2, r2, r1
    st  r10, r2, 0         ; C[i][j] = acc
    addi r8, r8, 1
    ldi  r1, N
    blt  r8, r1, j_loop
    addi r9, r9, 1
    ldi  r1, N
    blt  r9, r1, i_loop
    ; checksum over C
    ldi r9, 0
    ldi r10, 0
sum_loop:
    ldi r2, mat_c
    add r2, r2, r9
    ld  r1, r2, 0
    add r10, r10, r1
    xori r10, r10, 0x5A5A
    addi r9, r9, 1
    ldi r1, N
    mul r1, r1, r1
    blt r9, r1, sum_loop
    out 7, r10
    halt
"""


def matmul_golden(n: int = 8) -> Tuple[List[int], int]:
    """Bit-exact model: returns (C row-major words, checksum)."""
    a, b = _matrices(n)
    a_s = [to_signed(v) for v in a]
    b_s = [to_signed(v) for v in b]
    c = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                prod = to_signed(to_word(a_s[i * n + k] * b_s[k * n + j]))
                acc = to_word(acc + prod)
            c[i * n + j] = acc
    checksum = 0
    for value in c:
        checksum = to_word(checksum + value) ^ 0x5A5A
    return c, checksum
