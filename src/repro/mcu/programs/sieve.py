"""Sieve of Eratosthenes: count primes below a limit.

Division-free (the ISA has no divider) and memory-bound over a byte-map —
a good long-running background workload for duty-cycle experiments.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mcu.isa import to_word


def sieve_program(limit: int = 400) -> str:
    """Generate mini-ISA source counting primes in [2, limit)."""
    if limit < 4 or limit > 1500:
        raise ConfigurationError(f"limit must be in [4, 1500], got {limit}")
    return f"""
; ---- prime count below {limit} by sieve ----
.equ LIMIT, {limit}
.reserve flags, {limit}

start:
    ; mark all as candidate (0 = prime candidate, 1 = composite)
    ldi r9, 2              ; p
outer:
    ckpt                   ; Mementos site: per-prime boundary
    ldi r1, flags
    add r1, r1, r9
    ld  r2, r1, 0
    bne r2, r0, next_p     ; already composite
    ; strike multiples starting at p*p
    mul r3, r9, r9
    ldi r4, LIMIT
    bge r3, r4, next_p
strike:
    ldi r1, flags
    add r1, r1, r3
    ldi r2, 1
    st  r2, r1, 0
    add r3, r3, r9
    ldi r4, LIMIT
    blt r3, r4, strike
next_p:
    addi r9, r9, 1
    mul  r5, r9, r9
    ldi  r4, LIMIT
    blt  r5, r4, outer
    ; count zeros in [2, LIMIT)
    ldi r9, 2
    ldi r10, 0
count:
    ldi r1, flags
    add r1, r1, r9
    ld  r2, r1, 0
    bne r2, r0, not_prime
    addi r10, r10, 1
not_prime:
    addi r9, r9, 1
    ldi  r4, LIMIT
    blt  r9, r4, count
    out 7, r10
    halt
"""


def sieve_golden(limit: int = 400) -> int:
    """Prime count in [2, limit) as the program reports it."""
    flags = [0] * limit
    p = 2
    while p * p < limit:
        if flags[p] == 0:
            for q in range(p * p, limit, p):
                flags[q] = 1
        p += 1
    return to_word(sum(1 for i in range(2, limit) if flags[i] == 0))
