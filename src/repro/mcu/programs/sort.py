"""Recursive quicksort for the mini-ISA.

The only workload that genuinely exercises the call stack: a snapshot taken
mid-recursion must preserve return addresses and saved registers deep in
SRAM, or the restore unwinds into garbage.  Lomuto partition, recursing on
both halves via real ``call``/``ret``.

Register conventions inside ``qsort(lo=r1, hi=r2)``:
    r1 lo, r2 hi (arguments; caller-saved via push)
    r3 pivot value, r4 i, r5 j, r6/r7 scratch
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.mcu.isa import to_signed, to_word


def sort_input(length: int) -> List[int]:
    """Deterministic shuffled values (LCG), signed 16-bit."""
    state = 0xBEEF
    values = []
    for _ in range(length):
        state = to_word(state * 31421 + 6927)
        values.append(to_word(state % 2003 - 1001))
    return values


def sort_program(length: int = 64) -> str:
    """Generate mini-ISA source quicksorting ``length`` words in place."""
    if not 4 <= length <= 512:
        raise ConfigurationError(f"length must be in [4, 512], got {length}")
    data = ", ".join(str(v) for v in sort_input(length))
    return f"""
; ---- recursive quicksort of {length} words ----
.equ LEN, {length}
.data arr: {data}

start:
    ldi r1, 0
    ldi r2, LEN
    subi r2, r2, 1
    call qsort
    ; checksum: sum of value*(index+1) so order matters
    ldi r9, 0
    ldi r10, 0
chk_loop:
    ldi r5, arr
    add r5, r5, r9
    ld  r6, r5, 0
    addi r7, r9, 1
    mul r6, r6, r7
    add r10, r10, r6
    addi r9, r9, 1
    ldi r1, LEN
    blt r9, r1, chk_loop
    out 7, r10
    halt

; ---- qsort(lo=r1, hi=r2), in place over arr ----
qsort:
    ckpt                   ; Mementos site: per-call boundary
    bge r1, r2, qs_done    ; lo >= hi: nothing to sort
    ; partition: pivot = arr[hi]
    ldi r6, arr
    add r6, r6, r2
    ld  r3, r6, 0          ; pivot
    mov r4, r1             ; i = lo
    mov r5, r1             ; j = lo
part_loop:
    bge r5, r2, part_done  ; j >= hi
    ldi r6, arr
    add r6, r6, r5
    ld  r7, r6, 0          ; arr[j]
    bge r7, r3, no_swap    ; arr[j] >= pivot: skip
    ; swap arr[i], arr[j]
    ldi r6, arr
    add r6, r6, r4
    ld  r8, r6, 0          ; arr[i]
    st  r7, r6, 0
    ldi r6, arr
    add r6, r6, r5
    st  r8, r6, 0
    addi r4, r4, 1
no_swap:
    addi r5, r5, 1
    jmp part_loop
part_done:
    ; swap arr[i], arr[hi] -> pivot into place at i
    ldi r6, arr
    add r6, r6, r4
    ld  r7, r6, 0
    ldi r8, arr
    add r8, r8, r2
    ld  r5, r8, 0
    st  r5, r6, 0
    st  r7, r8, 0
    ; recurse left: qsort(lo, i-1)
    push r1
    push r2
    push r4
    mov r2, r4
    subi r2, r2, 1
    call qsort
    pop r4
    pop r2
    pop r1
    ; recurse right: qsort(i+1, hi)
    push r1
    push r2
    push r4
    mov r1, r4
    addi r1, r1, 1
    call qsort
    pop r4
    pop r2
    pop r1
qs_done:
    ret
"""


def sort_golden(length: int = 64) -> Tuple[List[int], int]:
    """Bit-exact model: returns (sorted words, order-sensitive checksum)."""
    values = sorted(to_signed(v) for v in sort_input(length))
    checksum = 0
    for index, value in enumerate(values):
        term = to_signed(to_word(value * (index + 1)))
        checksum = to_word(checksum + term)
    return [to_word(v) for v in values], checksum
