"""The mini-ISA: a 16-bit, 16-register load/store instruction set.

The flavour is MSP430-meets-RISC: enough to write real signal-processing
kernels (the FFT of Fig. 7, CRCs, filters) while keeping the interpreter
small and fast.  Registers are 16-bit; ``mulq`` provides the Q15 fractional
multiply every fixed-point DSP kernel needs.

Operand signature codes (used by the assembler):
    ``r`` register, ``i`` immediate/symbol, ``l`` label, ``p`` port number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Number of general-purpose registers (r0..r15).  r15 is the stack pointer
#: by software convention (crt0 initialises it to the top of data memory).
NUM_REGISTERS = 16

#: Word width in bits; all register and memory values are 16-bit.
WORD_BITS = 16
WORD_MASK = 0xFFFF
SIGN_BIT = 0x8000


def to_signed(value: int) -> int:
    """Interpret a 16-bit word as two's-complement signed."""
    value &= WORD_MASK
    return value - 0x10000 if value & SIGN_BIT else value


def to_word(value: int) -> int:
    """Wrap an arbitrary Python int into a 16-bit word."""
    return value & WORD_MASK


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode.

    Attributes:
        name: mnemonic.
        signature: operand signature string (see module docstring).
        cycles: base cycle cost (memory wait states are added by the
            machine according to the region technology).
        kind: execution category the interpreter dispatches on.
    """

    name: str
    signature: str
    cycles: int
    kind: str


#: The instruction set.  Cycle counts are loosely modelled on a 16-bit MCU
#: with a single-cycle ALU, a multi-cycle multiplier and 2-cycle taken
#: branches.
OPCODES: Dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        # Register ALU, three-operand.
        OpSpec("add", "rrr", 1, "alu"),
        OpSpec("sub", "rrr", 1, "alu"),
        OpSpec("and", "rrr", 1, "alu"),
        OpSpec("or", "rrr", 1, "alu"),
        OpSpec("xor", "rrr", 1, "alu"),
        OpSpec("shl", "rrr", 1, "alu"),
        OpSpec("shr", "rrr", 1, "alu"),  # logical right shift
        OpSpec("sra", "rrr", 1, "alu"),  # arithmetic right shift
        OpSpec("mul", "rrr", 4, "alu"),  # low 16 bits of product
        OpSpec("mulq", "rrr", 5, "alu"),  # Q15 fractional multiply (signed)
        OpSpec("slt", "rrr", 1, "alu"),  # rd = 1 if ra < rb (signed)
        # Immediate ALU.
        OpSpec("addi", "rri", 1, "alui"),
        OpSpec("subi", "rri", 1, "alui"),
        OpSpec("andi", "rri", 1, "alui"),
        OpSpec("ori", "rri", 1, "alui"),
        OpSpec("xori", "rri", 1, "alui"),
        OpSpec("shli", "rri", 1, "alui"),
        OpSpec("shri", "rri", 1, "alui"),
        OpSpec("srai", "rri", 1, "alui"),
        OpSpec("slti", "rri", 1, "alui"),
        # Moves.
        OpSpec("ldi", "ri", 1, "ldi"),  # rd = imm (also loads symbols)
        OpSpec("mov", "rr", 1, "mov"),
        # Memory (data space): ld rd, ra, off ; st rs, ra, off.
        OpSpec("ld", "rri", 2, "load"),
        OpSpec("st", "rri", 2, "store"),
        # Control flow.
        OpSpec("jmp", "l", 2, "jump"),
        OpSpec("beq", "rrl", 2, "branch"),
        OpSpec("bne", "rrl", 2, "branch"),
        OpSpec("blt", "rrl", 2, "branch"),  # signed
        OpSpec("bge", "rrl", 2, "branch"),  # signed
        OpSpec("call", "l", 4, "call"),
        OpSpec("ret", "", 4, "ret"),
        OpSpec("push", "r", 2, "push"),
        OpSpec("pop", "r", 2, "pop"),
        # Peripheral ports.
        OpSpec("in", "rp", 2, "in"),
        OpSpec("out", "pr", 2, "out"),
        # Misc.
        OpSpec("nop", "", 1, "nop"),
        OpSpec("halt", "", 1, "halt"),
        # Potential-checkpoint marker (Mementos instrumentation point).
        OpSpec("ckpt", "", 1, "ckpt"),
    ]
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction: opcode spec + resolved integer operands."""

    spec: OpSpec
    operands: Tuple[int, ...]

    def __str__(self) -> str:
        return f"{self.spec.name} {', '.join(str(o) for o in self.operands)}"
