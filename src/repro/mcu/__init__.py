"""A small microcontroller simulator (the paper's testbed substrate).

The checkpointing strategies in :mod:`repro.transient` operate on *actual
machine state*: a 16-register, 16-bit mini-ISA interpreter with SRAM and
FRAM regions, per-instruction cycle costs, per-access memory energy, a
DFS-capable clock and port-mapped peripherals.  Snapshots copy the real
registers and memory, and correctness across power failures is checked by
comparing program outputs against an uninterrupted run.

This replaces the paper's MSP430FR57xx evaluation boards — see DESIGN.md
for the substitution argument.
"""

from repro.mcu.isa import Instruction, OPCODES, OpSpec
from repro.mcu.assembler import assemble, ProgramImage
from repro.mcu.machine import Machine, MachineConfig, ExecutionSlice, MachineState
from repro.mcu.clock import ClockPlan, OperatingPoint
from repro.mcu.power_model import McuPowerModel, MemoryTechnology, SRAM_TECH, FRAM_TECH
from repro.mcu.peripherals import ADCPeripheral, OutputPort, Radio, SensorPeripheral
from repro.mcu.engine import ComputeEngine, MachineEngine, SyntheticEngine

__all__ = [
    "Instruction",
    "OpSpec",
    "OPCODES",
    "assemble",
    "ProgramImage",
    "Machine",
    "MachineConfig",
    "MachineState",
    "ExecutionSlice",
    "ClockPlan",
    "OperatingPoint",
    "McuPowerModel",
    "MemoryTechnology",
    "SRAM_TECH",
    "FRAM_TECH",
    "ADCPeripheral",
    "SensorPeripheral",
    "Radio",
    "OutputPort",
    "ComputeEngine",
    "MachineEngine",
    "SyntheticEngine",
]
