"""Clock system: operating points for DFS / DVFS.

Power-neutral operation (§II.C, §III) modulates consumption through "hooks
such as DVFS and disabling processing elements".  On the MCU these hooks
are the operating points below; on the MPSoC they are the per-cluster
tables in :mod:`repro.neutral.mpsoc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS point: core frequency plus the supply it requires."""

    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        if self.frequency <= 0.0 or self.voltage <= 0.0:
            raise ConfigurationError("frequency and voltage must be positive")


class ClockPlan:
    """An ordered set of operating points with step-up/down navigation.

    Args:
        points: operating points; stored sorted by frequency ascending.
        initial_index: index (into the sorted list) selected at boot.
    """

    def __init__(self, points: Sequence[OperatingPoint], initial_index: int = -1):
        if not points:
            raise ConfigurationError("a clock plan needs at least one point")
        self.points: List[OperatingPoint] = sorted(points, key=lambda p: p.frequency)
        if initial_index < 0:
            initial_index += len(self.points)
        if not 0 <= initial_index < len(self.points):
            raise ConfigurationError("initial_index out of range")
        self.initial_index = initial_index
        self._index = initial_index

    @classmethod
    def msp430_like(cls) -> "ClockPlan":
        """The DCO steps of a 16-bit FRAM MCU: 1..24 MHz, boots at 8 MHz."""
        frequencies = [1e6, 2e6, 4e6, 8e6, 16e6, 24e6]
        points = [OperatingPoint(f, 3.0) for f in frequencies]
        return cls(points, initial_index=3)

    @property
    def current(self) -> OperatingPoint:
        """The active operating point."""
        return self.points[self._index]

    @property
    def frequency(self) -> float:
        """Active core frequency in Hz."""
        return self.current.frequency

    @property
    def index(self) -> int:
        """Index of the active point (0 = slowest)."""
        return self._index

    @property
    def at_minimum(self) -> bool:
        """True when running at the slowest point."""
        return self._index == 0

    @property
    def at_maximum(self) -> bool:
        """True when running at the fastest point."""
        return self._index == len(self.points) - 1

    def set_index(self, index: int) -> OperatingPoint:
        """Select an operating point by index."""
        if not 0 <= index < len(self.points):
            raise ConfigurationError(f"operating point index {index} out of range")
        self._index = index
        return self.current

    def step_up(self) -> OperatingPoint:
        """Move one point faster (saturates at the top)."""
        if not self.at_maximum:
            self._index += 1
        return self.current

    def step_down(self) -> OperatingPoint:
        """Move one point slower (saturates at the bottom)."""
        if not self.at_minimum:
            self._index -= 1
        return self.current

    def reset(self) -> None:
        """Return to the boot operating point."""
        self._index = self.initial_index
