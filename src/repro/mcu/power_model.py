"""MCU power and memory-energy model.

Two ingredients:

* a core power model ``P(f, V) = (i_leak + i_per_hz * f) * V`` for the
  active state plus fixed sleep/off powers — the standard CMOS first-order
  model, with per-mode currents transcribed from 16-bit FRAM-MCU data
  sheets;
* a per-access memory energy table for SRAM and FRAM.  FRAM's higher
  access energy and quiescent draw is the crux of the paper's Eq. (5)
  (the Hibernus-vs-QuickRecall crossover).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mcu.machine import ExecutionSlice


@dataclass(frozen=True)
class MemoryTechnology:
    """Energy/latency character of a memory technology.

    Attributes:
        name: technology label.
        read_energy: joules per word read.
        write_energy: joules per word written.
        write_cycles_per_word: cycles a bulk (DMA) write spends per word —
            sets snapshot duration.
        read_cycles_per_word: cycles a bulk read spends per word — sets
            restore duration.
        quiescent_power: standby draw of the array while powered (W).
    """

    name: str
    read_energy: float
    write_energy: float
    write_cycles_per_word: int
    read_cycles_per_word: int
    quiescent_power: float

    def __post_init__(self) -> None:
        if min(self.read_energy, self.write_energy, self.quiescent_power) < 0.0:
            raise ConfigurationError("memory energies must be non-negative")
        if self.write_cycles_per_word <= 0 or self.read_cycles_per_word <= 0:
            raise ConfigurationError("cycles per word must be positive")


#: On-chip SRAM: cheap, fast, volatile.
SRAM_TECH = MemoryTechnology(
    name="sram",
    read_energy=10e-12,
    write_energy=12e-12,
    write_cycles_per_word=1,
    read_cycles_per_word=1,
    quiescent_power=1.5e-6,
)

#: FRAM: non-volatile, slower bulk writes, noticeably higher energy and
#: quiescent draw — the QuickRecall trade-off of Eq. (5).
FRAM_TECH = MemoryTechnology(
    name="fram",
    read_energy=50e-12,
    write_energy=150e-12,
    write_cycles_per_word=16,
    read_cycles_per_word=4,
    quiescent_power=9e-6,
)


@dataclass(frozen=True)
class McuPowerModel:
    """Core + memory power model for the simulated MCU.

    Attributes:
        i_leak: leakage current (A) while active, frequency-independent.
        i_per_hz: dynamic current per hertz of core clock (A/Hz).
        sleep_power: LPM draw with RAM retained and the voltage supervisor
            alive (W).
        off_power: draw below the brownout threshold (W); effectively the
            supervisor alone.
        fram_execution_factor: multiplier on active power when executing
            from FRAM with data in FRAM (the QuickRecall configuration).
    """

    i_leak: float = 50e-6
    i_per_hz: float = 0.21e-9  # 210 uA/MHz
    sleep_power: float = 6e-6
    off_power: float = 0.2e-6
    fram_execution_factor: float = 1.0

    def __post_init__(self) -> None:
        if min(self.i_leak, self.i_per_hz, self.sleep_power, self.off_power) < 0.0:
            raise ConfigurationError("currents/powers must be non-negative")
        if self.fram_execution_factor < 1.0:
            raise ConfigurationError("fram execution factor must be >= 1")

    def active_power(self, frequency: float, voltage: float) -> float:
        """Core active power (W) at a given operating point."""
        if frequency < 0.0 or voltage < 0.0:
            raise ConfigurationError("frequency and voltage must be non-negative")
        return (self.i_leak + self.i_per_hz * frequency) * voltage * self.fram_execution_factor

    def active_current(self, frequency: float) -> float:
        """Effective active current draw (A) at ``frequency``.

        The voltage-proportional coefficient of :meth:`active_power`:
        ``active_power(f, V) == (active_current(f) * V) *
        fram_execution_factor`` with the same float association, which is
        what lets the fast kernel's chunk loop reproduce per-step active
        energy bit-for-bit (see
        :class:`~repro.sim.kernel.LoadProfile`).
        """
        if frequency < 0.0:
            raise ConfigurationError("frequency must be non-negative")
        return self.i_leak + self.i_per_hz * frequency

    def slice_memory_energy(
        self,
        slice_: ExecutionSlice,
        sram: MemoryTechnology = SRAM_TECH,
        fram: MemoryTechnology = FRAM_TECH,
    ) -> float:
        """Joules of memory-access energy for an execution slice."""
        return (
            slice_.sram_reads * sram.read_energy
            + slice_.sram_writes * sram.write_energy
            + slice_.fram_reads * fram.read_energy
            + slice_.fram_writes * fram.write_energy
        )

    def snapshot_cost(
        self,
        words: int,
        frequency: float,
        voltage: float,
        fram: MemoryTechnology = FRAM_TECH,
    ) -> "tuple[float, float]":
        """(duration_s, energy_J) of writing a ``words``-word snapshot to NVM.

        The core stays active for the DMA duration; per-word write energy is
        added on top.  This is the E_s of the paper's expression (4).
        """
        if words < 0:
            raise ConfigurationError("snapshot size must be non-negative")
        if frequency <= 0.0:
            raise ConfigurationError("frequency must be positive")
        duration = words * fram.write_cycles_per_word / frequency
        energy = self.active_power(frequency, voltage) * duration
        energy += words * fram.write_energy
        return duration, energy

    def restore_cost(
        self,
        words: int,
        frequency: float,
        voltage: float,
        fram: MemoryTechnology = FRAM_TECH,
        sram: MemoryTechnology = SRAM_TECH,
    ) -> "tuple[float, float]":
        """(duration_s, energy_J) of copying a snapshot back from NVM."""
        if words < 0:
            raise ConfigurationError("snapshot size must be non-negative")
        if frequency <= 0.0:
            raise ConfigurationError("frequency must be positive")
        duration = words * fram.read_cycles_per_word / frequency
        energy = self.active_power(frequency, voltage) * duration
        energy += words * (fram.read_energy + sram.write_energy)
        return duration, energy


#: Power model for the SRAM-data configuration (Hibernus platform).
MSP430_SRAM_MODEL = McuPowerModel()

#: Power model for unified-FRAM execution (QuickRecall platform): higher
#: active power — the quiescent overhead the paper says is "always incurred".
MSP430_FRAM_MODEL = McuPowerModel(fram_execution_factor=1.35)


from repro.spec.registry import register  # noqa: E402  (needs McuPowerModel)

register("default", kind="power-model")(McuPowerModel)


@register("msp430-sram", kind="power-model")
def _msp430_sram_model() -> McuPowerModel:
    """The shared SRAM-configuration model (stateless, safe to share)."""
    return MSP430_SRAM_MODEL


@register("msp430-fram", kind="power-model")
def _msp430_fram_model() -> McuPowerModel:
    """The shared unified-FRAM model (stateless, safe to share)."""
    return MSP430_FRAM_MODEL
