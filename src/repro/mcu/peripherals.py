"""Port-mapped peripherals.

The paper's discussion section notes that transient computing work "has
primarily focused on computation, and not the plethora of peripherals" —
these models let the examples exercise exactly that gap: an ADC, a sensor
front-end, and a packet radio, each with per-access energy costs that the
MCU wrapper folds into the load's consumption.

The external observer convention: :class:`OutputPort` is the *outside
world* (a logic analyser on a UART pin).  Its log therefore survives device
power failures — it belongs to the experimenter, not the device.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError


class Peripheral:
    """Base peripheral: a 16-bit read/write port with a per-access energy."""

    #: Joules consumed by each ``in``/``out`` access.
    access_energy: float = 0.0

    #: Words a peripheral-state checkpoint occupies in NVM (configuration
    #: registers, FIFO pointers...).  Used by peripheral-aware snapshots.
    state_words: int = 8

    def read(self) -> int:
        """Value returned to an ``in`` instruction."""
        raise NotImplementedError

    def write(self, value: int) -> None:
        """Handle a value written by an ``out`` instruction."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial state (default: no-op)."""

    def capture_state(self) -> object:
        """Snapshot the peripheral's device-visible state (default: none).

        The paper's discussion section points out that transient-computing
        work "has primarily focused on computation, and not the plethora
        of peripherals" — this hook (with :meth:`restore_state`) is the
        extension that closes the gap: peripheral-aware strategies save
        and restore peripheral context alongside the CPU state.
        """
        return None

    def restore_state(self, state: object) -> None:
        """Restore a :meth:`capture_state` snapshot (default: no-op)."""

    def on_power_fail(self) -> None:
        """Lose volatile device state when the rail collapses (default:
        no-op — external-world observers keep their logs)."""


class OutputPort(Peripheral):
    """Append-only output log (UART as seen by the bench logic analyser)."""

    access_energy = 5e-9

    def __init__(self) -> None:
        self.log: List[int] = []

    def read(self) -> int:
        return len(self.log) & 0xFFFF

    def write(self, value: int) -> None:
        self.log.append(value & 0xFFFF)

    @property
    def last(self) -> Optional[int]:
        """Most recent word written, or None."""
        return self.log[-1] if self.log else None

    def reset(self) -> None:
        self.log.clear()


class ADCPeripheral(Peripheral):
    """A sampled analogue input: successive reads walk a waveform.

    The waveform is a deterministic sum of two sines plus seeded noise —
    a plausible vibration/biopotential signal for the FIR/FFT workloads.
    """

    access_energy = 60e-9  # one SAR conversion

    def __init__(
        self,
        amplitude: int = 900,
        noise: float = 20.0,
        seed: int = 42,
        samples_per_cycle: int = 32,
    ):
        if amplitude <= 0 or amplitude > 0x3FFF:
            raise ConfigurationError("amplitude must be in (0, 16383]")
        self.amplitude = amplitude
        self.noise = noise
        self.samples_per_cycle = samples_per_cycle
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._index = 0

    def read(self) -> int:
        phase = 2.0 * math.pi * self._index / self.samples_per_cycle
        value = self.amplitude * (
            0.7 * math.sin(phase) + 0.3 * math.sin(3.1 * phase)
        )
        value += self.noise * float(self._rng.standard_normal())
        self._index += 1
        return int(value) & 0xFFFF

    def write(self, value: int) -> None:
        # Writing configures the channel index; accepted and ignored.
        return None

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._index = 0

    def capture_state(self) -> object:
        # The sample-stream position *is* the ADC's state: restoring it
        # makes re-executed reads see the same samples again.
        return (self._index, self._rng.bit_generator.state)

    def restore_state(self, state: object) -> None:
        index, rng_state = state
        self._index = index
        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = rng_state


class SensorPeripheral(Peripheral):
    """A slow environmental sensor returning a drifting value."""

    access_energy = 200e-9  # wake + measure + I2C transfer

    def __init__(self, base: int = 2500, drift_per_read: float = 0.8, seed: int = 5):
        self.base = base
        self.drift_per_read = drift_per_read
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._value = float(base)

    def read(self) -> int:
        self._value += self.drift_per_read * float(self._rng.standard_normal())
        return int(self._value) & 0xFFFF

    def write(self, value: int) -> None:
        return None

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._value = float(self.base)

    def capture_state(self) -> object:
        return (self._value, self._rng.bit_generator.state)

    def restore_state(self, state: object) -> None:
        value, rng_state = state
        self._value = value
        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = rng_state


class Radio(Peripheral):
    """A packet radio: each written word is queued; a flush word transmits.

    Transmission is expensive (the dominant cost in WSN nodes): energy is
    ``tx_energy_per_word * queued + tx_overhead`` charged at flush time.
    """

    #: Writing this value flushes the queue as one packet.
    FLUSH = 0xFFFF

    access_energy = 10e-9  # register write; real cost charged at flush

    def __init__(self, tx_energy_per_word: float = 4e-6, tx_overhead: float = 12e-6):
        if tx_energy_per_word < 0.0 or tx_overhead < 0.0:
            raise ConfigurationError("radio energies must be non-negative")
        self.tx_energy_per_word = tx_energy_per_word
        self.tx_overhead = tx_overhead
        self.queue: List[int] = []
        self.packets: List[List[int]] = []
        self.energy_spent = 0.0

    def read(self) -> int:
        return len(self.packets) & 0xFFFF

    def write(self, value: int) -> None:
        if value == self.FLUSH:
            if self.queue:
                self.packets.append(list(self.queue))
                self.energy_spent += (
                    self.tx_overhead + self.tx_energy_per_word * len(self.queue)
                )
                self.queue.clear()
            return
        self.queue.append(value & 0xFFFF)

    def reset(self) -> None:
        self.queue.clear()
        self.packets.clear()
        self.energy_spent = 0.0

    def capture_state(self) -> object:
        # The TX queue lives in the radio's buffer RAM; packets already on
        # the air belong to the outside world and are not state.
        return list(self.queue)

    def restore_state(self, state: object) -> None:
        self.queue = list(state)

    def on_power_fail(self) -> None:
        # The radio's buffer RAM is volatile: un-flushed words are lost.
        self.queue.clear()
