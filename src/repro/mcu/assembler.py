"""Two-pass assembler for the mini-ISA.

Syntax::

    ; comment
    .data table: 1, 2, 3        ; initialised words in data memory
    .reserve buf, 64            ; zero-initialised words
    .equ N, 64                  ; symbolic constant

    start:                      ; label
        ldi  r1, N              ; immediates may be symbols/labels
        ldi  r2, table
    loop:
        ld   r3, r2, 0
        addi r2, r2, 1
        subi r1, r1, 1
        bne  r1, r0, loop
        halt

Conventions: ``r0`` reads as zero if never written (software convention —
the assembler does not enforce it); ``r15`` is the stack pointer, set up by
the machine at boot.  Data symbols resolve to word addresses in data space;
labels resolve to instruction indices.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import AssemblerError
from repro.mcu.isa import Instruction, NUM_REGISTERS, OPCODES, to_word


@dataclass
class ProgramImage:
    """An assembled program.

    Attributes:
        instructions: decoded instruction list; the PC indexes into it.
        data_image: initial contents of data memory (word address -> value),
            applied by crt0 at every cold boot.
        data_size: number of data words the program claims (initialised +
            reserved); the stack lives above this.
        symbols: resolved symbol table (labels, data names, constants).
        source_lines: original source, for diagnostics.
    """

    instructions: List[Instruction]
    data_image: Dict[int, int]
    data_size: int
    symbols: Dict[str, int]
    source_lines: List[str] = field(default_factory=list)

    @property
    def text_words(self) -> int:
        """Program memory footprint in words (one word per instruction,
        a deliberate simplification)."""
        return len(self.instructions)


_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_REGISTER_RE = re.compile(r"^[rR](\d{1,2})$")


def _strip_comment(line: str) -> str:
    index = line.find(";")
    if index >= 0:
        return line[:index]
    return line


def _parse_register(token: str, lineno: int) -> int:
    match = _REGISTER_RE.match(token)
    if not match:
        raise AssemblerError(f"line {lineno}: expected register, got {token!r}")
    number = int(match.group(1))
    if number >= NUM_REGISTERS:
        raise AssemblerError(f"line {lineno}: register r{number} out of range")
    return number


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: expected integer, got {token!r}") from None


def _parse_value(token: str, symbols: Dict[str, int], lineno: int) -> int:
    """An immediate: integer literal or symbol (label/data/constant)."""
    if _LABEL_RE.match(token):
        if token not in symbols:
            raise AssemblerError(f"line {lineno}: undefined symbol {token!r}")
        return symbols[token]
    return _parse_int(token, lineno)


@dataclass
class _PendingInstruction:
    lineno: int
    mnemonic: str
    tokens: List[str]


def assemble(source: str) -> ProgramImage:
    """Assemble mini-ISA source into a :class:`ProgramImage`.

    Raises:
        AssemblerError: on any syntax error, unknown mnemonic, bad operand
            count, out-of-range register, or undefined/duplicate symbol.
    """
    symbols: Dict[str, int] = {}
    data_image: Dict[int, int] = {}
    data_cursor = 0
    pending: List[_PendingInstruction] = []
    source_lines = source.splitlines()

    def define(name: str, value: int, lineno: int) -> None:
        if not _LABEL_RE.match(name):
            raise AssemblerError(f"line {lineno}: invalid symbol name {name!r}")
        if name in symbols:
            raise AssemblerError(f"line {lineno}: duplicate symbol {name!r}")
        symbols[name] = value

    # --- Pass 1: collect symbols, layout data, gather instructions. -------
    for lineno, raw in enumerate(source_lines, start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue

        if line.startswith(".data"):
            body = line[len(".data") :].strip()
            if ":" not in body:
                raise AssemblerError(f"line {lineno}: .data needs 'name: values'")
            name, values = body.split(":", 1)
            define(name.strip(), data_cursor, lineno)
            for token in values.split(","):
                token = token.strip()
                if not token:
                    continue
                data_image[data_cursor] = to_word(_parse_int(token, lineno))
                data_cursor += 1
            continue

        if line.startswith(".reserve"):
            parts = [p.strip() for p in line[len(".reserve") :].split(",")]
            if len(parts) != 2:
                raise AssemblerError(f"line {lineno}: .reserve needs 'name, count'")
            count = _parse_int(parts[1], lineno)
            if count <= 0:
                raise AssemblerError(f"line {lineno}: .reserve count must be positive")
            define(parts[0], data_cursor, lineno)
            data_cursor += count
            continue

        if line.startswith(".equ"):
            parts = [p.strip() for p in line[len(".equ") :].split(",")]
            if len(parts) != 2:
                raise AssemblerError(f"line {lineno}: .equ needs 'name, value'")
            define(parts[0], _parse_int(parts[1], lineno), lineno)
            continue

        if line.startswith("."):
            raise AssemblerError(f"line {lineno}: unknown directive {line.split()[0]!r}")

        # Labels (possibly followed by an instruction on the same line).
        while ":" in line:
            label, line = line.split(":", 1)
            define(label.strip(), len(pending), lineno)
            line = line.strip()
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in OPCODES:
            raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        tokens = []
        if len(parts) > 1:
            tokens = [t.strip() for t in parts[1].split(",") if t.strip()]
        pending.append(_PendingInstruction(lineno, mnemonic, tokens))

    # --- Pass 2: resolve operands. ----------------------------------------
    instructions: List[Instruction] = []
    for item in pending:
        spec = OPCODES[item.mnemonic]
        if len(item.tokens) != len(spec.signature):
            raise AssemblerError(
                f"line {item.lineno}: {spec.name} expects {len(spec.signature)} "
                f"operand(s), got {len(item.tokens)}"
            )
        operands: List[int] = []
        for code, token in zip(spec.signature, item.tokens):
            if code == "r":
                operands.append(_parse_register(token, item.lineno))
            elif code == "i":
                operands.append(_parse_value(token, symbols, item.lineno))
            elif code == "l":
                value = _parse_value(token, symbols, item.lineno)
                if not 0 <= value <= len(pending):
                    raise AssemblerError(
                        f"line {item.lineno}: branch target {token!r} out of range"
                    )
                operands.append(value)
            elif code == "p":
                operands.append(_parse_int(token, item.lineno))
            else:  # pragma: no cover - signature codes are internal
                raise AssemblerError(f"bad signature code {code!r}")
        instructions.append(Instruction(spec, tuple(operands)))

    return ProgramImage(
        instructions=instructions,
        data_image=data_image,
        data_size=data_cursor,
        symbols=symbols,
        source_lines=source_lines,
    )
