"""Disassembler for the mini-ISA.

Turns a :class:`~repro.mcu.assembler.ProgramImage` back into readable
assembly, resolving branch targets to labels and data addresses to symbol
names — the debugging view of whatever the intermittent platform was
executing when it died.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mcu.assembler import ProgramImage
from repro.mcu.isa import Instruction


def _label_map(image: ProgramImage) -> Dict[int, str]:
    """Instruction index -> label name (first label wins)."""
    labels: Dict[int, str] = {}
    text_words = image.text_words
    for name, value in image.symbols.items():
        # Heuristic: symbols pointing into the instruction range that are
        # actually used as branch/call targets are code labels.
        if 0 <= value <= text_words and value not in labels:
            if _is_branch_target(image, value):
                labels[value] = name
    return labels


def _is_branch_target(image: ProgramImage, index: int) -> bool:
    for ins in image.instructions:
        spec = ins.spec
        for code, operand in zip(spec.signature, ins.operands):
            if code == "l" and operand == index:
                return True
    return False


def _data_symbols(image: ProgramImage) -> Dict[int, str]:
    """Data address -> symbol name for .data/.reserve allocations."""
    code_targets = set()
    for ins in image.instructions:
        for code, operand in zip(ins.spec.signature, ins.operands):
            if code == "l":
                code_targets.add(operand)
    symbols: Dict[int, str] = {}
    for name, value in sorted(image.symbols.items(), key=lambda kv: kv[1]):
        if value in code_targets:
            continue
        if 0 <= value < image.data_size and value not in symbols:
            symbols[value] = name
    return symbols


def format_instruction(ins: Instruction, labels: Dict[int, str]) -> str:
    """One instruction as assembly text, with labelled targets."""
    parts: List[str] = []
    for code, operand in zip(ins.spec.signature, ins.operands):
        if code == "r":
            parts.append(f"r{operand}")
        elif code == "l":
            parts.append(labels.get(operand, str(operand)))
        else:
            parts.append(str(operand))
    if parts:
        return f"{ins.spec.name} {', '.join(parts)}"
    return ins.spec.name


def disassemble(image: ProgramImage) -> str:
    """Full listing: data section summary plus labelled instructions."""
    labels = _label_map(image)
    data_symbols = _data_symbols(image)
    lines: List[str] = []
    if image.data_size:
        lines.append(f"; data: {image.data_size} words")
        for address, name in sorted(data_symbols.items()):
            initial = image.data_image.get(address)
            init_text = f" = {initial}" if initial is not None else " (reserved)"
            lines.append(f";   [{address:#06x}] {name}{init_text}")
    for index, ins in enumerate(image.instructions):
        if index in labels:
            lines.append(f"{labels[index]}:")
        lines.append(f"  {index:4d}: {format_instruction(ins, labels)}")
    return "\n".join(lines)


def disassemble_window(image: ProgramImage, pc: int, radius: int = 3) -> str:
    """A few instructions around ``pc`` — the crash-site view."""
    labels = _label_map(image)
    lo = max(0, pc - radius)
    hi = min(len(image.instructions), pc + radius + 1)
    lines = []
    for index in range(lo, hi):
        marker = "->" if index == pc else "  "
        lines.append(
            f"{marker} {index:4d}: "
            f"{format_instruction(image.instructions[index], labels)}"
        )
    return "\n".join(lines)
