"""The MCU interpreter.

A :class:`Machine` executes an assembled :class:`~repro.mcu.assembler.ProgramImage`
cycle-budget by cycle-budget, which is how the intermittent-power wrapper
drives it: each simulation timestep buys ``f * dt`` cycles of execution.

Memory model
------------
* Program memory is FRAM (as on MSP430FR parts): every instruction fetch is
  an FRAM read.
* Data memory (one flat word-addressed space holding .data, heap and stack)
  is SRAM by default, or FRAM when ``MachineConfig.data_in_fram`` is set —
  the QuickRecall configuration.
* ``r0`` is hardwired to zero.  ``r15`` is the stack pointer, initialised
  to the top of data space at boot.

Volatility: registers and PC are always volatile.  SRAM-backed data is lost
on power failure; FRAM-backed data survives.  :meth:`Machine.cold_boot`
re-runs crt0 (zero registers, re-initialise .data from the image, reset SP),
which is what happens after an outage when no snapshot is restored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MachineError
from repro.mcu.assembler import ProgramImage
from repro.mcu.isa import Instruction, to_signed, to_word
from repro.mcu.peripherals import OutputPort, Peripheral


@dataclass(frozen=True)
class MachineConfig:
    """Static machine configuration.

    Attributes:
        data_space_words: total words of data memory (data + heap + stack).
        data_in_fram: place data memory in FRAM (QuickRecall's unified
            memory) instead of SRAM.
        fram_fetch_wait: extra cycles per instruction fetch from FRAM.
        fram_data_wait: extra cycles per data access when data is in FRAM.
    """

    data_space_words: int = 2048
    data_in_fram: bool = False
    fram_fetch_wait: int = 0
    fram_data_wait: int = 1


@dataclass
class ExecutionSlice:
    """Accounting for one ``run`` call.

    Attributes:
        cycles: cycles consumed (including wait states).
        instructions: instructions retired.
        fram_reads/fram_writes/sram_reads/sram_writes: data+fetch accesses.
        peripheral_energy: joules consumed by peripheral accesses.
        halted: machine executed ``halt``.
        hit_checkpoint: stopped at a ``ckpt`` marker (stop_at_ckpt mode).
    """

    cycles: int = 0
    instructions: int = 0
    fram_reads: int = 0
    fram_writes: int = 0
    sram_reads: int = 0
    sram_writes: int = 0
    peripheral_energy: float = 0.0
    halted: bool = False
    hit_checkpoint: bool = False


@dataclass
class MachineState:
    """A captured snapshot of machine state.

    ``data`` is None for register-only snapshots (QuickRecall): data memory
    lives in FRAM and needs no copying.  ``peripherals`` is non-None only
    for peripheral-aware snapshots (port -> opaque device state).
    """

    registers: Tuple[int, ...]
    pc: int
    data: Optional[List[int]]
    peripherals: Optional[Dict[int, object]] = None

    def words(self) -> int:
        """Snapshot size in memory words (what must be written to NVM)."""
        base = len(self.registers) + 1  # registers + pc
        if self.data is not None:
            base += len(self.data)
        if self.peripherals is not None:
            base += 8 * len(self.peripherals)
        return base


class Machine:
    """Interpreter for the mini-ISA (see module docstring)."""

    def __init__(self, image: ProgramImage, config: Optional[MachineConfig] = None):
        self.image = image
        self.config = config or MachineConfig()
        if image.data_size > self.config.data_space_words:
            raise MachineError(
                f"program claims {image.data_size} data words, machine has "
                f"{self.config.data_space_words}"
            )
        self.registers: List[int] = [0] * 16
        self.pc = 0
        self.halted = False
        self.total_cycles = 0
        self.ports: Dict[int, Peripheral] = {7: OutputPort()}
        self.data: List[int] = [0] * self.config.data_space_words
        # Precompute per-instruction cycle costs including fetch wait states.
        self._cycle_cost = [
            ins.spec.cycles + self.config.fram_fetch_wait
            for ins in image.instructions
        ]
        self._data_wait = self.config.fram_data_wait if self.config.data_in_fram else 0
        self.cold_boot()

    # ------------------------------------------------------------------
    # Boot / power management
    # ------------------------------------------------------------------

    def cold_boot(self) -> None:
        """crt0: zero registers, initialise .data, set SP, PC to entry."""
        self.registers = [0] * 16
        self.registers[15] = self.config.data_space_words  # stack pointer
        self.pc = 0
        self.halted = False
        self.data = [0] * self.config.data_space_words
        for address, value in self.image.data_image.items():
            self.data[address] = value

    def power_fail(self) -> None:
        """Lose all volatile state (registers, PC; SRAM data too; volatile
        peripheral buffers)."""
        self.registers = [0] * 16
        self.pc = 0
        self.halted = False
        if not self.config.data_in_fram:
            self.data = [0] * self.config.data_space_words
        for peripheral in self.ports.values():
            peripheral.on_power_fail()

    def attach_peripheral(self, port: int, peripheral: Peripheral) -> None:
        """Map ``peripheral`` at ``port`` for ``in``/``out`` instructions."""
        self.ports[port] = peripheral

    @property
    def output_port(self) -> OutputPort:
        """The default console/telemetry port at port 7."""
        return self.ports[7]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def capture_full(self, include_peripherals: bool = False) -> MachineState:
        """Capture registers + PC + all data memory (the Hibernus snapshot).

        With ``include_peripherals`` the snapshot also carries every
        mapped peripheral's device state — the peripheral-aware extension
        the paper's discussion section calls for.
        """
        peripherals = None
        if include_peripherals:
            peripherals = {
                port: peripheral.capture_state()
                for port, peripheral in self.ports.items()
            }
        return MachineState(
            tuple(self.registers), self.pc, list(self.data), peripherals
        )

    def capture_registers(self) -> MachineState:
        """Capture registers + PC only (the QuickRecall snapshot)."""
        return MachineState(tuple(self.registers), self.pc, None)

    def restore(self, state: MachineState) -> None:
        """Restore a snapshot taken by either capture method."""
        self.registers = list(state.registers)
        self.registers[0] = 0
        self.pc = state.pc
        self.halted = False
        if state.data is not None:
            if len(state.data) != len(self.data):
                raise MachineError("snapshot data size mismatch")
            self.data = list(state.data)
        if state.peripherals is not None:
            for port, payload in state.peripherals.items():
                if port in self.ports and payload is not None:
                    self.ports[port].restore_state(payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _read_mem(self, address: int, slice_: ExecutionSlice) -> int:
        if not 0 <= address < len(self.data):
            raise MachineError(f"data read out of range: {address} (pc={self.pc})")
        if self.config.data_in_fram:
            slice_.fram_reads += 1
        else:
            slice_.sram_reads += 1
        return self.data[address]

    def _write_mem(self, address: int, value: int, slice_: ExecutionSlice) -> None:
        if not 0 <= address < len(self.data):
            raise MachineError(f"data write out of range: {address} (pc={self.pc})")
        if self.config.data_in_fram:
            slice_.fram_writes += 1
        else:
            slice_.sram_writes += 1
        self.data[address] = to_word(value)

    def _set_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = to_word(value)

    def run(self, max_cycles: int, stop_at_ckpt: bool = False) -> ExecutionSlice:
        """Execute until the cycle budget is spent, ``halt``, or a ``ckpt``.

        Args:
            max_cycles: cycle budget for this slice (>= 0).
            stop_at_ckpt: when True, pause *after* executing a ``ckpt``
                marker so a checkpointing supervisor can act.

        Returns:
            An :class:`ExecutionSlice` with cycle/access accounting.
        """
        slice_ = ExecutionSlice()
        if self.halted:
            slice_.halted = True
            return slice_
        regs = self.registers
        instructions = self.image.instructions
        n_instructions = len(instructions)
        while slice_.cycles < max_cycles:
            if not 0 <= self.pc < n_instructions:
                raise MachineError(f"PC out of range: {self.pc}")
            ins = instructions[self.pc]
            cost = self._cycle_cost[self.pc]
            slice_.fram_reads += 1  # instruction fetch
            kind = ins.spec.kind
            ops = ins.operands
            next_pc = self.pc + 1

            if kind == "alu":
                a = regs[ops[1]]
                b = regs[ops[2]]
                self._set_reg(ops[0], self._alu(ins.spec.name, a, b))
            elif kind == "alui":
                a = regs[ops[1]]
                self._set_reg(ops[0], self._alu(ins.spec.name.rstrip("i"), a, ops[2]))
            elif kind == "ldi":
                self._set_reg(ops[0], ops[1])
            elif kind == "mov":
                self._set_reg(ops[0], regs[ops[1]])
            elif kind == "load":
                address = to_signed(regs[ops[1]]) + to_signed(to_word(ops[2]))
                self._set_reg(ops[0], self._read_mem(address, slice_))
                cost += self._data_wait
            elif kind == "store":
                address = to_signed(regs[ops[1]]) + to_signed(to_word(ops[2]))
                self._write_mem(address, regs[ops[0]], slice_)
                cost += self._data_wait
            elif kind == "jump":
                next_pc = ops[0]
            elif kind == "branch":
                if self._branch_taken(ins.spec.name, regs[ops[0]], regs[ops[1]]):
                    next_pc = ops[2]
            elif kind == "call":
                sp = to_word(regs[15] - 1)
                self._write_mem(sp, next_pc, slice_)
                regs[15] = sp
                next_pc = ops[0]
                cost += self._data_wait
            elif kind == "ret":
                sp = regs[15]
                next_pc = self._read_mem(sp, slice_)
                regs[15] = to_word(sp + 1)
                cost += self._data_wait
            elif kind == "push":
                sp = to_word(regs[15] - 1)
                self._write_mem(sp, regs[ops[0]], slice_)
                regs[15] = sp
                cost += self._data_wait
            elif kind == "pop":
                sp = regs[15]
                self._set_reg(ops[0], self._read_mem(sp, slice_))
                regs[15] = to_word(sp + 1)
                cost += self._data_wait
            elif kind == "in":
                peripheral = self._port(ops[1])
                self._set_reg(ops[0], to_word(peripheral.read()))
                slice_.peripheral_energy += peripheral.access_energy
            elif kind == "out":
                peripheral = self._port(ops[0])
                peripheral.write(regs[ops[1]])
                slice_.peripheral_energy += peripheral.access_energy
            elif kind == "nop":
                pass
            elif kind == "ckpt":
                self.pc = next_pc
                slice_.cycles += cost
                slice_.instructions += 1
                self.total_cycles += cost
                if stop_at_ckpt:
                    slice_.hit_checkpoint = True
                    return slice_
                continue
            elif kind == "halt":
                self.halted = True
                slice_.halted = True
                slice_.cycles += cost
                slice_.instructions += 1
                self.total_cycles += cost
                return slice_
            else:  # pragma: no cover - spec table is internal
                raise MachineError(f"unhandled instruction kind {kind!r}")

            self.pc = next_pc
            slice_.cycles += cost
            slice_.instructions += 1
            self.total_cycles += cost
        return slice_

    def _port(self, port: int) -> Peripheral:
        if port not in self.ports:
            raise MachineError(f"no peripheral at port {port}")
        return self.ports[port]

    @staticmethod
    def _alu(name: str, a: int, b: int) -> int:
        if name == "add":
            return a + b
        if name == "sub":
            return a - b
        if name == "and":
            return a & b
        if name == "or":
            return a | b
        if name == "xor":
            return a ^ b
        if name == "shl":
            return a << (b & 15)
        if name == "shr":
            return (a & 0xFFFF) >> (b & 15)
        if name == "sra":
            return to_signed(a) >> (b & 15)
        if name == "mul":
            return to_signed(a) * to_signed(b)
        if name == "mulq":
            return (to_signed(a) * to_signed(b)) >> 15
        if name == "slt":
            return 1 if to_signed(a) < to_signed(b) else 0
        raise MachineError(f"unknown ALU op {name!r}")  # pragma: no cover

    @staticmethod
    def _branch_taken(name: str, a: int, b: int) -> bool:
        if name == "beq":
            return a == b
        if name == "bne":
            return a != b
        if name == "blt":
            return to_signed(a) < to_signed(b)
        if name == "bge":
            return to_signed(a) >= to_signed(b)
        raise MachineError(f"unknown branch {name!r}")  # pragma: no cover
