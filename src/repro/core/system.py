"""System composition: wire harvester, conditioning, storage and loads.

:class:`EnergyDrivenSystem` is the public build-and-run API the examples
use.  It assembles the Fig. 3 (energy-neutral) or Fig. 4 (power-neutral /
direct) architectures from parts, installs the standard probes, and runs
the simulation kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester, VoltageHarvester
from repro.power.converter import ConversionStage
from repro.power.mppt import FractionalVocMPPT
from repro.power.rail import (
    HarvesterInjector,
    RailLoad,
    RectifiedInjector,
    SupplyRail,
)
from repro.power.rectifier import HalfWaveRectifier
from repro.sim.engine import Simulator
from repro.sim.probes import Trace
from repro.storage.base import StorageElement
from repro.transient.base import PlatformState, TransientPlatform


@dataclass
class SystemRunResult:
    """Traces plus component references from one run."""

    t_end: float
    traces: Dict[str, Trace]
    rail: SupplyRail
    platform: Optional[TransientPlatform]

    def vcc(self) -> Trace:
        """The rail voltage trace (the oscilloscope's V_cc channel)."""
        return self.traces["vcc"]


#: Numeric encoding of platform states for the 'state' probe.
STATE_CODES = {
    PlatformState.OFF: 0.0,
    PlatformState.SLEEP: 1.0,
    PlatformState.RESTORE: 2.0,
    PlatformState.SNAPSHOT: 3.0,
    PlatformState.ACTIVE: 4.0,
}


class EnergyDrivenSystem:
    """Builder/runner for a single-rail energy-driven system.

    Typical use::

        system = EnergyDrivenSystem(dt=50e-6)
        system.set_storage(Capacitor(22e-6, v_max=3.3))
        system.add_voltage_source(SignalGenerator(3.3, 4.7, rectified=True))
        system.set_platform(platform)
        result = system.run(1.0)

    ``kernel="fast"`` selects the chunked execution kernel (identical
    physics, macro-chunked between component-declared events through
    every platform state — see :mod:`repro.sim.kernel`); the default
    is the per-step reference kernel.
    """

    def __init__(self, dt: float, kernel: str = "reference"):
        self.simulator = Simulator(dt, kernel=kernel)
        self.rail: Optional[SupplyRail] = None
        self.platform: Optional[TransientPlatform] = None
        self._probes_installed = False

    # -- construction ------------------------------------------------------

    def set_storage(self, storage: StorageElement) -> SupplyRail:
        """Create the supply rail around ``storage``."""
        if self.rail is not None:
            raise ConfigurationError("storage already set")
        self.rail = SupplyRail(storage)
        self.simulator.add(self.rail)
        return self.rail

    def _require_rail(self) -> SupplyRail:
        if self.rail is None:
            raise ConfigurationError("call set_storage() first")
        return self.rail

    def add_power_source(
        self,
        harvester: PowerHarvester,
        converter: Optional[ConversionStage] = None,
        mppt: Optional[FractionalVocMPPT] = None,
    ) -> None:
        """Attach a power-domain harvester (Fig. 3 style front end)."""
        self._require_rail().attach_injector(
            HarvesterInjector(harvester, converter=converter, mppt=mppt)
        )

    def add_voltage_source(
        self,
        harvester: VoltageHarvester,
        rectifier: Optional[HalfWaveRectifier] = None,
    ) -> None:
        """Attach a voltage-domain harvester through a rectifier (Fig. 4)."""
        self._require_rail().attach_injector(RectifiedInjector(harvester, rectifier))

    def set_platform(self, platform: TransientPlatform) -> None:
        """Attach the MCU platform as the rail's load."""
        if self.platform is not None:
            raise ConfigurationError("platform already set")
        self.platform = platform
        self._require_rail().attach_load(platform)

    def add_load(self, load: RailLoad) -> None:
        """Attach an additional (non-platform) load."""
        self._require_rail().attach_load(load)

    # -- probes / running ----------------------------------------------------

    def install_probes(self, decimate: int = 1) -> None:
        """Install the standard probe set: vcc, state, frequency.

        All three are chunk-capable: vcc reads the rail's per-chunk
        voltage record, and state/frequency are constant across a chunk
        by construction (chunks never span a platform state transition),
        so the fast kernel can bulk-sample them.
        """
        if self._probes_installed:
            return
        rail = self._require_rail()
        self.simulator.probe(
            "vcc",
            lambda: rail.voltage,
            decimate=decimate,
            chunk_fn=lambda k: rail.last_chunk_voltages(),
        )
        if self.platform is not None:
            platform = self.platform

            def state_code() -> float:
                return STATE_CODES[platform.state]

            def frequency() -> float:
                return (
                    platform.clock.frequency
                    if platform.state is PlatformState.ACTIVE
                    else 0.0
                )

            # Constant across a chunk: a zero-stride broadcast view is
            # enough (the recorder copies the decimated samples out).
            self.simulator.probe(
                "state", state_code, decimate=decimate,
                chunk_fn=lambda k: np.broadcast_to(
                    np.float64(state_code()), (k,)
                ),
            )
            self.simulator.probe(
                "frequency", frequency, decimate=decimate,
                chunk_fn=lambda k: np.broadcast_to(
                    np.float64(frequency()), (k,)
                ),
            )
        self._probes_installed = True

    def probe(self, name: str, fn, decimate: int = 1, chunk_fn=None) -> None:
        """Install a custom probe.

        Custom probes without a ``chunk_fn`` disable chunking under the
        fast kernel (their values must be observed every step); pass one
        returning per-step values for a k-step chunk to keep it engaged.
        """
        self.simulator.probe(name, fn, decimate=decimate, chunk_fn=chunk_fn)

    def stop_when(self, condition, chunk_safe: bool = False) -> None:
        """Stop a run as soon as ``condition(t)`` returns True.

        ``chunk_safe=True`` asserts the condition can only become true
        during per-step execution, letting the fast kernel keep chunking
        (see :meth:`repro.sim.engine.Simulator.stop_when`).
        """
        self.simulator.stop_when(condition, chunk_safe=chunk_safe)

    def run(self, duration: float, decimate: int = 1) -> SystemRunResult:
        """Install standard probes (if not yet) and run for ``duration``."""
        self.install_probes(decimate=decimate)
        result = self.simulator.run(duration)
        return SystemRunResult(
            t_end=result.t_end,
            traces=result.traces,
            rail=self._require_rail(),
            platform=self.platform,
        )

    def reset(self) -> None:
        """Reset the simulator and all components for a fresh run."""
        self.simulator.reset()
