"""Design-time helpers: the paper's expressions (4) and (5).

Expression (4) sizes the hibernate threshold (or, rearranged, the minimum
capacitance) so a snapshot always completes.  Expression (5) predicts the
supply-interruption frequency at which QuickRecall's cheap snapshots start
beating Hibernus' cheaper quiescent power:

    f_crossover = (P_FRAM - P_SRAM) / (E_hibernus - E_quickrecall)
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.transient.hibernus import hibernate_threshold

__all__ = [
    "hibernate_threshold",
    "minimum_capacitance",
    "crossover_frequency",
    "snapshot_survivable",
    "required_vh_vs_capacitance",
]


def minimum_capacitance(
    snapshot_energy: float, v_hibernate: float, v_min: float, margin: float = 1.0
) -> float:
    """Expression (4) rearranged for C: the least capacitance that lets a
    snapshot taken at ``v_hibernate`` finish before V_cc reaches ``v_min``.

    Args:
        snapshot_energy: E_s in joules.
        v_hibernate: the chosen hibernate threshold V_H.
        v_min: brownout voltage.
        margin: safety factor on E_s.
    """
    if snapshot_energy <= 0.0:
        raise ConfigurationError("snapshot energy must be positive")
    if v_hibernate <= v_min:
        raise ConfigurationError("V_H must exceed V_min")
    if margin < 1.0:
        raise ConfigurationError("margin must be >= 1")
    return 2.0 * snapshot_energy * margin / (v_hibernate**2 - v_min**2)


def crossover_frequency(
    p_fram: float,
    p_sram: float,
    e_hibernus: float,
    e_quickrecall: float,
) -> float:
    """Expression (5): the interruption frequency where the two approaches
    cost the same.

    Below the crossover Hibernus wins (its rare, expensive snapshots cost
    less than FRAM's permanent power penalty); above it QuickRecall wins.

    Args:
        p_fram: active power when executing from FRAM (QuickRecall), W.
        p_sram: active power when executing from SRAM (Hibernus), W.
        e_hibernus: energy per Hibernus snapshot+restore cycle, J.
        e_quickrecall: energy per QuickRecall snapshot+restore cycle, J.

    Raises:
        ConfigurationError: when the denominators make no sense (Hibernus
            snapshots must cost more than QuickRecall's, and FRAM execution
            must draw more than SRAM execution — otherwise one approach
            dominates everywhere and no crossover exists).
    """
    if p_fram <= p_sram:
        raise ConfigurationError("no crossover: FRAM power must exceed SRAM power")
    if e_hibernus <= e_quickrecall:
        raise ConfigurationError(
            "no crossover: Hibernus snapshots must cost more than QuickRecall's"
        )
    return (p_fram - p_sram) / (e_hibernus - e_quickrecall)


def snapshot_survivable(
    snapshot_energy: float, capacitance: float, v_start: float, v_min: float
) -> bool:
    """Can a snapshot starting at ``v_start`` complete before brownout?

    The inequality form of expression (4) evaluated directly.
    """
    if capacitance <= 0.0:
        raise ConfigurationError("capacitance must be positive")
    available = 0.5 * capacitance * (v_start**2 - v_min**2)
    return snapshot_energy <= available


def required_vh_vs_capacitance(
    snapshot_energy: float, v_min: float, capacitances: "list[float]"
) -> "list[float]":
    """V_H required by Eq. (4) across a capacitance sweep (for the Eq. 4
    bench's table)."""
    return [
        math.sqrt(2.0 * snapshot_energy / c + v_min * v_min) for c in capacitances
    ]
