"""Run metrics: the paper's expressions (1) and (2) over simulation traces.

Expression (1): over an appropriate period T, harvested energy equals
consumed energy — energy neutrality.
Expression (2): V_cc >= V_min at all times — the supply never collapses.
A system violating (2) fails *unless* it is transient, which is exactly the
distinction the taxonomy engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.probes import Trace


def energy_neutral_over(
    harvested: Trace,
    consumed: Trace,
    period: float,
    tolerance: float = 0.1,
) -> bool:
    """Check expression (1): per-period harvested vs consumed energy.

    Args:
        harvested: power trace of harvest into the system (W).
        consumed: power trace of the load draw (W).
        period: the neutrality period T (e.g. 24 h for outdoor solar).
        tolerance: allowed relative mismatch per period.

    Returns:
        True when every complete period balances within tolerance.
    """
    if period <= 0.0:
        raise ConfigurationError("period must be positive")
    t_start = max(harvested.times[0], consumed.times[0])
    t_end = min(harvested.times[-1], consumed.times[-1])
    n_periods = int((t_end - t_start) / period)
    if n_periods < 1:
        raise ConfigurationError("traces shorter than one neutrality period")
    for k in range(n_periods):
        lo = t_start + k * period
        hi = lo + period
        e_in = harvested.between(lo, hi).integral()
        e_out = consumed.between(lo, hi).integral()
        scale = max(e_in, e_out, 1e-30)
        if abs(e_in - e_out) / scale > tolerance:
            return False
    return True


def expression2_holds(vcc: Trace, v_min: float) -> bool:
    """Check expression (2): V_cc >= V_min for all t."""
    if len(vcc) == 0:
        raise ConfigurationError("empty V_cc trace")
    return bool(vcc.minimum() >= v_min)


def first_violation_time(vcc: Trace, v_min: float) -> Optional[float]:
    """First time V_cc dips below V_min, or None if it never does."""
    below = np.nonzero(vcc.values < v_min)[0]
    if below.size == 0:
        return None
    return float(vcc.times[int(below[0])])


@dataclass(frozen=True)
class RunReport:
    """Summary of one simulated run of a transient platform.

    Built by :meth:`from_run`; rendered by :meth:`lines`.
    """

    completed: bool
    completion_time: Optional[float]
    brownouts: int
    snapshots: int
    snapshots_aborted: int
    restores: int
    cycles_executed: int
    active_time: float
    total_time: float
    energy_total: float
    energy_overhead: float

    @classmethod
    def from_run(cls, platform, t_end: float) -> "RunReport":
        """Condense a platform's metrics after a run of length ``t_end``."""
        m = platform.metrics
        return cls(
            completed=m.first_completion_time is not None,
            completion_time=m.first_completion_time,
            brownouts=m.brownouts,
            snapshots=m.snapshots_completed,
            snapshots_aborted=m.snapshots_aborted,
            restores=m.restores_completed,
            cycles_executed=m.cycles_executed,
            active_time=m.time_in_state["active"],
            total_time=t_end,
            energy_total=m.total_energy(),
            energy_overhead=m.overhead_energy(),
        )

    @property
    def availability(self) -> float:
        """Fraction of wall time spent actively computing."""
        if self.total_time <= 0.0:
            return 0.0
        return self.active_time / self.total_time

    @property
    def overhead_fraction(self) -> float:
        """Fraction of consumed energy spent on snapshot/restore."""
        if self.energy_total <= 0.0:
            return 0.0
        return self.energy_overhead / self.energy_total

    def lines(self) -> "list[str]":
        """Human-readable report lines."""
        done = (
            f"completed at t={self.completion_time:.4f} s"
            if self.completed
            else "did not complete"
        )
        return [
            f"workload: {done}",
            f"brownouts: {self.brownouts}",
            f"snapshots: {self.snapshots} (+{self.snapshots_aborted} aborted), "
            f"restores: {self.restores}",
            f"cycles executed: {self.cycles_executed}",
            f"availability: {100.0 * self.availability:.1f}%",
            f"energy: {self.energy_total * 1e6:.1f} uJ "
            f"({100.0 * self.overhead_fraction:.1f}% checkpoint overhead)",
        ]
