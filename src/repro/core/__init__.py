"""The paper's primary contribution: the energy-based taxonomy and the
energy-driven system design flow built around it.

* :mod:`repro.core.taxonomy` — Fig. 2 as an executable classifier.
* :mod:`repro.core.metrics` — expressions (1) and (2) as checks over
  simulation traces, plus run reports.
* :mod:`repro.core.design` — expressions (4) and (5) as design helpers.
* :mod:`repro.core.system` — composition API wiring harvesters, storage,
  conversion and loads into a runnable system.
"""

from repro.core.taxonomy import (
    AdaptationClass,
    StorageClass,
    SystemDescriptor,
    TaxonomyPlacement,
    classify,
    descriptor_from_run,
    exemplars,
)
from repro.core.metrics import (
    RunReport,
    energy_neutral_over,
    expression2_holds,
    first_violation_time,
)
from repro.core.design import (
    crossover_frequency,
    hibernate_threshold,
    minimum_capacitance,
)
from repro.core.system import EnergyDrivenSystem, SystemRunResult

__all__ = [
    "SystemDescriptor",
    "TaxonomyPlacement",
    "StorageClass",
    "AdaptationClass",
    "classify",
    "descriptor_from_run",
    "exemplars",
    "RunReport",
    "energy_neutral_over",
    "expression2_holds",
    "first_violation_time",
    "hibernate_threshold",
    "crossover_frequency",
    "minimum_capacitance",
    "EnergyDrivenSystem",
    "SystemRunResult",
]
