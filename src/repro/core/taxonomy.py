"""The Fig. 2 taxonomy as an executable classifier.

The figure organises systems along two axes:

* the **energy-neutral axis** — systems that fail when expression (2) is
  violated (supply to the load interrupted once storage is exhausted);
* the **transient axis** — systems that keep operating correctly despite
  expression (2) violations;

with the distance from the origin measuring **contained energy storage**,
an arc marking the practical 'Theoretical' minimum (parasitic/decoupling
capacitance only), a second arc separating **task-based** from
**continuous** adaptation, and a shaded **energy-driven** region covering
systems whose design was driven by the energy environment.

Storage is classified by *autonomy*: how long the store could run the load
(storage energy / active power).  That is what makes a desktop PC (joules
of PSU capacitance, but hundreds of watts) sit at the theoretical arc while
a smartphone (a battery buffering a whole day) sits far right — matching
where the paper places them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import TaxonomyError


class AdaptationClass(enum.Enum):
    """How the system accommodates supply variation."""

    NONE = "none"
    TASK_BASED = "task-based"
    CONTINUOUS = "continuous"


class StorageClass(enum.Enum):
    """Storage amount, classified by load autonomy."""

    PARASITIC = "parasitic"       # < ~10 ms of operation: decoupling only
    MINIMAL = "minimal"           # < 1 s: barely more than decoupling
    TASK_SIZED = "task-sized"     # enough for single tasks, < ~1 h
    LARGE = "large"               # hours+ of autonomy (battery-like)


#: Autonomy thresholds (seconds of operation) separating storage classes.
PARASITIC_AUTONOMY = 0.010
MINIMAL_AUTONOMY = 1.0
TASK_AUTONOMY = 3600.0


@dataclass(frozen=True)
class SystemDescriptor:
    """What the classifier needs to know about a system.

    Attributes:
        name: display name.
        storage_energy: usable contained energy storage (J).
        active_power: typical load power while operating (W).
        survives_outage: operates correctly despite expression (2) being
            violated (the transient property).
        task_energy: energy of the system's natural atomic task (J), if it
            has one; separates task-based from continuous adaptation.
        designed_for_harvesting: the energy environment was an input to
            the system's design (not just its power supply).
        power_neutral: modulates consumption to track harvested power.
    """

    name: str
    storage_energy: float
    active_power: float
    survives_outage: bool
    task_energy: Optional[float] = None
    designed_for_harvesting: bool = False
    power_neutral: bool = False

    def autonomy(self) -> float:
        """Seconds the storage could run the active load."""
        if self.active_power <= 0.0:
            raise TaxonomyError(f"{self.name}: active power must be positive")
        return self.storage_energy / self.active_power


@dataclass(frozen=True)
class TaxonomyPlacement:
    """Where a system lands in Fig. 2."""

    name: str
    axis: str  # 'energy-neutral' or 'transient'
    storage_class: StorageClass
    adaptation: AdaptationClass
    energy_driven: bool
    autonomy_seconds: float

    def summary(self) -> str:
        """One-line human-readable placement."""
        driven = "energy-driven" if self.energy_driven else "traditional"
        return (
            f"{self.name}: {self.axis} axis, {self.storage_class.value} storage "
            f"({self.autonomy_seconds:.3g} s autonomy), "
            f"{self.adaptation.value} adaptation, {driven}"
        )


def _storage_class(autonomy: float) -> StorageClass:
    if autonomy < PARASITIC_AUTONOMY:
        return StorageClass.PARASITIC
    if autonomy < MINIMAL_AUTONOMY:
        return StorageClass.MINIMAL
    if autonomy < TASK_AUTONOMY:
        return StorageClass.TASK_SIZED
    return StorageClass.LARGE


def _adaptation(descriptor: SystemDescriptor) -> AdaptationClass:
    if descriptor.power_neutral:
        return AdaptationClass.CONTINUOUS
    if not descriptor.survives_outage and not descriptor.designed_for_harvesting:
        return AdaptationClass.NONE
    if descriptor.task_energy is None:
        return AdaptationClass.CONTINUOUS
    if descriptor.storage_energy >= descriptor.task_energy:
        return AdaptationClass.TASK_BASED
    return AdaptationClass.CONTINUOUS


def classify(descriptor: SystemDescriptor) -> TaxonomyPlacement:
    """Place a system in the Fig. 2 taxonomy.

    Raises:
        TaxonomyError: on nonsensical descriptors (non-positive power,
            negative storage).
    """
    if descriptor.storage_energy < 0.0:
        raise TaxonomyError(f"{descriptor.name}: storage energy must be >= 0")
    autonomy = descriptor.autonomy()
    axis = "transient" if descriptor.survives_outage else "energy-neutral"
    adaptation = _adaptation(descriptor)
    # The shaded Fig. 2 region: systems whose design was driven by the
    # energy environment — all transient and power-neutral systems are,
    # plus anything explicitly designed around harvesting.
    energy_driven = (
        descriptor.designed_for_harvesting
        or descriptor.survives_outage
        or descriptor.power_neutral
    )
    return TaxonomyPlacement(
        name=descriptor.name,
        axis=axis,
        storage_class=_storage_class(autonomy),
        adaptation=adaptation,
        energy_driven=energy_driven,
        autonomy_seconds=autonomy,
    )


def descriptor_from_run(
    name: str,
    platform,
    storage,
    task_energy: Optional[float] = None,
) -> SystemDescriptor:
    """Derive a taxonomy descriptor from a *simulated* system.

    Closes the loop between simulation and classification: run a system,
    then ask the taxonomy where it landed.

    * storage: the rail's storage element (capacity -> storage axis);
    * active power: evaluated from the platform's power model at its boot
      operating point;
    * transient: observed empirically — the system made forward progress
      across at least one brownout, or checkpointed state it later
      restored;
    * power-neutral: the strategy carries a DFS governor.
    """
    metrics = platform.metrics
    point = platform.clock.points[platform.clock.initial_index]
    active_power = platform.power_model.active_power(point.frequency, point.voltage)
    survived = metrics.brownouts > 0 and (
        metrics.restores_completed > 0 or metrics.first_completion_time is not None
    )
    checkpointing = metrics.snapshots_completed > 0 and metrics.restores_completed > 0
    from repro.transient.base import NullStrategy  # local: avoid cycle

    return SystemDescriptor(
        name=name,
        storage_energy=storage.storage_capacity,
        active_power=active_power,
        survives_outage=survived or checkpointing,
        task_energy=task_energy,
        designed_for_harvesting=not isinstance(platform.strategy, NullStrategy),
        power_neutral=getattr(platform.strategy, "governor", None) is not None,
    )


def exemplars() -> List[SystemDescriptor]:
    """The example systems the paper places on Fig. 2 (plus §II.B's).

    Numbers are order-of-magnitude transcriptions: what matters for the
    classification (and the bench that checks it) is which *class* each
    system falls into, not the third significant figure.
    """
    return [
        # Traditional systems (energy-neutral axis, not energy-driven).
        SystemDescriptor(
            name="Desktop PC",
            storage_energy=20.0,          # PSU bulk capacitance
            active_power=120.0,           # ~0.17 s autonomy: theoretical arc
            survives_outage=False,
        ),
        SystemDescriptor(
            name="Smartphone",
            storage_energy=4e4,           # ~11 Wh battery
            active_power=1.0,             # ~11 h autonomy
            survives_outage=False,
        ),
        SystemDescriptor(
            name="Laptop (hibernation)",
            storage_energy=2e5,           # ~55 Wh battery
            active_power=15.0,
            survives_outage=True,         # hibernates before the battery dies
            task_energy=1.0,
        ),
        # Energy-neutral WSN (ref [3]): harvesting-aware but storage-backed.
        SystemDescriptor(
            name="Energy-Neutral WSN",
            storage_energy=800.0,         # supercap/NiMH buffer
            active_power=0.05,
            survives_outage=False,
            designed_for_harvesting=True,
        ),
        # Task-based transient systems (§II.B).
        SystemDescriptor(
            name="WISPCam",
            storage_energy=36e-3,         # 6 mF between 4.1 V and 2.2 V
            active_power=3.7e-3,
            survives_outage=True,
            task_energy=2.4e-3,           # one photo
            designed_for_harvesting=True,
        ),
        SystemDescriptor(
            name="Monjolo",
            storage_energy=1.4e-3,        # 500 uF working range
            active_power=15e-3,
            survives_outage=True,
            task_energy=180e-6,           # one ping
            designed_for_harvesting=True,
        ),
        SystemDescriptor(
            name="Gomez burst scaling",
            storage_energy=200e-6,        # 80 uF working range
            active_power=5e-3,
            survives_outage=True,
            task_energy=40e-6,
            designed_for_harvesting=True,
        ),
        # Continuous-adaptation transient systems.
        SystemDescriptor(
            name="Mementos",
            storage_energy=60e-6,         # tens of uF of capacitance
            active_power=5e-3,
            survives_outage=True,
            task_energy=40e-6,            # one checkpoint-interval 'mini task'
            designed_for_harvesting=True,
        ),
        SystemDescriptor(
            name="Hibernus",
            storage_energy=50e-6,         # decoupling-scale capacitance
            active_power=5e-3,
            survives_outage=True,
            task_energy=20e-3,            # a whole FFT: far above storage
            designed_for_harvesting=True,
        ),
        SystemDescriptor(
            name="QuickRecall",
            storage_energy=20e-6,
            active_power=6.5e-3,
            survives_outage=True,
            task_energy=20e-3,
            designed_for_harvesting=True,
        ),
        SystemDescriptor(
            name="hibernus-PN",
            storage_energy=50e-6,
            active_power=5e-3,
            survives_outage=True,
            task_energy=20e-3,
            designed_for_harvesting=True,
            power_neutral=True,
        ),
        # Power-neutral MPSoC (ref [11]): energy-neutral axis (no transient
        # functionality), small storage, power-neutral.
        SystemDescriptor(
            name="Power-Neutral MPSoC",
            storage_energy=0.5,           # board capacitance
            active_power=6.0,
            survives_outage=False,
            designed_for_harvesting=True,
            power_neutral=True,
        ),
    ]
