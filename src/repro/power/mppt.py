"""Maximum power point tracking.

A fractional open-circuit-voltage tracker: the classic ultra-low-power MPPT
used in harvesting front-ends.  It captures a fraction of the truly
available power, converging toward its steady tracking efficiency with a
first-order lag after the operating point moves.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.spec.registry import register


@register("fractional-voc", kind="mppt")
class FractionalVocMPPT:
    """Fractional-Voc tracker with first-order convergence dynamics.

    Args:
        tracking_efficiency: steady-state fraction of available power
            captured once converged (typ. 0.9-0.98 for fractional-Voc).
        settle_time: time constant (s) of re-convergence after a step
            change in available power.
        disturbance_threshold: relative change in available power treated
            as a disturbance (restarts convergence from ``floor``).
        floor: capture fraction immediately after a disturbance.
    """

    def __init__(
        self,
        tracking_efficiency: float = 0.95,
        settle_time: float = 0.05,
        disturbance_threshold: float = 0.25,
        floor: float = 0.6,
    ):
        if not 0.0 < tracking_efficiency <= 1.0:
            raise ConfigurationError("tracking efficiency must be in (0, 1]")
        if settle_time <= 0.0:
            raise ConfigurationError("settle time must be positive")
        if not 0.0 <= floor <= tracking_efficiency:
            raise ConfigurationError("floor must be in [0, tracking_efficiency]")
        self.tracking_efficiency = tracking_efficiency
        self.settle_time = settle_time
        self.disturbance_threshold = disturbance_threshold
        self.floor = floor
        self._capture = tracking_efficiency
        self._last_power = 0.0

    def captured_power(self, available: float, dt: float) -> float:
        """Power captured from ``available`` watts during a ``dt`` step."""
        if available <= 0.0:
            self._last_power = 0.0
            return 0.0
        if self._last_power > 0.0:
            rel_change = abs(available - self._last_power) / self._last_power
            if rel_change > self.disturbance_threshold:
                self._capture = self.floor
        self._last_power = available
        # First-order approach to the steady tracking efficiency.
        alpha = min(1.0, dt / self.settle_time)
        self._capture += alpha * (self.tracking_efficiency - self._capture)
        return available * self._capture

    def reset(self) -> None:
        """Restore converged state."""
        self._capture = self.tracking_efficiency
        self._last_power = 0.0
