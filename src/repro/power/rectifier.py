"""Rectifiers: AC harvester output -> unidirectional rail current.

Fig. 7 shows a system running directly from a half-wave rectified sine and
Fig. 8 from the half-wave rectified output of a micro wind turbine — the
rectifier is the *only* conversion element in those power-neutral setups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.spec.registry import register


@dataclass(frozen=True)
class Diode:
    """Piecewise-linear diode: forward drop + on-resistance."""

    forward_drop: float = 0.3
    on_resistance: float = 1.0

    def __post_init__(self) -> None:
        if self.forward_drop < 0.0 or self.on_resistance <= 0.0:
            raise ConfigurationError("invalid diode parameters")

    def current(self, v_across: float) -> float:
        """Forward current (A) for a given anode-cathode voltage."""
        if v_across <= self.forward_drop:
            return 0.0
        return (v_across - self.forward_drop) / self.on_resistance


class HalfWaveRectifier:
    """Single-diode half-wave rectifier between source and rail.

    Current flows only when the source's positive half-cycle exceeds the
    rail voltage plus the diode drop; the source resistance limits it.
    """

    def __init__(self, diode: Diode = Diode()):
        self.diode = diode

    def current_into_rail(
        self, v_source: float, v_rail: float, source_resistance: float
    ) -> float:
        """Instantaneous charging current (A), >= 0."""
        if source_resistance <= 0.0:
            raise ConfigurationError("source resistance must be positive")
        headroom = v_source - v_rail - self.diode.forward_drop
        if headroom <= 0.0:
            return 0.0
        return headroom / (source_resistance + self.diode.on_resistance)

    def chunk_params(self, source_resistance: float):
        """Fast-kernel linearisation: ``(drop, r_total, take_abs)``.

        Exact-type instances only — a subclass with different current
        physics must provide its own parameters or fall back to per-step.
        """
        if type(self) is not HalfWaveRectifier:
            return None
        return (
            self.diode.forward_drop,
            source_resistance + self.diode.on_resistance,
            False,
        )


class FullWaveRectifier:
    """Diode bridge: conducts on both half-cycles, two diode drops."""

    def __init__(self, diode: Diode = Diode()):
        self.diode = diode

    def current_into_rail(
        self, v_source: float, v_rail: float, source_resistance: float
    ) -> float:
        """Instantaneous charging current (A), >= 0."""
        if source_resistance <= 0.0:
            raise ConfigurationError("source resistance must be positive")
        headroom = abs(v_source) - v_rail - 2.0 * self.diode.forward_drop
        if headroom <= 0.0:
            return 0.0
        return headroom / (source_resistance + 2.0 * self.diode.on_resistance)

    def chunk_params(self, source_resistance: float):
        """Fast-kernel linearisation: ``(drop, r_total, take_abs)``."""
        if type(self) is not FullWaveRectifier:
            return None
        return (
            2.0 * self.diode.forward_drop,
            source_resistance + 2.0 * self.diode.on_resistance,
            True,
        )


# Registry factories take the diode parameters flat, so rectifiers are
# fully describable from a JSON spec.
@register("half-wave", kind="rectifier")
def half_wave_rectifier(
    forward_drop: float = 0.3, on_resistance: float = 1.0
) -> HalfWaveRectifier:
    """A :class:`HalfWaveRectifier` with flat diode parameters."""
    return HalfWaveRectifier(Diode(forward_drop, on_resistance))


@register("full-wave", kind="rectifier")
def full_wave_rectifier(
    forward_drop: float = 0.3, on_resistance: float = 1.0
) -> FullWaveRectifier:
    """A :class:`FullWaveRectifier` with flat diode parameters."""
    return FullWaveRectifier(Diode(forward_drop, on_resistance))
