"""DC-DC conversion stages.

The energy-neutral architecture (Fig. 3) needs *two* of these — one between
harvester and store, one between store and load — and the paper's argument
is precisely that each stage adds cost, quiescent drain and complexity.
Modelling the quiescent overhead is therefore essential: it is what makes
zero-storage power-neutral designs competitive.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.spec.registry import register


class ConversionStage:
    """Base conversion stage: output power for a given input power/voltage."""

    #: Quiescent power drawn whenever the stage is powered (W).
    quiescent_power: float = 0.0

    def output_power(self, p_in: float, v_in: float) -> float:
        """Power delivered downstream for ``p_in`` watts at ``v_in`` volts."""
        raise NotImplementedError

    def efficiency(self, p_in: float, v_in: float) -> float:
        """Net efficiency including quiescent drain (0 when starved)."""
        if p_in <= 0.0:
            return 0.0
        return max(0.0, self.output_power(p_in, v_in)) / p_in


@register("ideal", kind="converter")
class IdealConverter(ConversionStage):
    """Lossless stage — the theoretical reference point."""

    def output_power(self, p_in: float, v_in: float) -> float:
        return max(0.0, p_in)


@register("linear-regulator", kind="converter")
class LinearRegulator(ConversionStage):
    """LDO: efficiency is the voltage ratio, plus a quiescent drain.

    Args:
        v_out: regulated output voltage.
        dropout: minimum headroom; below ``v_out + dropout`` the regulator
            passes through with the input voltage (efficiency 1 in-band).
        quiescent_power: ground-pin drain while operating.
    """

    def __init__(self, v_out: float, dropout: float = 0.15, quiescent_power: float = 3e-6):
        if v_out <= 0.0 or dropout < 0.0 or quiescent_power < 0.0:
            raise ConfigurationError("invalid regulator parameters")
        self.v_out = v_out
        self.dropout = dropout
        self.quiescent_power = quiescent_power

    def output_power(self, p_in: float, v_in: float) -> float:
        if p_in <= 0.0 or v_in <= 0.0:
            return 0.0
        usable = p_in - self.quiescent_power
        if usable <= 0.0:
            return 0.0
        if v_in <= self.v_out + self.dropout:
            return usable
        return usable * self.v_out / v_in


@register("boost", kind="converter")
class BoostConverter(ConversionStage):
    """Switching boost converter with a load-dependent efficiency curve.

    Efficiency follows the classic switching-converter shape: poor at light
    load (fixed switching losses dominate), flat near ``peak_efficiency``
    at and above ``p_knee``:

        eta(p) = peak_efficiency * p / (p + p_knee * (1 - peak_efficiency))

    Args:
        peak_efficiency: asymptotic heavy-load efficiency in (0, 1].
        p_knee: input power at which efficiency reaches roughly half its
            asymptote (W).
        v_in_min: cold-start threshold; below this input voltage the
            converter cannot run at all.
        quiescent_power: controller drain while running.
    """

    def __init__(
        self,
        peak_efficiency: float = 0.85,
        p_knee: float = 50e-6,
        v_in_min: float = 0.3,
        quiescent_power: float = 1e-6,
    ):
        if not 0.0 < peak_efficiency <= 1.0:
            raise ConfigurationError("peak efficiency must be in (0, 1]")
        if p_knee < 0.0 or v_in_min < 0.0 or quiescent_power < 0.0:
            raise ConfigurationError("invalid converter parameters")
        self.peak_efficiency = peak_efficiency
        self.p_knee = p_knee
        self.v_in_min = v_in_min
        self.quiescent_power = quiescent_power

    def output_power(self, p_in: float, v_in: float) -> float:
        if p_in <= 0.0 or v_in < self.v_in_min:
            return 0.0
        usable = p_in - self.quiescent_power
        if usable <= 0.0:
            return 0.0
        eta = (
            self.peak_efficiency
            * usable
            / (usable + self.p_knee * (1.0 - self.peak_efficiency))
        )
        return usable * eta
