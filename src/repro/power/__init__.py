"""Power conversion and the supply rail.

The paper contrasts two architectures:

* Fig. 3 (energy-neutral): supply -> conversion -> storage -> conversion ->
  load.  Modelled by chaining a :class:`ConversionStage` into a
  :class:`HarvesterInjector` feeding a large store, with a regulator stage
  on the load side.
* Fig. 4 (power-neutral): harvester -> (minimal) conversion -> harvesting-
  aware load, no storage beyond decoupling.  Modelled by a
  :class:`RectifiedInjector` feeding the decoupling capacitance directly.

:class:`SupplyRail` is the single simulated electrical node: storage element
plus current injectors plus loads, integrated once per engine step.
"""

from repro.power.rectifier import Diode, FullWaveRectifier, HalfWaveRectifier
from repro.power.converter import (
    BoostConverter,
    ConversionStage,
    IdealConverter,
    LinearRegulator,
)
from repro.power.mppt import FractionalVocMPPT
from repro.power.rail import (
    HarvesterInjector,
    RailLoad,
    RectifiedInjector,
    ResistiveLoad,
    SupplyRail,
)

__all__ = [
    "Diode",
    "HalfWaveRectifier",
    "FullWaveRectifier",
    "ConversionStage",
    "IdealConverter",
    "LinearRegulator",
    "BoostConverter",
    "FractionalVocMPPT",
    "SupplyRail",
    "RailLoad",
    "HarvesterInjector",
    "RectifiedInjector",
    "ResistiveLoad",
]
