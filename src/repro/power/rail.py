"""The supply rail: the single electrical node every system shares.

One :class:`SupplyRail` owns a storage element, any number of *injectors*
(conditioned harvester outputs pushing charge/energy in) and any number of
*loads* (anything consuming energy — an MCU wrapper, a radio, a resistor).
Each engine step it: injects, leaks, then lets every load advance and draw.

Loads see the rail voltage *at the start of the step*; with the timesteps
used throughout (tens of microseconds to milliseconds against RC constants
of milliseconds to hours) the first-order error is negligible, and the
explicit scheme keeps every component O(1) per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester, VoltageHarvester
from repro.power.converter import ConversionStage
from repro.power.mppt import FractionalVocMPPT
from repro.power.rectifier import HalfWaveRectifier
from repro.sim.engine import Component
from repro.spec.registry import register
from repro.storage.base import StorageElement


class RailLoad:
    """Interface for anything that consumes energy from the rail."""

    def advance(self, t: float, dt: float, v_rail: float) -> float:
        """Advance internal state across ``dt`` and return joules consumed."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial state (default: no-op)."""


@register("resistive", kind="load")
class ResistiveLoad(RailLoad):
    """A plain resistor to ground — the simplest possible load."""

    def __init__(self, resistance: float):
        if resistance <= 0.0:
            raise ConfigurationError(f"resistance must be positive, got {resistance!r}")
        self.resistance = resistance

    def advance(self, t: float, dt: float, v_rail: float) -> float:
        return v_rail * v_rail / self.resistance * dt


class Injector:
    """Interface for conditioned sources pushing energy into the rail."""

    def inject(self, t: float, dt: float, v_rail: float, storage: StorageElement) -> float:
        """Push charge/energy into ``storage``; return joules delivered."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial state (default: no-op)."""


class HarvesterInjector(Injector):
    """Power-domain harvester -> (MPPT) -> (converter) -> storage.

    The Fig. 3 harvester-side chain.  Energy-conserving: the joules pushed
    into storage equal converter output power times dt (minus whatever the
    storage shunts at its overvoltage clamp).
    """

    def __init__(
        self,
        harvester: PowerHarvester,
        converter: Optional[ConversionStage] = None,
        mppt: Optional[FractionalVocMPPT] = None,
    ):
        self.harvester = harvester
        self.converter = converter
        self.mppt = mppt

    def inject(self, t: float, dt: float, v_rail: float, storage: StorageElement) -> float:
        available = self.harvester.power(t)
        if self.mppt is not None:
            available = self.mppt.captured_power(available, dt)
        if self.converter is not None:
            available = self.converter.output_power(available, v_rail if v_rail > 0 else 1.0)
        if available <= 0.0:
            return 0.0
        return storage.add_energy(available * dt)

    def reset(self) -> None:
        self.harvester.reset()
        if self.mppt is not None:
            self.mppt.reset()


class RectifiedInjector(Injector):
    """Voltage-domain harvester -> rectifier -> storage (Figs. 4, 7, 8).

    Charge-based: the rectifier computes the instantaneous charging current
    from the source's open-circuit voltage against the present rail voltage,
    and that charge is pushed into the storage element.  This is what makes
    the rail trace exhibit the charge/discharge sawtooth of Fig. 7.
    """

    def __init__(
        self,
        harvester: VoltageHarvester,
        rectifier: Optional[HalfWaveRectifier] = None,
    ):
        self.harvester = harvester
        self.rectifier = rectifier or HalfWaveRectifier()

    def inject(self, t: float, dt: float, v_rail: float, storage: StorageElement) -> float:
        v_oc = self.harvester.open_circuit_voltage(t)
        current = self.rectifier.current_into_rail(
            v_oc, v_rail, self.harvester.source_resistance
        )
        if current <= 0.0:
            return 0.0
        before = storage.stored_energy
        storage.add_charge(current * dt)
        return storage.stored_energy - before

    def reset(self) -> None:
        self.harvester.reset()


@dataclass
class RailStats:
    """Cumulative energy bookkeeping for a rail."""

    harvested: float = 0.0
    consumed: float = 0.0
    leaked: float = 0.0
    starved: float = 0.0
    demands: List[float] = field(default_factory=list)


class SupplyRail(Component):
    """The simulated electrical node (see module docstring)."""

    def __init__(self, storage: StorageElement):
        self.storage = storage
        self._injectors: List[Injector] = []
        self._loads: List[RailLoad] = []
        self.stats = RailStats()

    @property
    def voltage(self) -> float:
        """Present rail voltage — what a supervisor's ADC would read."""
        return self.storage.voltage

    def attach_injector(self, injector: Injector) -> Injector:
        """Register a conditioned source; returns it for chaining."""
        self._injectors.append(injector)
        return injector

    def attach_load(self, load: RailLoad) -> RailLoad:
        """Register a load; returns it for chaining."""
        self._loads.append(load)
        return load

    def step(self, t: float, dt: float) -> None:
        v = self.storage.voltage
        for injector in self._injectors:
            self.stats.harvested += injector.inject(t, dt, v, self.storage)
        self.stats.leaked += self.storage.step_leakage(dt)
        for load in self._loads:
            demand = load.advance(t, dt, self.storage.voltage)
            if demand < 0.0:
                raise ConfigurationError("loads must consume non-negative energy")
            delivered = self.storage.draw_energy(demand)
            self.stats.consumed += delivered
            self.stats.starved += demand - delivered

    def reset(self) -> None:
        self.storage.reset()
        for injector in self._injectors:
            injector.reset()
        for load in self._loads:
            load.reset()
        self.stats = RailStats()
