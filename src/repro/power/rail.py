"""The supply rail: the single electrical node every system shares.

One :class:`SupplyRail` owns a storage element, any number of *injectors*
(conditioned harvester outputs pushing charge/energy in) and any number of
*loads* (anything consuming energy — an MCU wrapper, a radio, a resistor).
Each engine step it: injects, leaks, then lets every load advance and draw.

Loads see the rail voltage *at the start of the step*; with the timesteps
used throughout (tens of microseconds to milliseconds against RC constants
of milliseconds to hours) the first-order error is negligible, and the
explicit scheme keeps every component O(1) per step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester, VoltageHarvester
from repro.power.converter import ConversionStage
from repro.power.mppt import FractionalVocMPPT
from repro.power.rectifier import HalfWaveRectifier
from repro.sim.engine import Component
from repro.sim.kernel import (
    LoadProfile,
    PowerSourcePlan,
    SourcePlanMemo,
    VoltageSourcePlan,
    chunk_times,
)
from repro.results.metrics import register_metric
from repro.spec.registry import register
from repro.storage.base import StorageElement


class RailLoad:
    """Interface for anything that consumes energy from the rail."""

    def advance(self, t: float, dt: float, v_rail: float) -> float:
        """Advance internal state across ``dt`` and return joules consumed."""
        raise NotImplementedError

    def load_profile(
        self, t: float, dt: float, v_rail: float
    ) -> Optional[LoadProfile]:
        """Fast-kernel descriptor of the load's present regime, or None.

        Returning a :class:`~repro.sim.kernel.LoadProfile` asserts that,
        until the rail voltage crosses one of the profile's voltage
        boundaries or ``max_steps`` steps elapse, :meth:`advance` would
        demand exactly the profile's per-step energy with no other side
        effects (any deferred side effects being settled by the
        profile's ``commit``).  None keeps the load on per-step
        execution.
        """
        return None

    def reset(self) -> None:
        """Restore initial state (default: no-op)."""


@register("resistive", kind="load")
class ResistiveLoad(RailLoad):
    """A plain resistor to ground — the simplest possible load."""

    def __init__(self, resistance: float):
        if resistance <= 0.0:
            raise ConfigurationError(f"resistance must be positive, got {resistance!r}")
        self.resistance = resistance

    def advance(self, t: float, dt: float, v_rail: float) -> float:
        return v_rail * v_rail / self.resistance * dt

    def load_profile(
        self, t: float, dt: float, v_rail: float
    ) -> Optional[LoadProfile]:
        if type(self) is not ResistiveLoad:
            return None
        return LoadProfile(resistance=self.resistance)


class Injector:
    """Interface for conditioned sources pushing energy into the rail."""

    def inject(self, t: float, dt: float, v_rail: float, storage: StorageElement) -> float:
        """Push charge/energy into ``storage``; return joules delivered."""
        raise NotImplementedError

    def chunk_plan(self, t0: float, dt: float, n: int):
        """Fast-kernel source plan covering ``n`` steps from ``t0``, or None."""
        return None

    def reset(self) -> None:
        """Restore initial state (default: no-op)."""


class HarvesterInjector(Injector):
    """Power-domain harvester -> (MPPT) -> (converter) -> storage.

    The Fig. 3 harvester-side chain.  Energy-conserving: the joules pushed
    into storage equal converter output power times dt (minus whatever the
    storage shunts at its overvoltage clamp).
    """

    def __init__(
        self,
        harvester: PowerHarvester,
        converter: Optional[ConversionStage] = None,
        mppt: Optional[FractionalVocMPPT] = None,
    ):
        self.harvester = harvester
        self.converter = converter
        self.mppt = mppt
        self._memo = SourcePlanMemo()

    def inject(self, t: float, dt: float, v_rail: float, storage: StorageElement) -> float:
        available = self.harvester.power(t)
        if self.mppt is not None:
            available = self.mppt.captured_power(available, dt)
        if self.converter is not None:
            available = self.converter.output_power(available, v_rail if v_rail > 0 else 1.0)
        if available <= 0.0:
            return 0.0
        return storage.add_energy(available * dt)

    def chunk_plan(self, t0: float, dt: float, n: int):
        if type(self).inject is not HarvesterInjector.inject:
            return None  # subclass changed the injection physics
        if self.mppt is not None:
            return None  # the tracker's convergence lag is per-step state
        if not self.harvester.chunk_safe():
            return None  # stateful sampling: discarded chunks would desync it
        step0 = SourcePlanMemo.grid_step(t0, dt)
        values = (
            self._memo.get(step0, dt, n) if step0 is not None else None
        )
        if values is None:
            values = self.harvester.power_array(chunk_times(t0, dt, n)).tolist()
            if step0 is not None:
                self._memo.put(step0, dt, values)
        return PowerSourcePlan(values=values, converter=self.converter)

    def reset(self) -> None:
        self.harvester.reset()
        self._memo.clear()
        if self.mppt is not None:
            self.mppt.reset()


class RectifiedInjector(Injector):
    """Voltage-domain harvester -> rectifier -> storage (Figs. 4, 7, 8).

    Charge-based: the rectifier computes the instantaneous charging current
    from the source's open-circuit voltage against the present rail voltage,
    and that charge is pushed into the storage element.  This is what makes
    the rail trace exhibit the charge/discharge sawtooth of Fig. 7.
    """

    def __init__(
        self,
        harvester: VoltageHarvester,
        rectifier: Optional[HalfWaveRectifier] = None,
    ):
        self.harvester = harvester
        self.rectifier = rectifier or HalfWaveRectifier()
        self._memo = SourcePlanMemo()

    def inject(self, t: float, dt: float, v_rail: float, storage: StorageElement) -> float:
        v_oc = self.harvester.open_circuit_voltage(t)
        current = self.rectifier.current_into_rail(
            v_oc, v_rail, self.harvester.source_resistance
        )
        if current <= 0.0:
            return 0.0
        before = storage.stored_energy
        storage.add_charge(current * dt)
        return storage.stored_energy - before

    def chunk_plan(self, t0: float, dt: float, n: int):
        if type(self).inject is not RectifiedInjector.inject:
            return None  # subclass changed the injection physics
        if not self.harvester.chunk_safe():
            return None  # stateful sampling: discarded chunks would desync it
        chunk_params = getattr(self.rectifier, "chunk_params", None)
        params = (
            chunk_params(self.harvester.source_resistance)
            if chunk_params is not None
            else None
        )
        if params is None:
            return None
        drop, r_total, take_abs = params
        step0 = SourcePlanMemo.grid_step(t0, dt)
        values = (
            self._memo.get(step0, dt, n) if step0 is not None else None
        )
        if values is None:
            voc = self.harvester.open_circuit_voltage_array(
                chunk_times(t0, dt, n)
            )
            if take_abs:
                voc = np.abs(voc)
            values = voc.tolist()
            if step0 is not None:
                self._memo.put(step0, dt, values)
        return VoltageSourcePlan(values=values, drop=drop, r_total=r_total)

    def reset(self) -> None:
        self.harvester.reset()
        self._memo.clear()


@dataclass
class RailStats:
    """Cumulative energy bookkeeping for a rail."""

    harvested: float = 0.0
    consumed: float = 0.0
    leaked: float = 0.0
    starved: float = 0.0
    demands: List[float] = field(default_factory=list)


class SupplyRail(Component):
    """The simulated electrical node (see module docstring).

    Under the fast kernel the rail is the chunked component: when the
    storage publishes inline-able physics, every load declares a
    constant/resistive profile and every injector a precomputed source
    plan, :meth:`step_chunk` advances whole stretches of steps in a tight
    scalar loop with per-step arithmetic identical to :meth:`step`.  The
    chunk ends (and per-step execution resumes) at the first step whose
    voltage crosses a load's declared event boundary.
    """

    def __init__(self, storage: StorageElement):
        self.storage = storage
        self._injectors: List[Injector] = []
        self._loads: List[RailLoad] = []
        self.stats = RailStats()
        self._chunk_vcc: List[float] = []
        #: Cached CapacitorPhysics (False until first step_chunk attempt,
        #: then the descriptor or None for non-chunkable storage).
        self._physics = False

    @property
    def voltage(self) -> float:
        """Present rail voltage — what a supervisor's ADC would read."""
        return self.storage.voltage

    def attach_injector(self, injector: Injector) -> Injector:
        """Register a conditioned source; returns it for chaining."""
        self._injectors.append(injector)
        return injector

    def attach_load(self, load: RailLoad) -> RailLoad:
        """Register a load; returns it for chaining."""
        self._loads.append(load)
        return load

    def step(self, t: float, dt: float) -> None:
        v = self.storage.voltage
        for injector in self._injectors:
            self.stats.harvested += injector.inject(t, dt, v, self.storage)
        self.stats.leaked += self.storage.step_leakage(dt)
        for load in self._loads:
            demand = load.advance(t, dt, self.storage.voltage)
            if demand < 0.0:
                raise ConfigurationError("loads must consume non-negative energy")
            delivered = self.storage.draw_energy(demand)
            self.stats.consumed += delivered
            self.stats.starved += demand - delivered

    # -- fast kernel -----------------------------------------------------

    def last_chunk_voltages(self) -> np.ndarray:
        """Per-step rail voltages of the most recent chunk (probe feed)."""
        return np.asarray(self._chunk_vcc, dtype=float)

    def step_chunk(self, t0: float, dt: float, n: int) -> int:
        """Advance up to ``n`` steps in bulk; 0 when the regime can't chunk."""
        # The physics descriptor is invariant per storage object: resolve
        # it once (False = not yet asked, None = storage can't chunk).
        physics = self._physics
        if physics is False:
            physics = self._physics = self.storage.chunk_physics()
        if physics is None:
            return 0
        v = physics.read_voltage()
        profiles = []
        for load in self._loads:
            profile = load.load_profile(t0, dt, v)
            if profile is None:
                return 0
            # A time-based event boundary (snapshot completing, workload
            # finishing) bounds the whole chunk: the event step itself
            # must execute through the reference path.
            if profile.max_steps is not None:
                if profile.max_steps <= 0:
                    return 0
                n = min(n, profile.max_steps)
            profiles.append(profile)
        plans = []
        for injector in self._injectors:
            plan = injector.chunk_plan(t0, dt, n)
            if plan is None:
                return 0
            plans.append(plan)
        leak = physics.leak_factor(dt)
        if (
            len(plans) == 1
            and isinstance(plans[0], VoltageSourcePlan)
            and len(profiles) == 1
            and profiles[0].resistance is None
            and profiles[0].current == 0.0
            and leak is None
            and physics.draw_overhead == 1.0
        ):
            taken, energies = self._chunk_loop_simple(
                physics, plans[0], profiles[0], v, dt, n
            )
        else:
            taken, energies = self._chunk_loop(
                physics, plans, profiles, v, leak, dt, n
            )
        for profile, energy in zip(profiles, energies):
            if profile.commit is not None:
                profile.commit(taken, dt, energy)
        return taken

    def _chunk_loop_simple(self, physics, plan, profile, v, dt, n):
        """One rectified source, one constant load, ideal capacitor.

        The hot path for the paper's scenarios; same arithmetic as
        :meth:`step` with everything in locals.
        """
        C = physics.capacitance
        half_c = 0.5 * C
        v_max = physics.v_max
        sqrt = math.sqrt
        values = plan.values
        drop = plan.drop
        r_total = plan.r_total
        e_dem = profile.power * dt + profile.energy
        v_rise = profile.v_rising
        v_fall = profile.v_falling
        stats = self.stats
        harvested = stats.harvested
        consumed = stats.consumed
        starved = stats.starved
        vcc: List[float] = []
        append = vcc.append
        i = 0
        while i < n:
            head = values[i] - v - drop
            if head > 0.0:
                before = half_c * v * v
                vn = v + (head / r_total * dt) / C
                if vn > v_max:
                    vn = v_max
                dh = half_c * vn * vn - before
            else:
                vn = v
                dh = 0.0
            if vn >= v_rise or vn < v_fall:
                break  # event boundary: the step reruns via the reference path
            avail = half_c * vn * vn
            if e_dem >= avail:
                vn = 0.0
                delivered = avail
            else:
                vn = sqrt(2.0 * (avail - e_dem) / C)
                delivered = e_dem
            harvested += dh
            consumed += delivered
            starved += e_dem - delivered
            v = vn
            append(v)
            i += 1
        physics.write_voltage(v)
        stats.harvested = harvested
        stats.consumed = consumed
        stats.starved = starved
        self._chunk_vcc = vcc
        return i, [i * e_dem]

    def _chunk_loop(self, physics, plans, profiles, v, leak, dt, n):
        """General chunk loop: any mix of sources, loads, leakage, ESR."""
        C = physics.capacitance
        half_c = 0.5 * C
        v_max = physics.v_max
        e_cap = half_c * v_max * v_max
        overhead = physics.draw_overhead
        sqrt = math.sqrt
        sources = [
            (
                isinstance(plan, VoltageSourcePlan),
                plan.values,
                getattr(plan, "drop", 0.0),
                getattr(plan, "r_total", 1.0),
                getattr(plan, "converter", None),
            )
            for plan in plans
        ]
        # Per-load demand terms, precombined where constant: e_const is
        # the voltage-independent joules per step (power*dt + energy, in
        # that order — matching the reference implementations' `power *
        # dt` and `active + extra` arithmetic exactly).
        loads = [
            (profile.resistance, profile.power * dt + profile.energy,
             profile.current, profile.current_gain,
             profile.v_rising, profile.v_falling)
            for profile in profiles
        ]
        n_loads = len(loads)
        load_range = range(n_loads)
        # Committed per-load demand totals, plus a per-step scratch list:
        # a step that hits an event boundary is discarded wholesale, so
        # demands fold into the totals only when the full step commits.
        esums = [0.0] * n_loads
        edems = [0.0] * n_loads
        stats = self.stats
        harvested = stats.harvested
        leaked = stats.leaked
        consumed = stats.consumed
        starved = stats.starved
        vcc: List[float] = []
        append = vcc.append
        i = 0
        while i < n:
            v0 = v
            tv = v0
            h_t = harvested
            # Injection: every injector sees the start-of-step voltage,
            # charge lands on the running (clamped) voltage — as step().
            for is_voltage, values, drop, r_total, converter in sources:
                if is_voltage:
                    head = values[i] - v0 - drop
                    if head > 0.0:
                        before = half_c * tv * tv
                        vn = tv + (head / r_total * dt) / C
                        tv = v_max if vn > v_max else vn
                        h_t += half_c * tv * tv - before
                else:
                    p = values[i]
                    if converter is not None:
                        p = converter.output_power(p, v0 if v0 > 0 else 1.0)
                    if p > 0.0:
                        e = half_c * tv * tv
                        e_new = e + p * dt
                        if e_new > e_cap:
                            accepted = e_cap - e
                            tv = v_max
                            h_t += accepted if accepted > 0.0 else 0.0
                        else:
                            tv = sqrt(2.0 * e_new / C)
                            h_t += p * dt
            le_t = leaked
            if leak is not None and tv != 0.0:
                before = half_c * tv * tv
                tv *= leak
                le_t += before - half_c * tv * tv
            co_t = consumed
            st_t = starved
            event = False
            for j in load_range:
                resistance, e_const, current, gain, v_rise, v_fall = loads[j]
                if tv >= v_rise or tv < v_fall:
                    event = True
                    break
                if resistance is not None:
                    e_dem = tv * tv / resistance * dt + e_const
                elif current != 0.0:
                    e_dem = ((current * tv) * gain) * dt + e_const
                else:
                    e_dem = e_const
                demand = e_dem * overhead
                avail = half_c * tv * tv
                if demand >= avail:
                    tv = 0.0
                    delivered = avail / overhead
                else:
                    tv = sqrt(2.0 * (avail - demand) / C)
                    delivered = demand / overhead
                co_t += delivered
                st_t += e_dem - delivered
                edems[j] = e_dem
            if event:
                break  # discard this step; it reruns via the reference path
            v = tv
            harvested = h_t
            leaked = le_t
            consumed = co_t
            starved = st_t
            for j in load_range:
                esums[j] += edems[j]
            append(v)
            i += 1
        physics.write_voltage(v)
        stats.harvested = harvested
        stats.leaked = leaked
        stats.consumed = consumed
        stats.starved = starved
        self._chunk_vcc = vcc
        return i, esums

    def reset(self) -> None:
        self.storage.reset()
        for injector in self._injectors:
            injector.reset()
        for load in self._loads:
            load.reset()
        self.stats = RailStats()
        self._chunk_vcc = []


# ---------------------------------------------------------------------------
# Results-pipeline contribution (see repro.results.metrics)
# ---------------------------------------------------------------------------


@register_metric(
    "rail",
    columns=(
        "energy_harvested",
        "energy_consumed",
        "energy_leaked",
        "energy_starved",
    ),
    order=30,
)
def _rail_metric_columns(run, spec):
    """The rail's cumulative energy ledger (RailStats)."""
    stats = run.rail.stats
    return {
        "energy_harvested": stats.harvested,
        "energy_consumed": stats.consumed,
        "energy_leaked": stats.leaked,
        "energy_starved": stats.starved,
    }
