"""repro.spec: the declarative scenario layer.

Three pieces (see DESIGN.md):

* :mod:`repro.spec.registry` — the string-keyed component registry every
  component family registers itself into via ``@register(name, kind=...)``.
* :mod:`repro.spec.specs` — frozen spec dataclasses (`HarvesterSpec`,
  `StorageSpec`, `PlatformSpec`, `ScenarioSpec`) that round-trip through
  dicts/JSON and ``build()`` into a runnable ``EnergyDrivenSystem``.
* :mod:`repro.spec.runner` — ``SweepRunner``: parameter-grid expansion and
  parallel execution collecting per-point summaries.

Everything but the registry is imported lazily (PEP 562): component
modules import ``repro.spec.registry`` at class-definition time, and a
lazy package init keeps that import acyclic.
"""

from repro.spec.registry import (
    available,
    create,
    ensure_catalog,
    kinds,
    register,
    resolve,
)

_LAZY = {
    "HarvesterSpec": "repro.spec.specs",
    "StorageSpec": "repro.spec.specs",
    "LoadSpec": "repro.spec.specs",
    "PlatformSpec": "repro.spec.specs",
    "ScenarioSpec": "repro.spec.specs",
    "expand_grid": "repro.spec.specs",
    "SweepRunner": "repro.spec.runner",
    "SweepResult": "repro.spec.runner",
    "PointResult": "repro.spec.runner",
    "run_scenario_payload": "repro.spec.runner",
    "preset": "repro.spec.presets",
    "preset_names": "repro.spec.presets",
    "fig7_spec": "repro.spec.presets",
    "crossover_spec": "repro.spec.presets",
    "quickstart_spec": "repro.spec.presets",
}

__all__ = [
    "register",
    "resolve",
    "create",
    "available",
    "kinds",
    "ensure_catalog",
    *_LAZY,
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.spec' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
