"""Parallel, resumable execution of scenario-spec parameter grids.

:class:`SweepRunner` expands a grid over a base :class:`ScenarioSpec`,
runs every point — in parallel across processes by default, since frozen
plain-data specs pickle for free — and collects one typed
:class:`~repro.results.run_result.RunResult` per point into a tabular
:class:`SweepResult`.

Results flow through the unified pipeline (:mod:`repro.results`): the
summary columns are whatever the metric-extractor registry contributes,
not a hard-coded list, and pointing the runner at a persistent
:class:`~repro.results.store.ResultStore` makes sweeps *resumable* — a
re-run skips every grid point whose spec hash the store already holds,
so an interrupted sweep recomputes only the missing points, and shards
computed on separate machines merge by hash.

The workers (:func:`run_point_payload` / :func:`run_scenario_payload`)
are module-level functions so they pickle under every
``multiprocessing`` start method; they take and return plain dicts,
keeping the inter-process traffic tiny regardless of how many probe
samples a run records.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SpecError
from repro.results.metrics import empty_metrics, result_columns
from repro.results.run_result import MAX_TRACE_SAMPLES, RunResult, spec_hash
from repro.results.store import ResultStore
from repro.spec.specs import ScenarioSpec, expand_grid


def __getattr__(name: str):
    # Back-compat: these used to be hand-maintained module constants and
    # drifted apart; both now derive from the metric-extractor registry.
    if name == "RESULT_COLUMNS":
        return result_columns()
    if name == "_EMPTY_SUMMARY":
        return empty_metrics()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_scenario_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: build, run and summarise one bare scenario.

    Takes/returns plain dicts so it is picklable and cheap to ship.
    Framework errors (an infeasible grid point, e.g. a capacitance too
    small for its strategy's Eq. (4) threshold) come back as the
    summary's ``error`` field instead of killing the whole sweep.
    """
    return run_point_payload({"spec": payload})["metrics"]


def run_point_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: one grid point in, one result record out.

    ``payload`` is ``{"spec": <ScenarioSpec dict>, "overrides": {...},
    "traces": [probe names], "max_trace_samples": int}`` (all but
    ``spec`` optional); the return value is a
    :meth:`RunResult.to_record` dict.
    """
    overrides = dict(payload.get("overrides", {}))
    try:
        spec = ScenarioSpec.from_dict(payload["spec"])
    except Exception as error:
        return RunResult.failed(
            f"{type(error).__name__}: {error}",
            spec_hash=spec_hash(payload["spec"]),
            overrides=overrides,
        ).to_record()
    try:
        system = spec.build()
        run = system.run(spec.duration, decimate=spec.decimate)
        result = RunResult.from_system_run(
            run,
            spec,
            overrides=overrides,
            capture_traces=tuple(payload.get("traces", ())),
            max_trace_samples=payload.get(
                "max_trace_samples", MAX_TRACE_SAMPLES
            ),
        )
    except Exception as error:  # one bad point must not kill the sweep
        result = RunResult.failed(
            f"{type(error).__name__}: {error}",
            spec_hash=spec_hash(spec),
            name=spec.name,
            overrides=overrides,
            spec=spec,
        )
    return result.to_record()


#: Back-compat alias: a sweep point and a standalone run share one type.
PointResult = RunResult


@dataclass(frozen=True)
class BatchProgress:
    """One observability event: how a batch of evaluations was satisfied.

    Emitted by :meth:`SweepRunner.run` (once — a sweep is one batch) and
    by :class:`repro.explore.driver.ExplorationDriver` (once per
    optimizer batch), so long runs stay legible: every event says how
    many points were actually computed, how many came out of the result
    store for free, and how many pinned error rows.

    Attributes:
        label: the producing sweep/exploration (the base scenario name).
        batch: 1-based batch index within the run.
        computed: points executed by a worker in this batch.
        cached: points satisfied from the result store in this batch.
        errors: points in this batch whose row carries an error.
        total: cumulative points satisfied so far across the run.
    """

    label: str
    batch: int
    computed: int
    cached: int
    errors: int
    total: int

    def describe(self) -> str:
        """The canonical one-line rendering of this event."""
        return (
            f"[{self.label}] batch {self.batch}: "
            f"{self.computed} computed, {self.cached} cached, "
            f"{self.errors} error(s); {self.total} total"
        )


#: The progress-hook signature accepted by runners and drivers.
ProgressHook = Callable[[BatchProgress], None]


def log_progress(event: BatchProgress) -> None:
    """A ready-made progress hook: log through :mod:`logging`.

    Attach with ``runner.run(progress=log_progress)`` (or the driver
    equivalent) and configure the ``repro.progress`` logger to taste.
    """
    import logging

    logging.getLogger("repro.progress").info("%s", event.describe())

#: Error prefix marking a *worker* crash (pool/pickling/OOM) rather than
#: a scenario that deterministically failed.  Crash rows are transient:
#: they are never persisted to a store and resume recomputes them.
WORKER_FAILURE_PREFIX = "worker failed: "


def _is_worker_crash(result: Optional[RunResult]) -> bool:
    return (
        result is not None
        and result.error is not None
        and result.error.startswith(WORKER_FAILURE_PREFIX)
    )


def execute_payloads(
    payloads: List[Dict[str, Any]],
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run worker payloads; failures become error records, never raises.

    The shared execution core of :class:`SweepRunner` and
    :class:`repro.explore.driver.ExplorationDriver`: each payload goes
    through :func:`run_point_payload` — across a process pool by default,
    in-process when ``parallel=False`` or the sandbox lacks
    multiprocessing primitives.  A worker raising (as opposed to a
    scenario failing *inside* the worker, which :func:`run_point_payload`
    already converts) is an infrastructure failure; it is pinned to its
    payload as a :data:`WORKER_FAILURE_PREFIX` error record so the rest
    of the batch still lands.
    """
    worker = sys.modules[__name__].run_point_payload

    def fallback(payload: Dict[str, Any], error: BaseException) -> Dict[str, Any]:
        return RunResult.failed(
            f"{WORKER_FAILURE_PREFIX}{type(error).__name__}: {error}",
            spec_hash=spec_hash(payload["spec"]),
            name=payload["spec"].get("name", "scenario"),
            overrides=payload.get("overrides", {}),
        ).to_record()

    if parallel and len(payloads) > 1:
        workers = max_workers or min(len(payloads), os.cpu_count() or 1)
        workers = max(1, min(workers, len(payloads)))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(worker, p) for p in payloads]
                records = []
                for payload, future in zip(payloads, futures):
                    error = future.exception()
                    records.append(
                        future.result() if error is None
                        else fallback(payload, error)
                    )
                return records
        except (OSError, PermissionError):
            # Environments without working multiprocessing primitives
            # (restricted sandboxes) still get correct, serial results.
            pass
    records = []
    for payload in payloads:
        try:
            records.append(worker(payload))
        except Exception as error:
            records.append(fallback(payload, error))
    return records


@dataclass(frozen=True)
class SweepResult:
    """All grid points of one sweep, in grid order.

    ``computed``/``cached`` split how each point was satisfied when the
    sweep ran against a persistent store (both zero-cost views of the
    same list otherwise).
    """

    base_name: str
    grid_keys: List[str]
    points: List[RunResult] = field(default_factory=list)
    computed: int = 0
    cached: int = 0

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def columns(self) -> List[str]:
        return list(self.grid_keys) + result_columns()

    def rows(self) -> List[List[Any]]:
        """One row per point: override values then the metric columns."""
        return [
            [point.overrides.get(key) for key in self.grid_keys]
            + [point.metrics.get(column) for column in result_columns()]
            for point in self.points
        ]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Each point as one flat record (overrides merged with metrics)."""
        return [dict(p.overrides, **p.metrics) for p in self.points]

    def best(self, metric: str, minimize: bool = True) -> RunResult:
        """The point optimising ``metric``, ignoring points lacking it.

        Error rows, non-finite values and sub-full-fidelity rows are
        skipped with a warning, matching :meth:`ResultStore.best`.
        """
        from repro.results.store import rankable_results

        candidates = rankable_results(
            self.points, (metric,), describe=f"best({metric!r})",
            noun="point",
        )
        if not candidates:
            raise SpecError(f"no sweep point recorded metric {metric!r}")
        return (min if minimize else max)(candidates, key=lambda p: p[metric])

    def format(self, floatfmt: str = "{:.4g}") -> str:
        """Render the sweep as an aligned text table, one row per point."""
        from repro.analysis.report import format_table

        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, bool):
                return "yes" if value else "no"
            if isinstance(value, float):
                return floatfmt.format(value)
            return str(value)

        rows = [[fmt(cell) for cell in row] for row in self.rows()]
        return format_table(self.columns(), rows)


class SweepRunner:
    """Expand a parameter grid over a base spec and run every point.

    Args:
        base: the scenario to vary.
        grid: mapping of override key (see
            :meth:`ScenarioSpec.with_override`) to the values to sweep.
        max_workers: process-pool width; defaults to
            ``min(len(points), cpu_count)``.

    Use ``run(parallel=False)`` for in-process serial execution (same
    results, deterministic by construction — handy under debuggers and in
    tests asserting serial/parallel equivalence).  Pass ``store=`` (a
    :class:`ResultStore`) to persist results as they arrive, and
    ``resume=True`` to skip points the store already holds.
    """

    def __init__(
        self,
        base: ScenarioSpec,
        grid: Mapping[str, Sequence[Any]],
        max_workers: Optional[int] = None,
    ):
        self.base = base
        self.grid = dict(grid)
        self.max_workers = max_workers
        self.overrides = expand_grid(self.grid)
        # Expand eagerly: a bad override key fails here, not mid-pool.
        self.specs = [base.with_overrides(point) for point in self.overrides]
        self.hashes = [spec_hash(spec) for spec in self.specs]

    def __len__(self) -> int:
        return len(self.specs)

    def _payloads(
        self, indices: Sequence[int], capture_traces: Sequence[str]
    ) -> List[Dict[str, Any]]:
        return [
            {
                "spec": self.specs[i].to_dict(),
                "overrides": self.overrides[i],
                "traces": list(capture_traces),
            }
            for i in indices
        ]

    def _execute(
        self, payloads: List[Dict[str, Any]], parallel: bool
    ) -> List[Dict[str, Any]]:
        """Run payloads through the shared :func:`execute_payloads` core."""
        return execute_payloads(
            payloads, parallel=parallel, max_workers=self.max_workers
        )

    def run(
        self,
        parallel: bool = True,
        store: Optional[ResultStore] = None,
        resume: bool = False,
        capture_traces: Sequence[str] = (),
        progress: Optional[ProgressHook] = None,
    ) -> SweepResult:
        """Execute the grid; rows come back in grid order.

        Args:
            parallel: fan points out across a process pool.
            store: persist/dedupe results through this store.
            resume: skip points whose spec hash ``store`` already holds
                (requires ``store``); only the gap is recomputed.
            capture_traces: probe names whose (decimated) traces each
                computed point should carry.
            progress: optional hook receiving one :class:`BatchProgress`
                event (a sweep is one batch) once the grid is satisfied.
        """
        if resume and store is None:
            raise SpecError("resume=True needs a result store to resume from")
        pending = [
            i for i in range(len(self.specs))
            # A stored worker-crash row (older stores may hold them) is
            # not a satisfied point: resume retries it.
            if not (resume and self.hashes[i] in store
                    and not _is_worker_crash(store.get(self.hashes[i])))
        ]
        records = self._execute(self._payloads(pending, capture_traces), parallel)
        computed: Dict[int, RunResult] = {}
        for i, record in zip(pending, records):
            result = RunResult.from_record(record).with_context(
                index=i, spec=self.specs[i]
            )
            computed[i] = result
            # Deterministic outcomes (successes *and* infeasible-scenario
            # error rows) are cacheable; worker crashes are transient and
            # must stay recomputable on the next resume.
            if store is not None and not _is_worker_crash(result):
                store.add(result, overwrite=True)
        points = []
        for i in range(len(self.specs)):
            if i in computed:
                points.append(computed[i])
            else:
                cached = store.get(self.hashes[i])
                points.append(cached.with_context(index=i, spec=self.specs[i]))
        if progress is not None:
            progress(BatchProgress(
                label=self.base.name,
                batch=1,
                computed=len(computed),
                cached=len(points) - len(computed),
                errors=sum(1 for p in points if p.error is not None),
                total=len(points),
            ))
        return SweepResult(
            base_name=self.base.name,
            grid_keys=list(self.grid),
            points=points,
            computed=len(computed),
            cached=len(points) - len(computed),
        )
