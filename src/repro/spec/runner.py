"""Parallel, resumable execution of scenario-spec parameter grids.

:class:`SweepRunner` expands a grid over a base :class:`ScenarioSpec`,
runs every point — in parallel across processes by default, since frozen
plain-data specs pickle for free — and collects one typed
:class:`~repro.results.run_result.RunResult` per point into a tabular
:class:`SweepResult`.

Results flow through the unified pipeline (:mod:`repro.results`): the
summary columns are whatever the metric-extractor registry contributes,
not a hard-coded list, and pointing the runner at a persistent
:class:`~repro.results.store.ResultStore` makes sweeps *resumable* — a
re-run skips every grid point whose spec hash the store already holds,
so an interrupted sweep recomputes only the missing points, and shards
computed on separate machines merge by hash.

The workers (:func:`run_point_payload` / :func:`run_scenario_payload`)
are module-level functions so they pickle under every
``multiprocessing`` start method; they take and return plain dicts,
keeping the inter-process traffic tiny regardless of how many probe
samples a run records.

Execution goes through a *warm-worker* pool (:class:`WarmPool`): worker
processes initialise once from a shared base spec, tasks ship only
override dicts (not full pickled spec payloads), and submission is
chunked so a large grid costs a handful of round-trips instead of one
per point.  The pool object survives across batches — an exploration
driver reuses the same warm workers for every optimizer round.
"""

from __future__ import annotations

import atexit
import math
import os
import random
import sys
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import degrade, faults, obs
from repro.errors import SpecError
from repro.results.metrics import empty_metrics, result_columns
from repro.results.run_result import (
    MAX_TRACE_SAMPLES,
    QUARANTINE_PREFIX,
    WORKER_FAILURE_PREFIX,
    RunResult,
    spec_hash,
)
from repro.results.store import ResultStore
from repro.spec.specs import ScenarioSpec, expand_grid


def __getattr__(name: str):
    # Back-compat: these used to be hand-maintained module constants and
    # drifted apart; both now derive from the metric-extractor registry.
    if name == "RESULT_COLUMNS":
        return result_columns()
    if name == "_EMPTY_SUMMARY":
        return empty_metrics()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_scenario_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: build, run and summarise one bare scenario.

    Takes/returns plain dicts so it is picklable and cheap to ship.
    Framework errors (an infeasible grid point, e.g. a capacitance too
    small for its strategy's Eq. (4) threshold) come back as the
    summary's ``error`` field instead of killing the whole sweep.
    """
    return run_point_payload({"spec": payload})["metrics"]


#: The shared base spec a warm worker resolves override-only tasks
#: against: parsed once per worker process (or per serial batch), not
#: once per task.  ``None`` until :func:`_install_shared_base` runs.
_SHARED_BASE: Optional[ScenarioSpec] = None
#: Its raw dict form (for failure keys), kept in lockstep.
_SHARED_BASE_DICT: Optional[Dict[str, Any]] = None


def _install_shared_base(base_dict: Optional[Dict[str, Any]]) -> None:
    """Worker initializer: parse the shared base spec exactly once."""
    global _SHARED_BASE, _SHARED_BASE_DICT
    _SHARED_BASE_DICT = base_dict
    _SHARED_BASE = (
        ScenarioSpec.from_dict(base_dict) if base_dict is not None else None
    )


def _task_failure_key(
    payload: Dict[str, Any], base_spec: Optional[Dict[str, Any]]
) -> str:
    """The one error-row key for a task that never resolved to a spec.

    Shared by the in-worker resolution-failure path and the
    worker-crash fallback so both produce the same key for the same
    payload — a stored error row under one scheme must be findable by
    the other.
    """
    if "spec" in payload:
        return spec_hash(payload["spec"])
    from repro.results.run_result import content_hash

    return content_hash({
        "base": spec_hash(base_spec) if base_spec is not None else None,
        "overrides": payload.get("spec_overrides"),
    })


def _payload_spec(payload: Dict[str, Any]) -> ScenarioSpec:
    """Resolve a task payload to its runnable spec.

    A payload either carries a full ``"spec"`` dict (self-contained
    tasks) or a ``"spec_overrides"`` dict applied to the worker's shared
    base spec (warm-worker tasks).  Both resolutions are deterministic,
    so the resulting spec — and therefore its hash, the results
    pipeline's cache key — is identical to the one the submitting
    process computed.
    """
    if "spec" in payload:
        return ScenarioSpec.from_dict(payload["spec"])
    if _SHARED_BASE is None:
        raise SpecError(
            "override-only task but no shared base spec was installed"
        )
    return _SHARED_BASE.with_overrides(payload["spec_overrides"])


def _run_batch_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker body for a whole-batch task: M grid points in one payload.

    Members resolve against the shared base spec exactly like
    override-only point tasks, then run together through the batched
    SoA kernel (:func:`repro.sim.batch.run_specs_batched`) — identical
    spec hashes, metrics and traces per member, one worker round-trip
    for the whole batch.  Returns ``{"batch": [records...], "stats":
    {...}}`` with one record per member, in member order.
    """
    from repro.sim.batch import BatchStats, run_specs_batched

    member_tasks = payload["spec_overrides_batch"]
    overrides_list = payload.get("overrides_batch") or member_tasks
    records: List[Optional[Dict[str, Any]]] = [None] * len(member_tasks)
    specs: List[ScenarioSpec] = []
    spec_overrides: List[Dict[str, Any]] = []
    positions: List[int] = []
    for index, task in enumerate(member_tasks):
        try:
            spec = _payload_spec({"spec_overrides": task})
        except Exception as error:
            records[index] = RunResult.failed(
                f"{type(error).__name__}: {error}",
                spec_hash=_task_failure_key(
                    {"spec_overrides": task}, _SHARED_BASE_DICT
                ),
                overrides=dict(overrides_list[index]),
            ).to_record()
            continue
        specs.append(spec)
        spec_overrides.append(dict(overrides_list[index]))
        positions.append(index)
    stats = BatchStats()
    results = run_specs_batched(
        specs,
        overrides_list=spec_overrides,
        capture_traces=tuple(payload.get("traces", ())),
        max_trace_samples=payload.get(
            "max_trace_samples", MAX_TRACE_SAMPLES
        ),
        stats=stats,
    )
    for position, result in zip(positions, results):
        records[position] = result.to_record()
    return {"batch": records, "stats": stats.to_dict()}


def run_point_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: one grid point in, one result record out.

    ``payload`` is ``{"spec": <ScenarioSpec dict>, "overrides": {...},
    "traces": [probe names], "max_trace_samples": int}`` — or, for
    warm-worker tasks, ``"spec_overrides"`` (applied to the shared base
    spec) in place of ``"spec"``; the return value is a
    :meth:`RunResult.to_record` dict.

    A *batch* payload (``"spec_overrides_batch"``: a list of override
    dicts) runs all its members through the batched SoA kernel in one
    task and returns ``{"batch": [records...], "stats": {...}}``
    instead (see :func:`_run_batch_payload`).
    """
    if faults.is_armed():
        # Chaos harness: an injected crash raises out of the worker (the
        # pool pins the chunk as retryable crash rows), an injected hang
        # sleeps until the supervisor's task deadline reaps this worker.
        fault_key = faults.payload_key(payload)
        faults.inject("worker.crash", fault_key, "injected worker crash")
        faults.maybe_hang(fault_key)
    if "spec_overrides_batch" in payload:
        return _run_batch_payload(payload)
    overrides = dict(payload.get("overrides", {}))
    try:
        spec = _payload_spec(payload)
    except Exception as error:
        return RunResult.failed(
            f"{type(error).__name__}: {error}",
            spec_hash=_task_failure_key(payload, _SHARED_BASE_DICT),
            overrides=overrides,
        ).to_record()
    try:
        system = spec.build()
        run = system.run(spec.duration, decimate=spec.decimate)
        result = RunResult.from_system_run(
            run,
            spec,
            overrides=overrides,
            capture_traces=tuple(payload.get("traces", ())),
            max_trace_samples=payload.get(
                "max_trace_samples", MAX_TRACE_SAMPLES
            ),
        )
    except Exception as error:  # one bad point must not kill the sweep
        result = RunResult.failed(
            f"{type(error).__name__}: {error}",
            spec_hash=spec_hash(spec),
            name=spec.name,
            overrides=overrides,
            spec=spec,
        )
    return result.to_record()


#: Back-compat alias: a sweep point and a standalone run share one type.
PointResult = RunResult


@dataclass(frozen=True)
class BatchProgress:
    """One observability event: how a batch of evaluations was satisfied.

    Emitted by :meth:`SweepRunner.run` (once — a sweep is one batch) and
    by :class:`repro.explore.driver.ExplorationDriver` (once per
    optimizer batch), so long runs stay legible: every event says how
    many points were actually computed, how many came out of the result
    store for free, and how many pinned error rows.

    Attributes:
        label: the producing sweep/exploration (the base scenario name).
        batch: 1-based batch index within the run.
        computed: points executed by a worker in this batch.
        cached: points satisfied from the result store in this batch.
        errors: points in this batch whose row carries an error.
        total: cumulative points satisfied so far across the run.
        members: points that ran through the batched SoA kernel (None
            when batching was off for this batch).
        passes: vectorized passes the batched kernel executed.
        advanced: member-steps advanced inside vectorized passes.
        settled: members settled scalar-side at event boundaries.
        diverged: members that degraded to the per-scenario kernel.
    """

    label: str
    batch: int
    computed: int
    cached: int
    errors: int
    total: int
    members: Optional[int] = None
    passes: Optional[int] = None
    advanced: Optional[int] = None
    settled: Optional[int] = None
    diverged: Optional[int] = None

    def describe(self) -> str:
        """The canonical one-line rendering of this event."""
        line = (
            f"[{self.label}] batch {self.batch}: "
            f"{self.computed} computed, {self.cached} cached, "
            f"{self.errors} error(s); {self.total} total"
        )
        if self.members is not None:
            line += (
                f" [batched: {self.members} members, "
                f"{self.passes or 0} passes, "
                f"{self.advanced or 0} advanced, "
                f"{self.settled or 0} settled, "
                f"{self.diverged or 0} diverged]"
            )
        return line


#: The progress-hook signature accepted by runners and drivers.
ProgressHook = Callable[[BatchProgress], None]


def log_progress(event: BatchProgress) -> None:
    """A ready-made progress hook: log through :mod:`logging`.

    Attach with ``runner.run(progress=log_progress)`` (or the driver
    equivalent) and configure the ``repro.progress`` logger to taste.
    """
    import logging

    logging.getLogger("repro.progress").info("%s", event.describe())

# WORKER_FAILURE_PREFIX / QUARANTINE_PREFIX live in
# repro.results.run_result (the results layer classifies rows too) and
# are re-exported here, their historical home.


def _is_worker_crash(result: Optional[RunResult]) -> bool:
    return (
        result is not None
        and result.error is not None
        and result.error.startswith(WORKER_FAILURE_PREFIX)
    )


def is_quarantined(result: Optional[RunResult]) -> bool:
    """True for a row pinned by poison-payload quarantine.

    Quarantine rows are deterministic outcomes: persisted, treated as
    satisfied on resume, and skipped by best/pareto ranking like any
    other error row.
    """
    return (
        result is not None
        and result.error is not None
        and result.error.startswith(QUARANTINE_PREFIX)
    )


@dataclass(frozen=True)
class SupervisionPolicy:
    """How :meth:`WarmPool.run` supervises one batch of payloads.

    Attributes:
        deadline_s: per-*attempt* monotonic deadline.  A chunk whose
            worker has not finished by the deadline is pinned with
            retryable timeout rows and the pool's workers are reaped
            (killed and respawned lazily) — a hung worker costs one
            deadline window, never the whole sweep.  None = wait
            forever (the historical behaviour).
        max_retries: how many times a payload whose worker *crashed*
            (or timed out) is re-attempted.  Retries re-ship the
            payload with a bumped ``fault_attempt`` counter, so
            injected faults re-roll per attempt.  A payload still
            crashing after ``max_retries`` retries is **quarantined**:
            its crash row becomes a persistent
            :data:`QUARANTINE_PREFIX` error row carrying the attempt
            count.  0 = no retries, crash rows stay transient
            (the historical behaviour).
        backoff_base_s / backoff_cap_s / jitter: exponential backoff
            between attempts — ``min(cap, base * 2**(attempt-1))``
            stretched by up to ``jitter`` fraction of random jitter
            (thundering-herd protection; timing only, never results).
    """

    deadline_s: Optional[float] = None
    max_retries: int = 0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.25

    @property
    def supervised(self) -> bool:
        """True when this policy changes anything about execution."""
        return self.deadline_s is not None or self.max_retries > 0

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based)."""
        delay = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** max(0, attempt - 1)),
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * random.random()
        return delay


def _record_is_crash(record: Any) -> bool:
    """Crash test for a raw worker record (dict form, pre-RunResult).

    A batch record counts as crashed when *any* member carries the
    crash prefix — the whole payload is the retry unit.
    """
    if not isinstance(record, dict):
        return False
    if "batch" in record:
        return any(_record_is_crash(member) for member in record["batch"])
    error = (record.get("metrics") or {}).get("error")
    return isinstance(error, str) and error.startswith(WORKER_FAILURE_PREFIX)


def _quarantine_record(record: Any, attempts: int) -> Any:
    """Convert a crash record into a persistent quarantine error row.

    The crash prefix is replaced (so the row stops being transient) and
    the attempt history rides in the message and an ``attempts`` metric
    column.  Batch records quarantine only their crashed members.
    """
    if isinstance(record, dict) and "batch" in record:
        out = dict(record)
        out["batch"] = [
            _quarantine_record(member, attempts)
            if _record_is_crash(member) else member
            for member in record["batch"]
        ]
        return out
    out = dict(record)
    metrics = dict(out.get("metrics") or {})
    last = metrics.get("error") or ""
    if last.startswith(WORKER_FAILURE_PREFIX):
        last = last[len(WORKER_FAILURE_PREFIX):]
    metrics["error"] = (
        f"{QUARANTINE_PREFIX}{attempts} attempt(s) crashed; last: {last}"
    )
    metrics["attempts"] = attempts
    out["metrics"] = metrics
    return out


def _worker_failure(
    payload: Dict[str, Any], error: BaseException, base_spec=None
) -> Dict[str, Any]:
    """The error record pinned to a payload whose worker crashed.

    A batch payload comes back as ``{"batch": [...]}`` with one crash
    record per member — keyed exactly like the member's own
    resolution-failure path, so either scheme finds the other's rows.
    """
    if "spec_overrides_batch" in payload:
        name = (base_spec or {}).get("name", "scenario")
        member_tasks = payload["spec_overrides_batch"]
        overrides_list = payload.get("overrides_batch") or member_tasks
        return {
            "batch": [
                RunResult.failed(
                    f"{WORKER_FAILURE_PREFIX}{type(error).__name__}: {error}",
                    spec_hash=_task_failure_key(
                        {"spec_overrides": task}, base_spec
                    ),
                    name=name,
                    overrides=dict(overrides),
                ).to_record()
                for task, overrides in zip(member_tasks, overrides_list)
            ]
        }
    if "spec" in payload:
        name = payload["spec"].get("name", "scenario")
    else:
        name = (base_spec or {}).get("name", "scenario")
    return RunResult.failed(
        f"{WORKER_FAILURE_PREFIX}{type(error).__name__}: {error}",
        spec_hash=_task_failure_key(payload, base_spec),
        name=name,
        overrides=payload.get("overrides", {}),
    ).to_record()


def _run_payload_batch(
    worker: Callable[[Dict[str, Any]], Dict[str, Any]],
    base_dict: Optional[Dict[str, Any]],
    tasks: List[Dict[str, Any]],
    obs_opts: Optional[Dict[str, Any]] = None,
    fault_state: Optional[Dict[str, Any]] = None,
) -> Any:
    """Pool-side batch body: one IPC round-trip for many tasks.

    ``base_dict`` is the shared base spec the chunk's override-only
    tasks resolve against; it is installed only when it differs from
    what the worker already holds, so a pool serving one sweep parses
    its base exactly once per worker while a *session-wide* pool (the
    ``repro serve`` job executor) can switch bases between jobs at the
    cost of one re-parse per worker per switch.

    ``obs_opts`` (set by :meth:`WarmPool.run` when instrumentation is
    enabled) switches the return value from a bare record list to an
    ``{"records": [...], "obs": {...}}`` envelope carrying what this
    chunk produced in *this worker process* — the counter/histogram
    delta accumulated while the chunk ran, the spans it recorded (when
    the parent is tracing), the chunk's wall time, and the wall-clock
    instant work started (the parent derives queue wait from it).  The
    shipment rides the existing result pickle; the parent folds it into
    its own registry/trace buffer so ``/metrics`` and ``--trace-out``
    reflect kernel activity wherever it physically ran.
    """
    if base_dict is not None and base_dict != _SHARED_BASE_DICT:
        _install_shared_base(base_dict)
    # The chunk carries the submitter's fault configuration: workers
    # spawned before the faults were armed programmatically (or after
    # they were cleared) sync to the parent on their next chunk.
    if fault_state is not None or faults.is_armed():
        faults.install(fault_state)

    def one(task: Dict[str, Any]) -> Dict[str, Any]:
        # Mirror the serial path: an exception escaping the worker body
        # (which already converts scenario failures) pins a retryable
        # crash record for *this* task, not the whole chunk.  Real
        # process death still surfaces as BrokenExecutor on the future.
        try:
            return worker(task)
        except Exception as error:
            return _worker_failure(task, error, _SHARED_BASE_DICT)

    if not obs_opts:
        return [one(task) for task in tasks]
    start_wall = time.time()
    start_mono = time.monotonic()
    before = obs.registry.values()
    trace = bool(obs_opts.get("trace"))
    if trace:
        obs.enable_tracing()
    try:
        records = [one(task) for task in tasks]
    finally:
        if trace:
            spans = obs.drain()
            obs.disable_tracing()
        else:
            spans = []
    return {
        "records": records,
        "obs": {
            "pid": os.getpid(),
            "tasks": len(tasks),
            "start_wall": start_wall,
            "wall_s": time.monotonic() - start_mono,
            "metrics": obs.registry.delta(before),
            "spans": spans,
        },
    }


#: Submission chunks per worker: small enough for load balancing across
#: unevenly sized points, large enough that IPC stays amortised.
_CHUNKS_PER_WORKER = 4

#: Minimum detected CPU cores for pool speedup to be *enforced* rather
#: than recorded-only.  The canonical copy — the perf gate
#: (``benchmarks/perf/perf_sweep.py``) and the service ``/metrics``
#: pool-status report both read it from here, so CI and a running
#: service describe the same policy.
POOL_GATE_MIN_CPUS = 2


def pool_gate_status(cpus: Optional[int] = None) -> Dict[str, Any]:
    """How the pool-vs-serial perf gate applies on this host.

    Returns ``{"cpus", "min_cpus", "enforced"}``: with fewer than
    :data:`POOL_GATE_MIN_CPUS` detected cores the pool speedup floor is
    recorded but not enforced (a single-core runner cannot demonstrate
    parallel speedup).  Surfaced in the service ``/metrics`` payload so
    the gate's posture is visible outside CI job summaries.
    """
    detected = cpus if cpus is not None else (os.cpu_count() or 1)
    return {
        "cpus": detected,
        "min_cpus": POOL_GATE_MIN_CPUS,
        "enforced": detected >= POOL_GATE_MIN_CPUS,
    }


#: Every WarmPool not yet closed.  A weak set: a pool that is simply
#: garbage-collected drops out on its own; the set exists so process
#: teardown (atexit) and termination signals can close *live* pools —
#: long sweeps and ``repro serve`` must never leak worker processes.
_LIVE_POOLS: "weakref.WeakSet[WarmPool]" = weakref.WeakSet()

#: Callbacks to run before pools are reaped on shutdown (registered by
#: long-running callers, e.g. the service marking in-flight jobs
#: interrupted).  Run in registration order.
_SHUTDOWN_HOOKS: List[Callable[[], None]] = []


def register_shutdown_hook(hook: Callable[[], None]) -> Callable[[], None]:
    """Run ``hook`` before worker pools are closed at process shutdown.

    Returns the hook so callers can :func:`unregister_shutdown_hook` it.
    """
    _SHUTDOWN_HOOKS.append(hook)
    return hook


def unregister_shutdown_hook(hook: Callable[[], None]) -> None:
    """Remove a previously registered shutdown hook (idempotent)."""
    while hook in _SHUTDOWN_HOOKS:
        _SHUTDOWN_HOOKS.remove(hook)


def shutdown_all_pools() -> None:
    """Run the shutdown hooks, then close every live :class:`WarmPool`.

    Idempotent and safe to call from ``atexit`` or a signal handler:
    hooks that raise are swallowed (shutdown must make progress), and a
    pool already closed is a no-op.
    """
    hooks, _SHUTDOWN_HOOKS[:] = list(_SHUTDOWN_HOOKS), []
    for hook in hooks:
        try:
            hook()
        except Exception:
            pass
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


#: atexit covers normal interpreter exit; install_signal_handlers()
#: (called by long-running entry points like ``repro serve``) extends
#: the same cleanup to SIGTERM/SIGINT delivery.
atexit.register(shutdown_all_pools)


def install_signal_handlers(signals: Optional[Sequence[int]] = None) -> bool:
    """Route SIGTERM/SIGINT through :func:`shutdown_all_pools`.

    The handler runs the shutdown hooks, closes every live pool, then
    chains to the previously installed handler (so an application's own
    SIGINT behaviour — ``KeyboardInterrupt`` — is preserved; for the
    default SIGTERM disposition it exits with the conventional
    ``128 + signum``).  Returns False when handlers cannot be installed
    (not the main thread); pool cleanup then still happens via atexit.
    """
    import signal as signal_module

    if signals is None:
        signals = (signal_module.SIGTERM, signal_module.SIGINT)
    if threading.current_thread() is not threading.main_thread():
        return False
    for signum in signals:
        previous = signal_module.getsignal(signum)

        def _handler(num, frame, _previous=previous):
            shutdown_all_pools()
            if callable(_previous):
                _previous(num, frame)
            elif num == signal_module.SIGINT:
                raise KeyboardInterrupt
            else:
                raise SystemExit(128 + num)

        try:
            signal_module.signal(signum, _handler)
        except (ValueError, OSError):
            return False
    return True


class WarmPool:
    """A persistent warm-worker process pool for spec payloads.

    Workers fork/spawn once — importing the framework and parsing the
    shared ``base_spec`` in the initializer — and then serve any number
    of :meth:`run` batches.  Tasks referencing the shared base ship only
    their override dicts; submission is chunked
    (:data:`_CHUNKS_PER_WORKER` chunks per worker per batch) so an
    N-point grid costs a handful of pickled messages rather than N.

    The pool is lazy (created on the first :meth:`run`) and degrades
    gracefully: when process pools are unavailable (restricted
    sandboxes) or a batch has a single task, it runs in-process with
    identical results.  Use as a context manager, or call
    :meth:`close` when done.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        base_spec: Optional[Dict[str, Any]] = None,
        policy: Optional[SupervisionPolicy] = None,
    ):
        self.base_spec = base_spec
        self.max_workers = max_workers or (os.cpu_count() or 1)
        #: Default supervision for every :meth:`run` (per-call policies
        #: override).  None = unsupervised, the historical behaviour.
        self.policy = policy
        self._pool: Optional[ProcessPoolExecutor] = None
        self._broken = False
        # Track from birth so shutdown_all_pools() reaps pools whose
        # worker processes spawn later (lazily, on the first run()).
        _LIVE_POOLS.add(self)

    # -- lifecycle -------------------------------------------------------

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool is None and not self._broken:
            _LIVE_POOLS.add(self)  # a closed pool can be re-driven
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_install_shared_base,
                    initargs=(self.base_spec,),
                )
            except (OSError, PermissionError):
                # Environments without working multiprocessing
                # primitives still get correct, serial results.
                self._broken = True
        return self._pool

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        _LIVE_POOLS.discard(self)

    def _reap_workers(self) -> int:
        """Kill every worker process and drop the executor.

        The hung-worker escape hatch: a worker stuck past its task
        deadline cannot be interrupted cooperatively, so the whole
        worker set is terminated (SIGTERM, then SIGKILL for any
        survivor) and the executor discarded — the next :meth:`run`
        respawns fresh workers through the pool initializer.  Returns
        the number of processes reaped.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return 0
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - pre-3.9 signature
            pool.shutdown(wait=False)
        for process in processes:
            try:
                process.join(0.2)
                if process.is_alive():
                    process.kill()
            except Exception:
                pass
        if processes:
            obs.counter("repro_pool_workers_reaped_total").inc(
                len(processes)
            )
            obs.instant("pool.reap", workers=len(processes))
        return len(processes)

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -------------------------------------------------------

    @staticmethod
    def _absorb_chunk(result: Any, submit_wall: float) -> List[Dict[str, Any]]:
        """Unwrap one chunk result, folding its obs shipment into us.

        A chunk run with ``obs_opts`` comes back as an ``{"records",
        "obs"}`` envelope (see :func:`_run_payload_batch`); a bare list
        means instrumentation was off at submit time.  Worker counter/
        histogram deltas merge only when they were produced by a
        *different* process — a shipment stamped with our own pid would
        double-count increments the in-process path already recorded.
        """
        if not (isinstance(result, dict) and "records" in result):
            return result
        shipment = result.get("obs") or {}
        if shipment.get("pid") != os.getpid():
            obs.registry.merge_delta(shipment.get("metrics") or {})
        if shipment.get("spans"):
            obs.absorb(shipment["spans"])
        start_wall = shipment.get("start_wall")
        if start_wall is not None:
            obs.histogram("repro_pool_chunk_wait_seconds").observe(
                max(0.0, start_wall - submit_wall)
            )
        if shipment.get("wall_s") is not None:
            obs.histogram("repro_pool_worker_busy_seconds").observe(
                shipment["wall_s"]
            )
        return result["records"]

    def _run_serial(
        self,
        payloads: List[Dict[str, Any]],
        base_spec: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        worker = sys.modules[__name__].run_point_payload
        global _SHARED_BASE, _SHARED_BASE_DICT
        saved = (_SHARED_BASE, _SHARED_BASE_DICT)
        _install_shared_base(
            base_spec if base_spec is not None else self.base_spec
        )
        # In-process execution: kernel instrumentation lands directly in
        # this process's registry/trace buffer — no shipment envelope.
        obs.counter("repro_pool_tasks_total", mode="serial").inc(
            len(payloads)
        )
        try:
            with obs.span("pool.serial", tasks=len(payloads)):
                records = []
                for payload in payloads:
                    # In-process a running payload cannot be reaped;
                    # the deadline bounds how much *further* work
                    # starts once the budget is spent.
                    if deadline is not None and time.monotonic() > deadline:
                        records.append(_worker_failure(
                            payload,
                            TimeoutError("task deadline exceeded"),
                            _SHARED_BASE_DICT,
                        ))
                        continue
                    try:
                        records.append(worker(payload))
                    except Exception as error:
                        records.append(
                            _worker_failure(payload, error, _SHARED_BASE_DICT)
                        )
                return records
        finally:
            _SHARED_BASE, _SHARED_BASE_DICT = saved

    def run(
        self,
        payloads: List[Dict[str, Any]],
        base_spec: Optional[Dict[str, Any]] = None,
        policy: Optional[SupervisionPolicy] = None,
        serial: bool = False,
    ) -> List[Dict[str, Any]]:
        """Run one batch; failures become error records, never raises.

        A worker raising (as opposed to a scenario failing *inside* the
        worker, which :func:`run_point_payload` already converts) is an
        infrastructure failure; it is pinned to every payload of its
        submission chunk as a :data:`WORKER_FAILURE_PREFIX` error record
        so the rest of the batch still lands.

        ``base_spec`` overrides the pool's own base spec for this batch:
        override-only payloads resolve against it instead.  A persistent
        pool serving many scenarios (the ``repro serve`` executor) ships
        the active base with each chunk; workers re-parse only when it
        actually changes.

        ``policy`` (default: the pool's own) supervises the batch: each
        attempt gets a per-attempt deadline (hung workers are reaped
        at expiry), crashed payloads are retried with exponential
        backoff up to ``max_retries`` times, and payloads still
        crashing after that are quarantined as persistent error rows.
        ``serial=True`` runs attempts in-process (supervision minus
        reaping) — used by ``execute_payloads(parallel=False)``.
        """
        batch_base = base_spec if base_spec is not None else self.base_spec
        policy = policy if policy is not None else self.policy
        if serial:
            def attempt_fn(tasks, deadline):
                return self._run_serial(
                    tasks, base_spec=batch_base, deadline=deadline
                )
        else:
            def attempt_fn(tasks, deadline):
                return self._run_pool_once(tasks, batch_base, deadline)
        if policy is None or not policy.supervised:
            return attempt_fn(payloads, None)
        return self._supervise(payloads, policy, attempt_fn)

    def _supervise(
        self,
        payloads: List[Dict[str, Any]],
        policy: SupervisionPolicy,
        attempt_fn: Callable[
            [List[Dict[str, Any]], Optional[float]], List[Dict[str, Any]]
        ],
    ) -> List[Dict[str, Any]]:
        """The retry/quarantine loop around per-attempt execution.

        Attempt 0 runs every payload; each later attempt re-runs only
        the payloads whose previous record was a crash (worker death or
        deadline timeout), shipping them with a bumped
        ``fault_attempt`` counter so injected faults re-roll.  Results
        are position-stable: retried payloads overwrite their own slot.
        """
        final: List[Any] = [None] * len(payloads)
        indices = list(range(len(payloads)))
        current = list(payloads)
        attempt = 0
        while True:
            deadline = (
                time.monotonic() + policy.deadline_s
                if policy.deadline_s is not None else None
            )
            for position, record in zip(
                indices, attempt_fn(current, deadline)
            ):
                final[position] = record
            crashed = [
                position for position in indices
                if _record_is_crash(final[position])
            ]
            if not crashed:
                break
            if attempt >= policy.max_retries:
                if policy.max_retries > 0:
                    # Poison payloads: stop burning attempts on them
                    # and pin a persistent, rank-excluded outcome row
                    # carrying the attempt history.
                    for position in crashed:
                        final[position] = _quarantine_record(
                            final[position], attempt + 1
                        )
                    obs.counter("repro_pool_quarantined_total").inc(
                        len(crashed)
                    )
                    obs.instant(
                        "pool.quarantine", payloads=len(crashed),
                        attempts=attempt + 1,
                    )
                break
            attempt += 1
            obs.counter("repro_pool_retries_total").inc(len(crashed))
            obs.instant(
                "pool.retry", attempt=attempt, payloads=len(crashed)
            )
            delay = policy.backoff_delay(attempt)
            if delay > 0:
                time.sleep(delay)
            indices = crashed
            current = [
                dict(payloads[position], fault_attempt=attempt)
                for position in crashed
            ]
        return final

    def _run_pool_once(
        self,
        payloads: List[Dict[str, Any]],
        batch_base: Optional[Dict[str, Any]],
        deadline: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """One unsupervised attempt across the process pool.

        ``deadline`` (monotonic) bounds how long this attempt waits for
        its futures: a chunk not finished by then is pinned with
        retryable timeout rows and, once every finished chunk has been
        collected, the worker set is reaped (see :meth:`_reap_workers`)
        so the hang cannot leak into the next attempt.
        """
        # A deadline needs the process boundary: an in-process hang
        # cannot be reaped, so even a single payload goes to the pool.
        if len(payloads) <= 1 and deadline is None:
            return self._run_serial(
                payloads, base_spec=batch_base, deadline=deadline
            )
        pool = self._ensure_pool()
        if pool is None:
            obs.counter("repro_pool_serial_fallback_total").inc()
            degrade.report("executor", "serial")
            return self._run_serial(
                payloads, base_spec=batch_base, deadline=deadline
            )
        # Resolved in the submitting process so tests (and callers) can
        # substitute the worker; it is pickled by reference per chunk.
        worker = sys.modules[__name__].run_point_payload
        # Under a deadline the chunk is the timeout blast radius: a hang
        # pins every chunk-mate with a retryable timeout row, burning
        # their retry budgets on someone else's fault.  One payload per
        # future keeps the radius to (roughly) the hung task itself; the
        # extra IPC is the price of supervision, paid only when armed.
        if deadline is not None:
            chunk_size = 1
        else:
            chunk_size = max(
                1,
                math.ceil(
                    len(payloads) / (self.max_workers * _CHUNKS_PER_WORKER)
                ),
            )
        chunks = [
            payloads[i : i + chunk_size]
            for i in range(0, len(payloads), chunk_size)
        ]
        # When instrumentation is on, workers wrap each chunk in an obs
        # envelope (see _run_payload_batch); tracing in *this* process
        # asks workers to capture and ship their spans too.
        obs_opts = None
        if obs.obs_enabled():
            obs_opts = {"trace": obs.tracing_enabled()}
        fault_state = faults.state_snapshot()
        with obs.span(
            "pool.run", tasks=len(payloads), chunks=len(chunks),
            workers=self.max_workers,
        ):
            submit_wall = time.time()
            try:
                futures = [
                    pool.submit(
                        _run_payload_batch, worker, batch_base, chunk,
                        obs_opts, fault_state,
                    )
                    for chunk in chunks
                ]
            except (OSError, PermissionError):
                self._broken = True
                self.close()
                obs.counter("repro_pool_serial_fallback_total").inc()
                degrade.report("executor", "serial")
                return self._run_serial(
                    payloads, base_spec=batch_base, deadline=deadline
                )
            from concurrent.futures import BrokenExecutor
            from concurrent.futures import TimeoutError as _FutureTimeout

            degrade.report("executor", "pool")
            obs.counter("repro_pool_tasks_total", mode="pool").inc(
                len(payloads)
            )
            obs.counter("repro_pool_chunks_submitted_total").inc(len(chunks))
            records: List[Dict[str, Any]] = []
            pool_died = False
            timed_out = 0
            for chunk, future in zip(chunks, futures):
                try:
                    if deadline is None:
                        error = future.exception()
                    else:
                        error = future.exception(
                            timeout=max(0.0, deadline - time.monotonic())
                        )
                except _FutureTimeout:
                    # Past the deadline: this chunk's worker is hung
                    # (or the queue behind a hung worker).  Pin
                    # retryable timeout rows; the reap below clears
                    # the worker set.
                    timed_out += 1
                    error = TimeoutError(
                        "task deadline exceeded; hung worker reaped"
                    )
                if error is None:
                    records.extend(
                        self._absorb_chunk(future.result(), submit_wall)
                    )
                else:
                    if isinstance(error, BrokenExecutor):
                        pool_died = True
                    obs.counter("repro_pool_worker_failures_total").inc(
                        len(chunk)
                    )
                    records.extend(
                        _worker_failure(payload, error, batch_base)
                        for payload in chunk
                    )
            if timed_out:
                obs.counter("repro_pool_deadline_timeouts_total").inc(
                    timed_out
                )
                self._reap_workers()
        if pool_died:
            # A dead worker poisons the whole executor: every later
            # submit would raise.  Drop it so the next batch gets a
            # fresh pool (matching the resilience of the old
            # pool-per-call design) instead of crashing the run.
            self.close()
        return records


def execute_payloads(
    payloads: List[Dict[str, Any]],
    parallel: bool = True,
    max_workers: Optional[int] = None,
    base_spec: Optional[Dict[str, Any]] = None,
    pool: Optional[WarmPool] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> List[Dict[str, Any]]:
    """Run worker payloads; failures become error records, never raises.

    The shared execution core of :class:`SweepRunner` and
    :class:`repro.explore.driver.ExplorationDriver`: each payload goes
    through :func:`run_point_payload` — across a warm-worker process
    pool by default, in-process when ``parallel=False`` or the sandbox
    lacks multiprocessing primitives.  Pass ``base_spec`` (a spec dict)
    to let payloads ship ``"spec_overrides"`` instead of full specs, and
    ``pool`` to reuse a caller-managed :class:`WarmPool` across batches
    (the pool is left open; ``base_spec`` rides along per batch, so a
    session-wide pool can serve callers with different base scenarios).
    ``policy`` supervises the batch (deadlines, retries, quarantine —
    see :class:`SupervisionPolicy`); with ``parallel=False`` the same
    loop runs in-process, minus hung-worker reaping.
    """
    if pool is not None:
        if parallel:
            return pool.run(payloads, base_spec=base_spec, policy=policy)
        if policy is not None and policy.supervised:
            return pool.run(
                payloads, base_spec=base_spec, policy=policy, serial=True
            )
        return pool._run_serial(payloads, base_spec=base_spec)
    workers = min(
        max_workers or (os.cpu_count() or 1), max(1, len(payloads))
    )
    transient = WarmPool(max_workers=workers, base_spec=base_spec)
    try:
        if parallel:
            return transient.run(payloads, policy=policy)
        if policy is not None and policy.supervised:
            return transient.run(payloads, policy=policy, serial=True)
        return transient._run_serial(payloads)
    finally:
        transient.close()


def group_batch_payloads(
    payloads: List[Dict[str, Any]],
    specs: Sequence[ScenarioSpec],
    batch_size: Optional[int],
) -> Tuple[List[Dict[str, Any]], List[int]]:
    """Regroup per-point payloads into batched-kernel payloads.

    Points whose specs share a topology (same component skeleton, fast
    kernel — see :func:`repro.sim.batch.topology_key`) merge into batch
    payloads of up to ``batch_size`` members; everything else (full-spec
    payloads, non-batchable specs, singleton groups) passes through
    untouched.  ``batch_size`` semantics: ``None`` or ``1`` disables
    grouping, ``0`` (or negative) picks
    :data:`repro.sim.batch.AUTO_BATCH_SIZE`.

    Returns:
        ``(grouped, order)`` — ``grouped`` is the payload list to
        execute, and ``order[k]`` is the index into ``payloads`` of the
        k-th record after :func:`flatten_batch_records` (batch payloads
        contribute one record per member, in member order).
    """
    identity = list(range(len(payloads)))
    if batch_size is None or batch_size == 1 or len(payloads) < 2:
        return list(payloads), identity
    from repro.sim.batch import AUTO_BATCH_SIZE, batchable, topology_key

    size = batch_size if batch_size > 1 else AUTO_BATCH_SIZE
    groups: Dict[str, List[int]] = {}
    solo: List[int] = []
    for index, (payload, spec) in enumerate(zip(payloads, specs)):
        if "spec_overrides" in payload and batchable(spec):
            groups.setdefault(topology_key(spec), []).append(index)
        else:
            solo.append(index)
    grouped: List[Dict[str, Any]] = []
    order: List[int] = []
    for indices in groups.values():
        if len(indices) < 2:
            solo.extend(indices)
            continue
        for begin in range(0, len(indices), size):
            chunk = indices[begin : begin + size]
            if len(chunk) < 2:
                solo.extend(chunk)
                continue
            first = payloads[chunk[0]]
            batch_payload: Dict[str, Any] = {
                "spec_overrides_batch": [
                    payloads[i]["spec_overrides"] for i in chunk
                ],
                "overrides_batch": [
                    payloads[i].get("overrides", {}) for i in chunk
                ],
                "traces": list(first.get("traces", ())),
            }
            if "max_trace_samples" in first:
                batch_payload["max_trace_samples"] = first[
                    "max_trace_samples"
                ]
            grouped.append(batch_payload)
            order.extend(chunk)
    for index in sorted(solo):
        grouped.append(payloads[index])
        order.append(index)
    return grouped, order


def flatten_batch_records(
    records: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """Expand batch worker records back to one record per point.

    The inverse of :func:`group_batch_payloads`'s regrouping: batch
    records (``{"batch": [...], "stats": {...}}``) contribute their
    members in order, point records pass through — so the flattened list
    lines up with the ``order`` index list.  Batch stats sum across all
    batches into the returned totals dict (empty when nothing batched).
    """
    flat: List[Dict[str, Any]] = []
    totals: Dict[str, int] = {}
    for record in records:
        if isinstance(record, dict) and "batch" in record:
            flat.extend(record["batch"])
            for key, value in (record.get("stats") or {}).items():
                totals[key] = totals.get(key, 0) + int(value)
            totals.setdefault("members", 0)
        else:
            flat.append(record)
    return flat, totals


@dataclass(frozen=True)
class SweepResult:
    """All grid points of one sweep, in grid order.

    ``computed``/``cached`` split how each point was satisfied when the
    sweep ran against a persistent store (both zero-cost views of the
    same list otherwise).
    """

    base_name: str
    grid_keys: List[str]
    points: List[RunResult] = field(default_factory=list)
    computed: int = 0
    cached: int = 0

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def columns(self) -> List[str]:
        return list(self.grid_keys) + result_columns()

    def rows(self) -> List[List[Any]]:
        """One row per point: override values then the metric columns."""
        return [
            [point.overrides.get(key) for key in self.grid_keys]
            + [point.metrics.get(column) for column in result_columns()]
            for point in self.points
        ]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Each point as one flat record (overrides merged with metrics)."""
        return [dict(p.overrides, **p.metrics) for p in self.points]

    def best(self, metric: str, minimize: bool = True) -> RunResult:
        """The point optimising ``metric``, ignoring points lacking it.

        Error rows, non-finite values and sub-full-fidelity rows are
        skipped with a warning, matching :meth:`ResultStore.best`.
        """
        from repro.results.store import rankable_results

        candidates = rankable_results(
            self.points, (metric,), describe=f"best({metric!r})",
            noun="point",
        )
        if not candidates:
            raise SpecError(f"no sweep point recorded metric {metric!r}")
        return (min if minimize else max)(candidates, key=lambda p: p[metric])

    def format(self, floatfmt: str = "{:.4g}") -> str:
        """Render the sweep as an aligned text table, one row per point."""
        from repro.analysis.report import format_table

        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, bool):
                return "yes" if value else "no"
            if isinstance(value, float):
                return floatfmt.format(value)
            return str(value)

        rows = [[fmt(cell) for cell in row] for row in self.rows()]
        return format_table(self.columns(), rows)


class SweepRunner:
    """Expand a parameter grid over a base spec and run every point.

    Args:
        base: the scenario to vary.
        grid: mapping of override key (see
            :meth:`ScenarioSpec.with_override`) to the values to sweep.
        max_workers: process-pool width; defaults to
            ``min(len(points), cpu_count)``.

    Use ``run(parallel=False)`` for in-process serial execution (same
    results, deterministic by construction — handy under debuggers and in
    tests asserting serial/parallel equivalence).  Pass ``store=`` (a
    :class:`ResultStore`) to persist results as they arrive, and
    ``resume=True`` to skip points the store already holds.
    """

    def __init__(
        self,
        base: ScenarioSpec,
        grid: Mapping[str, Sequence[Any]],
        max_workers: Optional[int] = None,
    ):
        self.base = base
        self.grid = dict(grid)
        self.max_workers = max_workers
        self.overrides = expand_grid(self.grid)
        # Expand eagerly: a bad override key fails here, not mid-pool.
        self.specs = [base.with_overrides(point) for point in self.overrides]
        self.hashes = [spec_hash(spec) for spec in self.specs]

    def __len__(self) -> int:
        return len(self.specs)

    def _payloads(
        self, indices: Sequence[int], capture_traces: Sequence[str]
    ) -> List[Dict[str, Any]]:
        # Warm-worker tasks: only the override dicts travel; every
        # worker resolves them against the shared base spec it parsed
        # once at initialisation.
        return [
            {
                "spec_overrides": self.overrides[i],
                "overrides": self.overrides[i],
                "traces": list(capture_traces),
            }
            for i in indices
        ]

    def _execute(
        self,
        payloads: List[Dict[str, Any]],
        parallel: bool,
        pool: Optional[WarmPool] = None,
        policy: Optional[SupervisionPolicy] = None,
    ) -> List[Dict[str, Any]]:
        """Run payloads through the shared :func:`execute_payloads` core."""
        return execute_payloads(
            payloads,
            parallel=parallel,
            max_workers=self.max_workers,
            base_spec=self.base.to_dict(),
            pool=pool,
            policy=policy,
        )

    def run(
        self,
        parallel: bool = True,
        store: Optional[Union[ResultStore, str, "os.PathLike[str]"]] = None,
        resume: bool = False,
        capture_traces: Sequence[str] = (),
        progress: Optional[ProgressHook] = None,
        pool: Optional[WarmPool] = None,
        store_backend: Optional[str] = None,
        batch_size: Optional[int] = None,
        policy: Optional[SupervisionPolicy] = None,
    ) -> SweepResult:
        """Execute the grid; rows come back in grid order.

        Args:
            parallel: fan points out across a process pool.
            store: persist/dedupe results through this store.  A path
                opens one — a ``.colstore`` suffix selects the sharded
                columnar backend, anything else JSONL.
            resume: skip points whose spec hash ``store`` already holds
                (requires ``store``); only the gap is recomputed.
            store_backend: override backend selection when ``store`` is
                a path (``"jsonl"`` or ``"columnar"``).
            capture_traces: probe names whose (decimated) traces each
                computed point should carry.
            progress: optional hook receiving one :class:`BatchProgress`
                event (a sweep is one batch) once the grid is satisfied.
            pool: a caller-managed :class:`WarmPool` to execute on (left
                open); this sweep's base spec rides along per batch.
            batch_size: group points sharing a topology into batched
                SoA-kernel tasks of up to this many members (``0`` =
                :data:`repro.sim.batch.AUTO_BATCH_SIZE`; ``None``/``1``
                = per-point execution).  Results are identical either
                way — same spec hashes, metrics and store rows.
            policy: supervise execution (per-attempt deadlines with
                hung-worker reaping, bounded retries with backoff,
                poison-payload quarantine) — see
                :class:`SupervisionPolicy`.  None = unsupervised.
        """
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store, backend=store_backend)
        if resume and store is None:
            raise SpecError("resume=True needs a result store to resume from")
        sweep_span = obs.span(
            "sweep.run", label=self.base.name, points=len(self.specs),
            parallel=parallel,
        )
        sweep_span.__enter__()
        pending = [
            i for i in range(len(self.specs))
            # A stored worker-crash row (older stores may hold them) is
            # not a satisfied point: resume retries it.
            if not (resume and self.hashes[i] in store
                    and not _is_worker_crash(store.get(self.hashes[i])))
        ]
        payloads = self._payloads(pending, capture_traces)
        batch_stats: Dict[str, int] = {}
        if batch_size is not None and batch_size != 1:
            grouped, order = group_batch_payloads(
                payloads, [self.specs[i] for i in pending], batch_size
            )
            raw = self._execute(grouped, parallel, pool=pool, policy=policy)
            flat, batch_stats = flatten_batch_records(raw)
            records: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
            for position, record in zip(order, flat):
                records[position] = record
            for position, record in enumerate(records):
                if record is None:  # a worker returned a short batch
                    records[position] = _worker_failure(
                        payloads[position],
                        RuntimeError("batch worker returned no record"),
                        self.base.to_dict(),
                    )
        else:
            records = self._execute(
                payloads, parallel, pool=pool, policy=policy
            )
        computed: Dict[int, RunResult] = {}
        # One batched store transaction: appends buffer and hit the disk
        # with a single fsync instead of one per point.
        with (store.batch() if store is not None else nullcontext()):
            for i, record in zip(pending, records):
                result = RunResult.from_record(record).with_context(
                    index=i, spec=self.specs[i]
                )
                computed[i] = result
                # Deterministic outcomes (successes *and* infeasible-
                # scenario error rows) are cacheable; worker crashes are
                # transient and must stay recomputable on the next resume.
                if store is not None and not _is_worker_crash(result):
                    store.add(result, overwrite=True)
        points = []
        for i in range(len(self.specs)):
            if i in computed:
                points.append(computed[i])
            else:
                cached = store.get(self.hashes[i])
                points.append(cached.with_context(index=i, spec=self.specs[i]))
        # One shared progress stream: the event always flows through the
        # obs layer (metrics + trace instant), then to any caller hook.
        event = BatchProgress(
            label=self.base.name,
            batch=1,
            computed=len(computed),
            cached=len(points) - len(computed),
            errors=sum(1 for p in points if p.error is not None),
            total=len(points),
            members=batch_stats.get("members")
            if batch_stats else None,
            passes=batch_stats.get("passes"),
            advanced=batch_stats.get("advanced"),
            settled=batch_stats.get("settled"),
            diverged=batch_stats.get("diverged"),
        )
        obs.record_progress(event)
        if progress is not None:
            progress(event)
        sweep_span.annotate(
            computed=len(computed), cached=len(points) - len(computed),
        )
        sweep_span.__exit__(None, None, None)
        return SweepResult(
            base_name=self.base.name,
            grid_keys=list(self.grid),
            points=points,
            computed=len(computed),
            cached=len(points) - len(computed),
        )
