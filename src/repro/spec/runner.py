"""Parallel execution of scenario-spec parameter grids.

:class:`SweepRunner` expands a grid over a base :class:`ScenarioSpec`,
runs every point — in parallel across processes by default, since frozen
plain-data specs pickle for free — and collects one :class:`PointResult`
per point into a tabular :class:`SweepResult`.

The worker (:func:`run_scenario_payload`) is a module-level function so
it pickles under every ``multiprocessing`` start method; it ships the
spec as a plain dict and returns a plain dict of scalars, keeping the
inter-process traffic tiny regardless of how many probe samples a run
records.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import SpecError
from repro.spec.specs import ScenarioSpec, expand_grid

#: Metric columns every sweep row carries (after the override columns).
RESULT_COLUMNS = [
    "completed",
    "completion_time",
    "brownouts",
    "snapshots",
    "restores",
    "energy_total",
    "energy_overhead",
    "vcc_min",
    "vcc_max",
    "t_end",
    "error",
]

_EMPTY_SUMMARY: Dict[str, Any] = {
    "t_end": None,
    "vcc_min": None,
    "vcc_max": None,
    "completed": None,
    "completion_time": None,
    "brownouts": None,
    "snapshots": None,
    "restores": None,
    "cycles_executed": None,
    "energy_total": None,
    "energy_overhead": None,
    "error": None,
}


def run_scenario_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: build, run and summarise one scenario.

    Takes/returns plain dicts so it is picklable and cheap to ship.
    Framework errors (an infeasible grid point, e.g. a capacitance too
    small for its strategy's Eq. (4) threshold) come back as the point's
    ``error`` field instead of killing the whole sweep.
    """
    spec = ScenarioSpec.from_dict(payload)
    summary = dict(_EMPTY_SUMMARY)
    try:
        system = spec.build()
        result = system.run(spec.duration, decimate=spec.decimate)
    except Exception as error:  # one bad point must not kill the sweep
        summary["error"] = f"{type(error).__name__}: {error}"
        return summary
    vcc = result.vcc()
    summary.update(
        t_end=result.t_end,
        vcc_min=float(vcc.minimum()),
        vcc_max=float(vcc.maximum()),
    )
    platform = result.platform
    if platform is not None:
        metrics = platform.metrics
        summary.update(
            completed=metrics.first_completion_time is not None,
            completion_time=metrics.first_completion_time,
            brownouts=metrics.brownouts,
            snapshots=metrics.snapshots_completed,
            restores=metrics.restores_completed,
            cycles_executed=metrics.cycles_executed,
            energy_total=metrics.total_energy(),
            energy_overhead=metrics.overhead_energy(),
        )
    return summary


@dataclass(frozen=True)
class PointResult:
    """Summary of one grid point's run."""

    index: int
    overrides: Dict[str, Any]
    spec: ScenarioSpec
    metrics: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        if key in self.overrides:
            return self.overrides[key]
        return self.metrics[key]


@dataclass(frozen=True)
class SweepResult:
    """All grid points of one sweep, in grid order."""

    base_name: str
    grid_keys: List[str]
    points: List[PointResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def columns(self) -> List[str]:
        return list(self.grid_keys) + RESULT_COLUMNS

    def rows(self) -> List[List[Any]]:
        """One row per point: override values then the metric columns."""
        return [
            [point.overrides.get(key) for key in self.grid_keys]
            + [point.metrics.get(column) for column in RESULT_COLUMNS]
            for point in self.points
        ]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Each point as one flat record (overrides merged with metrics)."""
        return [dict(p.overrides, **p.metrics) for p in self.points]

    def best(self, metric: str, minimize: bool = True) -> PointResult:
        """The point optimising ``metric``, ignoring points lacking it."""
        candidates = [p for p in self.points if p.metrics.get(metric) is not None]
        if not candidates:
            raise SpecError(f"no sweep point recorded metric {metric!r}")
        return (min if minimize else max)(
            candidates, key=lambda p: p.metrics[metric]
        )

    def format(self, floatfmt: str = "{:.4g}") -> str:
        """Render the sweep as an aligned text table, one row per point."""
        from repro.analysis.report import format_table

        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, bool):
                return "yes" if value else "no"
            if isinstance(value, float):
                return floatfmt.format(value)
            return str(value)

        rows = [[fmt(cell) for cell in row] for row in self.rows()]
        return format_table(self.columns(), rows)


class SweepRunner:
    """Expand a parameter grid over a base spec and run every point.

    Args:
        base: the scenario to vary.
        grid: mapping of override key (see
            :meth:`ScenarioSpec.with_override`) to the values to sweep.
        max_workers: process-pool width; defaults to
            ``min(len(points), cpu_count)``.

    Use ``run(parallel=False)`` for in-process serial execution (same
    results, deterministic by construction — handy under debuggers and in
    tests asserting serial/parallel equivalence).
    """

    def __init__(
        self,
        base: ScenarioSpec,
        grid: Mapping[str, Sequence[Any]],
        max_workers: Optional[int] = None,
    ):
        self.base = base
        self.grid = dict(grid)
        self.max_workers = max_workers
        self.overrides = expand_grid(self.grid)
        # Expand eagerly: a bad override key fails here, not mid-pool.
        self.specs = [base.with_overrides(point) for point in self.overrides]

    def __len__(self) -> int:
        return len(self.specs)

    def run(self, parallel: bool = True) -> SweepResult:
        """Execute every grid point; rows come back in grid order."""
        payloads = [spec.to_dict() for spec in self.specs]
        if parallel and len(payloads) > 1:
            workers = self.max_workers or min(
                len(payloads), os.cpu_count() or 1
            )
            workers = max(1, min(workers, len(payloads)))
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    summaries = list(pool.map(run_scenario_payload, payloads))
            except (OSError, PermissionError):
                # Environments without working multiprocessing primitives
                # (restricted sandboxes) still get correct, serial results.
                summaries = [run_scenario_payload(p) for p in payloads]
        else:
            summaries = [run_scenario_payload(p) for p in payloads]
        points = [
            PointResult(index=i, overrides=self.overrides[i],
                        spec=self.specs[i], metrics=summary)
            for i, summary in enumerate(summaries)
        ]
        return SweepResult(
            base_name=self.base.name,
            grid_keys=list(self.grid),
            points=points,
        )
