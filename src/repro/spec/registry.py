"""The component registry behind the declarative spec layer.

Every composable part of the framework — harvesters, rectifiers,
converters, MPPT trackers, storage elements, transient strategies,
programs, compute engines, power models, rail loads, governors —
registers itself under a string key::

    @register("solar", kind="harvester")
    class PhotovoltaicHarvester(PowerHarvester):
        ...

Specs (:mod:`repro.spec.specs`) then refer to components by
``(kind, name)`` and the registry turns that back into a live object via
:func:`create`, validating keyword arguments against the factory's
signature so a typo in a JSON file produces an actionable error instead
of a ``TypeError`` three stack frames deep.

The registry itself depends on nothing but :mod:`repro.errors`, so any
component module can import :func:`register` without creating an import
cycle.  :func:`ensure_catalog` imports the component packages on demand,
which is what actually populates the tables.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import SpecError, UnknownComponentError

#: kind -> name -> factory (a class or a callable returning an instance).
_REGISTRY: Dict[str, Dict[str, Callable[..., Any]]] = {}

_catalog_loaded = False


def register(name: str, *, kind: str) -> Callable[[Callable], Callable]:
    """Class/function decorator registering ``factory`` as ``(kind, name)``.

    Usable both as a decorator and as a plain call::

        @register("hibernus", kind="strategy")
        class Hibernus(Strategy): ...

        register("pv-indoor", kind="harvester")(PhotovoltaicHarvester.indoor_fig1b)
    """
    if not name or not kind:
        raise SpecError("registry name and kind must be non-empty strings")

    def decorator(factory: Callable) -> Callable:
        table = _REGISTRY.setdefault(kind, {})
        existing = table.get(name)
        if existing is not None and existing is not factory:
            raise SpecError(
                f"{kind} {name!r} is already registered to "
                f"{getattr(existing, '__qualname__', existing)!r}"
            )
        table[name] = factory
        return factory

    return decorator


def ensure_catalog() -> None:
    """Import the component packages so their registrations run.

    Deferred (rather than done at import of this module) to keep the
    registry cycle-free: component modules import :func:`register` from
    here at class-definition time.
    """
    global _catalog_loaded
    if _catalog_loaded:
        return
    # Importing the family packages triggers every @register decorator.
    import repro.harvest  # noqa: F401
    import repro.mcu  # noqa: F401
    import repro.mcu.programs  # noqa: F401
    import repro.neutral  # noqa: F401
    import repro.power  # noqa: F401
    import repro.storage  # noqa: F401
    import repro.transient  # noqa: F401

    _catalog_loaded = True


def kinds() -> List[str]:
    """All component kinds that have at least one registration."""
    ensure_catalog()
    return sorted(kind for kind, table in _REGISTRY.items() if table)


def available(kind: str) -> List[str]:
    """Sorted names registered under ``kind`` (empty list for unknown kinds)."""
    ensure_catalog()
    return sorted(_REGISTRY.get(kind, {}))


def resolve(kind: str, name: str) -> Callable[..., Any]:
    """The factory registered as ``(kind, name)``.

    Raises:
        UnknownComponentError: with the list of valid choices.
    """
    ensure_catalog()
    table = _REGISTRY.get(kind)
    if not table:
        raise UnknownComponentError(
            f"unknown component kind {kind!r}; known kinds: {kinds()}"
        )
    factory = table.get(name)
    if factory is None:
        raise UnknownComponentError(
            f"unknown {kind} {name!r}; registered {kind}s: {available(kind)}"
        )
    return factory


#: Introspected-signature cache, keyed by the factory object itself so a
#: re-registration under the same name invalidates naturally.  Signature
#: introspection is surprisingly expensive and batch builds resolve the
#: same few factories thousands of times.
_SIGNATURE_CACHE: Dict[int, Tuple[Any, Tuple[List[str], bool]]] = {}


def accepted_parameters(kind: str, name: str) -> Tuple[List[str], bool]:
    """Keyword parameters ``(kind, name)``'s factory accepts.

    Returns:
        ``(names, open_ended)`` — ``open_ended`` is True when the factory
        takes ``**kwargs`` so any keyword is potentially valid.
    """
    factory = resolve(kind, name)
    cached = _SIGNATURE_CACHE.get(id(factory))
    if cached is not None and cached[0] is factory:
        return cached[1]
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins without introspectable sigs
        result: Tuple[List[str], bool] = ([], True)
        _SIGNATURE_CACHE[id(factory)] = (factory, result)
        return result
    names: List[str] = []
    open_ended = False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            open_ended = True
        elif parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.append(parameter.name)
    result = (names, open_ended)
    _SIGNATURE_CACHE[id(factory)] = (factory, result)
    return result


def validate_params(kind: str, name: str, params: Dict[str, Any]) -> None:
    """Eagerly reject keyword arguments the factory would not accept.

    Raises:
        SpecError: naming the offending key and the accepted ones.
    """
    accepted, open_ended = accepted_parameters(kind, name)
    if open_ended:
        return
    for key in params:
        if key not in accepted:
            raise SpecError(
                f"{kind} {name!r} does not accept parameter {key!r}; "
                f"accepted parameters: {sorted(accepted)}"
            )


def create(kind: str, name: str, params: Dict[str, Any]) -> Any:
    """Instantiate ``(kind, name)`` with ``params`` as keyword arguments.

    Raises:
        SpecError: when the factory rejects the values (e.g. a hand-edited
            JSON file quoting a number) — keeping the one-line-error
            contract even for type mistakes name validation cannot catch.
    """
    validate_params(kind, name, params)
    try:
        return resolve(kind, name)(**params)
    except (TypeError, ValueError) as error:
        raise SpecError(
            f"building {kind} {name!r} from parameters {params!r} failed: "
            f"{error}"
        ) from error
