"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` is a frozen, plain-data description of one
energy-driven system — storage, harvesting front ends, the transient
platform and its strategy — that:

* validates eagerly (unknown registry keys and misspelled parameters fail
  at construction with actionable messages, not at run time),
* round-trips losslessly through plain dicts and JSON
  (``ScenarioSpec.from_json(spec.to_json()) == spec``),
* :meth:`~ScenarioSpec.build`\\ s into a ready-to-run
  :class:`~repro.core.system.EnergyDrivenSystem` — the imperative API
  stays the engine underneath,
* expands into parameter-grid variants via :meth:`~ScenarioSpec.sweep`,
  which is what :class:`repro.spec.runner.SweepRunner` parallelises
  (frozen plain-data specs are picklable for free).

Component references are string keys into :mod:`repro.spec.registry`;
see ``python -m repro.cli components`` for the catalog.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SpecError
from repro.spec.registry import accepted_parameters, create, validate_params


def _plain(value: Any) -> Any:
    """Deep-copy ``value`` into plain JSON-compatible containers."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _check_keys(payload: Mapping[str, Any], allowed: Sequence[str], what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise SpecError(
            f"unknown key(s) {unknown} in {what}; allowed keys: {sorted(allowed)}"
        )


# ---------------------------------------------------------------------------
# Component-level specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HarvesterSpec:
    """One harvesting front end: the source plus its conditioning.

    Voltage-domain harvesters (``SignalGenerator``, ``MicroWindTurbine``,
    ...) may name a ``rectifier``; power-domain harvesters may name a
    ``converter`` and/or ``mppt`` stage.  The domain is determined by the
    registered class when the spec is built.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    rectifier: Optional[str] = None
    rectifier_params: Dict[str, Any] = field(default_factory=dict)
    converter: Optional[str] = None
    converter_params: Dict[str, Any] = field(default_factory=dict)
    mppt: Optional[str] = None
    mppt_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _plain(self.params))
        object.__setattr__(self, "rectifier_params", _plain(self.rectifier_params))
        object.__setattr__(self, "converter_params", _plain(self.converter_params))
        object.__setattr__(self, "mppt_params", _plain(self.mppt_params))
        if self.rectifier is not None and (self.converter or self.mppt):
            raise SpecError(
                f"harvester {self.kind!r}: a rectifier (voltage domain) cannot "
                "be combined with a converter/mppt (power domain)"
            )
        validate_params("harvester", self.kind, self.params)
        if self.rectifier is not None:
            validate_params("rectifier", self.rectifier, self.rectifier_params)
        if self.converter is not None:
            validate_params("converter", self.converter, self.converter_params)
        if self.mppt is not None:
            validate_params("mppt", self.mppt, self.mppt_params)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            payload["params"] = _plain(self.params)
        for stage in ("rectifier", "converter", "mppt"):
            name = getattr(self, stage)
            if name is not None:
                payload[stage] = name
                stage_params = getattr(self, f"{stage}_params")
                if stage_params:
                    payload[f"{stage}_params"] = _plain(stage_params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HarvesterSpec":
        _check_keys(
            payload,
            ["kind", "params", "rectifier", "rectifier_params",
             "converter", "converter_params", "mppt", "mppt_params"],
            "harvester spec",
        )
        if "kind" not in payload:
            raise SpecError("harvester spec needs a 'kind'")
        return cls(
            kind=payload["kind"],
            params=dict(payload.get("params", {})),
            rectifier=payload.get("rectifier"),
            rectifier_params=dict(payload.get("rectifier_params", {})),
            converter=payload.get("converter"),
            converter_params=dict(payload.get("converter_params", {})),
            mppt=payload.get("mppt"),
            mppt_params=dict(payload.get("mppt_params", {})),
        )


@dataclass(frozen=True)
class StorageSpec:
    """The storage element the supply rail is built around."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _plain(self.params))
        validate_params("storage", self.kind, self.params)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            payload["params"] = _plain(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StorageSpec":
        _check_keys(payload, ["kind", "params"], "storage spec")
        if "kind" not in payload:
            raise SpecError("storage spec needs a 'kind'")
        return cls(kind=payload["kind"], params=dict(payload.get("params", {})))


@dataclass(frozen=True)
class LoadSpec:
    """An additional (non-platform) rail load, e.g. a bleed resistor."""

    kind: str = "resistive"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _plain(self.params))
        validate_params("load", self.kind, self.params)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            payload["params"] = _plain(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LoadSpec":
        _check_keys(payload, ["kind", "params"], "load spec")
        return cls(
            kind=payload.get("kind", "resistive"),
            params=dict(payload.get("params", {})),
        )


@dataclass(frozen=True)
class PlatformSpec:
    """The transient MCU platform: engine, workload, strategy, electrics.

    Attributes:
        strategy: registry key of the checkpointing strategy.
        strategy_params: keyword arguments for the strategy.
        engine: ``"machine"`` (the mini-ISA interpreter running
            ``program``) or ``"synthetic"`` (a cycle-counting workload).
        engine_params: keyword arguments for the engine — for
            ``"synthetic"`` these go to ``SyntheticEngine`` (must include
            ``total_cycles``); for ``"machine"`` they are the extra
            ``MachineEngine`` options (``include_peripherals``, ...).
        program / program_params: registry key and arguments of the
            mini-ISA program generator (``"machine"`` engine only).
        machine_params: ``MachineConfig`` fields (``data_space_words``,
            ``data_in_fram``, ...).
        power_model: registry key of the MCU power model, or None for the
            platform default.
        clock_frequency / clock_voltage: when set, pins the clock plan to
            a single operating point; None keeps the MSP430-like default.
        store_slots: NVM snapshot slots.
        config: ``TransientPlatformConfig`` fields. ``rail_capacitance``
            defaults to the scenario storage's capacitance when omitted,
            so Eq. (4) calibration follows a storage sweep automatically.
    """

    strategy: str
    strategy_params: Dict[str, Any] = field(default_factory=dict)
    engine: str = "machine"
    engine_params: Dict[str, Any] = field(default_factory=dict)
    program: Optional[str] = None
    program_params: Dict[str, Any] = field(default_factory=dict)
    machine_params: Dict[str, Any] = field(default_factory=dict)
    power_model: Optional[str] = None
    clock_frequency: Optional[float] = None
    clock_voltage: float = 3.0
    store_slots: int = 2
    config: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("strategy_params", "engine_params", "program_params",
                     "machine_params", "config"):
            object.__setattr__(self, name, _plain(getattr(self, name)))
        validate_params("strategy", self.strategy, self.strategy_params)
        if self.engine == "machine":
            if self.program is None:
                raise SpecError("a 'machine' engine needs a 'program'")
            validate_params("program", self.program, self.program_params)
            _check_keys(self.machine_params, _machine_config_fields(),
                        "machine_params")
            # build() supplies machine and power_model itself; the rest of
            # MachineEngine's keywords are fair game for engine_params.
            machine_engine_keys = [
                name for name in accepted_parameters("engine", "machine")[0]
                if name not in ("machine", "power_model")
            ]
            _check_keys(self.engine_params, machine_engine_keys,
                        "machine engine_params")
        elif self.engine == "synthetic":
            if self.program is not None:
                raise SpecError("a 'synthetic' engine takes no 'program'")
            if "total_cycles" not in self.engine_params:
                raise SpecError(
                    "a 'synthetic' engine needs engine_params['total_cycles']"
                )
            validate_params("engine", "synthetic", self.engine_params)
        else:
            raise SpecError(
                f"unknown engine {self.engine!r}; choose 'machine' or 'synthetic'"
            )
        if self.power_model is not None:
            validate_params("power-model", self.power_model, {})
        if self.clock_frequency is not None and self.clock_frequency <= 0.0:
            raise SpecError("clock_frequency must be positive")
        if self.store_slots < 1:
            raise SpecError("store_slots must be >= 1")
        _check_keys(self.config, _platform_config_fields(), "platform config")

    # -- building --------------------------------------------------------

    def build(self, default_rail_capacitance: Optional[float] = None):
        """Construct the live :class:`TransientPlatform` this spec describes."""
        from repro.mcu.assembler import assemble
        from repro.mcu.clock import ClockPlan, OperatingPoint
        from repro.mcu.engine import MachineEngine
        from repro.mcu.machine import Machine, MachineConfig
        from repro.transient.base import (
            SnapshotStore,
            TransientPlatform,
            TransientPlatformConfig,
        )

        power_model = (
            create("power-model", self.power_model, {})
            if self.power_model is not None
            else None
        )
        if self.engine == "synthetic":
            engine = create("engine", "synthetic", self.engine_params)
        else:
            source = create("program", self.program, self.program_params)
            machine = Machine(assemble(source), MachineConfig(**self.machine_params))
            engine = MachineEngine(
                machine, power_model=power_model, **self.engine_params
            )
        strategy = create("strategy", self.strategy, self.strategy_params)
        clock = None
        if self.clock_frequency is not None:
            clock = ClockPlan(
                [OperatingPoint(self.clock_frequency, self.clock_voltage)]
            )
        config_kwargs = dict(self.config)
        if "rail_capacitance" not in config_kwargs and default_rail_capacitance:
            config_kwargs["rail_capacitance"] = default_rail_capacitance
        return TransientPlatform(
            engine,
            strategy,
            power_model=power_model,
            clock=clock,
            config=TransientPlatformConfig(**config_kwargs),
            store=SnapshotStore(self.store_slots),
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"strategy": self.strategy}
        if self.strategy_params:
            payload["strategy_params"] = _plain(self.strategy_params)
        if self.engine != "machine":
            payload["engine"] = self.engine
        if self.engine_params:
            payload["engine_params"] = _plain(self.engine_params)
        if self.program is not None:
            payload["program"] = self.program
        if self.program_params:
            payload["program_params"] = _plain(self.program_params)
        if self.machine_params:
            payload["machine_params"] = _plain(self.machine_params)
        if self.power_model is not None:
            payload["power_model"] = self.power_model
        if self.clock_frequency is not None:
            payload["clock_frequency"] = self.clock_frequency
        if self.clock_voltage != 3.0:
            payload["clock_voltage"] = self.clock_voltage
        if self.store_slots != 2:
            payload["store_slots"] = self.store_slots
        if self.config:
            payload["config"] = _plain(self.config)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlatformSpec":
        _check_keys(
            payload,
            ["strategy", "strategy_params", "engine", "engine_params",
             "program", "program_params", "machine_params", "power_model",
             "clock_frequency", "clock_voltage", "store_slots", "config"],
            "platform spec",
        )
        if "strategy" not in payload:
            raise SpecError("platform spec needs a 'strategy'")
        return cls(
            strategy=payload["strategy"],
            strategy_params=dict(payload.get("strategy_params", {})),
            engine=payload.get("engine", "machine"),
            engine_params=dict(payload.get("engine_params", {})),
            program=payload.get("program"),
            program_params=dict(payload.get("program_params", {})),
            machine_params=dict(payload.get("machine_params", {})),
            power_model=payload.get("power_model"),
            clock_frequency=payload.get("clock_frequency"),
            clock_voltage=payload.get("clock_voltage", 3.0),
            store_slots=payload.get("store_slots", 2),
            config=dict(payload.get("config", {})),
        )


def _platform_config_fields() -> List[str]:
    from repro.transient.base import TransientPlatformConfig

    return [f.name for f in dataclasses.fields(TransientPlatformConfig)]


def _machine_config_fields() -> List[str]:
    from repro.mcu.machine import MachineConfig

    return [f.name for f in dataclasses.fields(MachineConfig)]


# ---------------------------------------------------------------------------
# Scenario spec
# ---------------------------------------------------------------------------


#: Top-level scalar fields that sweeps may override by bare name.
_SWEEPABLE_SCALARS = ("dt", "duration", "decimate", "kernel", "seed")


@dataclass(frozen=True)
class _OverrideTarget:
    """One place a sweep override can land."""

    qualified: str
    aliases: Tuple[str, ...]
    param: str
    apply: Callable[[Any], "ScenarioSpec"]


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable, runnable scenario description."""

    name: str = "scenario"
    dt: float = 50e-6
    duration: float = 1.0
    storage: StorageSpec = field(
        default_factory=lambda: StorageSpec("capacitor", {"capacitance": 22e-6})
    )
    harvesters: Tuple[HarvesterSpec, ...] = ()
    platform: Optional[PlatformSpec] = None
    loads: Tuple[LoadSpec, ...] = ()
    decimate: int = 1
    stop_on_completion: bool = False
    kernel: str = "reference"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.sim.kernel import validate_kernel

        if self.dt <= 0.0:
            raise SpecError(f"dt must be positive, got {self.dt!r}")
        if self.duration <= 0.0:
            raise SpecError(f"duration must be positive, got {self.duration!r}")
        if self.decimate < 1:
            raise SpecError(f"decimate must be >= 1, got {self.decimate!r}")
        if self.seed is not None and (
            isinstance(self.seed, bool) or not isinstance(self.seed, int)
            or self.seed < 0
        ):
            raise SpecError(
                f"seed must be a non-negative integer or None, got {self.seed!r}"
            )
        try:
            validate_kernel(self.kernel)
        except ValueError as error:
            raise SpecError(str(error)) from error
        object.__setattr__(self, "harvesters", tuple(self.harvesters))
        object.__setattr__(self, "loads", tuple(self.loads))

    # -- building / running ---------------------------------------------

    def build(self):
        """Wire up the :class:`EnergyDrivenSystem` this spec describes."""
        from repro.core.system import EnergyDrivenSystem
        from repro.harvest.base import PowerHarvester, VoltageHarvester

        system = EnergyDrivenSystem(dt=self.dt, kernel=self.kernel)
        storage = create("storage", self.storage.kind, self.storage.params)
        system.set_storage(storage)
        for index, spec in enumerate(self.harvesters):
            harvester = create(
                "harvester", spec.kind, self._harvester_params(index, spec)
            )
            if isinstance(harvester, VoltageHarvester):
                if spec.converter is not None or spec.mppt is not None:
                    raise SpecError(
                        f"harvester {spec.kind!r} is voltage-domain; it takes "
                        "a rectifier, not a converter/mppt"
                    )
                rectifier = (
                    create("rectifier", spec.rectifier, spec.rectifier_params)
                    if spec.rectifier is not None
                    else None
                )
                system.add_voltage_source(harvester, rectifier)
            elif isinstance(harvester, PowerHarvester):
                if spec.rectifier is not None:
                    raise SpecError(
                        f"harvester {spec.kind!r} is power-domain; it takes a "
                        "converter/mppt, not a rectifier"
                    )
                converter = (
                    create("converter", spec.converter, spec.converter_params)
                    if spec.converter is not None
                    else None
                )
                mppt = (
                    create("mppt", spec.mppt, spec.mppt_params)
                    if spec.mppt is not None
                    else None
                )
                system.add_power_source(harvester, converter=converter, mppt=mppt)
            else:
                raise SpecError(
                    f"harvester {spec.kind!r} built a {type(harvester).__name__}, "
                    "which is neither a VoltageHarvester nor a PowerHarvester"
                )
        if self.platform is not None:
            platform = self.platform.build(
                default_rail_capacitance=getattr(storage, "capacitance", None)
            )
            system.set_platform(platform)
            if self.stop_on_completion:
                # Completion can only happen on the workload's halting
                # step, which the engine's active_plan always leaves to
                # per-step execution: safe to keep chunking.
                system.stop_when(
                    lambda t: platform.metrics.first_completion_time is not None,
                    chunk_safe=True,
                )
        for load in self.loads:
            system.add_load(create("load", load.kind, load.params))
        return system

    def _harvester_params(self, index: int, spec: HarvesterSpec) -> Dict[str, Any]:
        """Harvester factory kwargs, with the scenario seed threaded in.

        When the scenario carries a ``seed``, every RNG-backed harvester
        whose factory accepts one (and whose spec does not pin it
        explicitly) is seeded ``seed + index`` — deterministic per grid
        point and part of the spec dict, so it participates in the
        results pipeline's spec hash (reproducible *and* cache-keyable).
        """
        if self.seed is None or "seed" in spec.params:
            return spec.params
        accepted, _ = accepted_parameters("harvester", spec.kind)
        if "seed" not in accepted:
            return spec.params
        return dict(spec.params, seed=self.seed + index)

    def run(self, duration: Optional[float] = None):
        """Build and run; returns the :class:`SystemRunResult`."""
        return self.build().run(
            self.duration if duration is None else duration,
            decimate=self.decimate,
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "dt": self.dt,
            "duration": self.duration,
            "storage": self.storage.to_dict(),
            "harvesters": [h.to_dict() for h in self.harvesters],
        }
        if self.platform is not None:
            payload["platform"] = self.platform.to_dict()
        if self.loads:
            payload["loads"] = [l.to_dict() for l in self.loads]
        if self.decimate != 1:
            payload["decimate"] = self.decimate
        if self.stop_on_completion:
            payload["stop_on_completion"] = True
        if self.kernel != "reference":
            payload["kernel"] = self.kernel
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        _check_keys(
            payload,
            ["name", "dt", "duration", "storage", "harvesters", "platform",
             "loads", "decimate", "stop_on_completion", "kernel", "seed"],
            "scenario spec",
        )
        if "storage" not in payload:
            raise SpecError("scenario spec needs a 'storage' section")
        platform = payload.get("platform")
        if platform is not None:
            # An explicitly present (even empty) platform section must
            # validate as one, not be silently dropped.
            platform = PlatformSpec.from_dict(platform)
        return cls(
            name=payload.get("name", "scenario"),
            dt=payload.get("dt", 50e-6),
            duration=payload.get("duration", 1.0),
            storage=StorageSpec.from_dict(payload["storage"]),
            harvesters=tuple(
                HarvesterSpec.from_dict(h) for h in payload.get("harvesters", [])
            ),
            platform=platform,
            loads=tuple(LoadSpec.from_dict(l) for l in payload.get("loads", [])),
            decimate=payload.get("decimate", 1),
            stop_on_completion=payload.get("stop_on_completion", False),
            kernel=payload.get("kernel", "reference"),
            seed=payload.get("seed"),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid scenario JSON: {error}") from error
        if not isinstance(payload, dict):
            raise SpecError("scenario JSON must be an object")
        return cls.from_dict(payload)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "ScenarioSpec":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())

    # -- sweeps ----------------------------------------------------------

    def _override_targets(self) -> List[_OverrideTarget]:
        targets: List[_OverrideTarget] = []

        for scalar in _SWEEPABLE_SCALARS:
            targets.append(_OverrideTarget(
                qualified=scalar, aliases=(), param=scalar,
                apply=lambda v, _f=scalar: replace(self, **{_f: v}),
            ))

        def storage_setter(param: str):
            def apply(value: Any) -> "ScenarioSpec":
                params = dict(self.storage.params)
                params[param] = value
                return replace(self, storage=replace(self.storage, params=params))
            return apply

        for param in accepted_parameters("storage", self.storage.kind)[0]:
            targets.append(_OverrideTarget(
                qualified=f"storage__{param}", aliases=(), param=param,
                apply=storage_setter(param),
            ))

        def harvester_setter(index: int, param: str):
            def apply(value: Any) -> "ScenarioSpec":
                harvesters = list(self.harvesters)
                params = dict(harvesters[index].params)
                params[param] = value
                harvesters[index] = replace(harvesters[index], params=params)
                return replace(self, harvesters=tuple(harvesters))
            return apply

        for index, harvester in enumerate(self.harvesters):
            for param in accepted_parameters("harvester", harvester.kind)[0]:
                aliases = (f"harvester__{param}",) if len(self.harvesters) == 1 else ()
                targets.append(_OverrideTarget(
                    qualified=f"harvester{index}__{param}", aliases=aliases,
                    param=param, apply=harvester_setter(index, param),
                ))

        if self.platform is not None:
            def platform_dict_setter(field_name: str, param: str):
                def apply(value: Any) -> "ScenarioSpec":
                    params = dict(getattr(self.platform, field_name))
                    params[param] = value
                    return replace(
                        self, platform=replace(self.platform, **{field_name: params})
                    )
                return apply

            sections = [
                ("strategy",
                 accepted_parameters("strategy", self.platform.strategy)[0],
                 "strategy_params"),
                ("config", _platform_config_fields(), "config"),
            ]
            if self.platform.engine == "synthetic":
                sections.append(
                    ("engine", accepted_parameters("engine", "synthetic")[0],
                     "engine_params")
                )
            else:
                sections.append(
                    ("program",
                     accepted_parameters("program", self.platform.program)[0],
                     "program_params")
                )
                sections.append(("machine", _machine_config_fields(),
                                 "machine_params"))
            for prefix, names, field_name in sections:
                for param in names:
                    targets.append(_OverrideTarget(
                        qualified=f"{prefix}__{param}", aliases=(), param=param,
                        apply=platform_dict_setter(field_name, param),
                    ))

            def platform_scalar_setter(field_name: str):
                def apply(value: Any) -> "ScenarioSpec":
                    return replace(
                        self, platform=replace(self.platform, **{field_name: value})
                    )
                return apply

            for scalar in ("strategy", "clock_frequency", "clock_voltage",
                           "store_slots", "power_model"):
                # Bare keys resolve through the param-name branch; only the
                # qualified form needs listing here.  'strategy' swaps the
                # checkpointing strategy *kind* (strategy_params must suit
                # every kind swept — PlatformSpec revalidates per point),
                # which is what lets explorations search over strategies.
                targets.append(_OverrideTarget(
                    qualified=f"platform__{scalar}", aliases=(),
                    param=scalar, apply=platform_scalar_setter(scalar),
                ))

        return targets

    def with_override(self, key: str, value: Any) -> "ScenarioSpec":
        """A copy of this spec with one parameter replaced.

        ``key`` is either a bare parameter name (resolved by unique match
        across storage, harvesters, strategy, engine, program, machine and
        platform config parameters — e.g. ``"capacitance"``) or a
        qualified ``section__param`` path (``"storage__capacitance"``,
        ``"harvester0__frequency"``, ``"config__v_min"``).
        """
        targets = self._override_targets()
        if "__" in key or key in _SWEEPABLE_SCALARS:
            matches = [t for t in targets
                       if key == t.qualified or key in t.aliases]
        else:
            matches = [t for t in targets if key == t.param]
        if not matches:
            known = sorted({t.param for t in targets})
            raise SpecError(
                f"override key {key!r} matches nothing in scenario "
                f"{self.name!r}; bare sweepable parameters: {known}"
            )
        if len(matches) > 1:
            choices = sorted(t.qualified for t in matches)
            raise SpecError(
                f"override key {key!r} is ambiguous; qualify it as one of "
                f"{choices}"
            )
        return matches[0].apply(value)

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """Apply several :meth:`with_override` replacements at once."""
        spec = self
        for key, value in overrides.items():
            spec = spec.with_override(key, value)
        return spec

    def sweep(self, **grid: Sequence[Any]) -> List["ScenarioSpec"]:
        """Expand a parameter grid into one spec per grid point.

        ``spec.sweep(capacitance=[10e-6, 22e-6, 47e-6], frequency=[2, 10, 40])``
        produces the 9-point cartesian product, in deterministic order
        (later keys vary fastest).  Keys follow :meth:`with_override`
        resolution.  Use :class:`repro.spec.runner.SweepRunner` to execute
        the grid in parallel.
        """
        return [self.with_overrides(point) for point in expand_grid(grid)]


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """The cartesian product of a parameter grid as override mappings.

    Order is deterministic: keys keep their mapping order and later keys
    vary fastest, matching nested for-loops.
    """
    if not grid:
        return [{}]
    keys = list(grid)
    for key in keys:
        values = grid[key]
        if not isinstance(values, (list, tuple)) or len(values) == 0:
            raise SpecError(
                f"sweep grid values for {key!r} must be a non-empty "
                f"list/tuple, got {values!r}"
            )
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[key] for key in keys))
    ]
