"""Named scenario presets: the paper's figure scenarios as specs.

These are the declarative equivalents of the hand-wired scenarios the CLI
and examples used to build imperatively.  ``python -m repro.cli spec
fig7`` dumps one as JSON; edit it and feed it back with ``run``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from repro.errors import SpecError
from repro.spec.specs import (
    HarvesterSpec,
    LoadSpec,
    PlatformSpec,
    ScenarioSpec,
    StorageSpec,
)


def fig7_spec(
    fft_size: int = 512,
    supply_hz: float = 4.7,
    duration: float = 1.2,
    capacitance: float = 22e-6,
    source_resistance: float = 1500.0,
) -> ScenarioSpec:
    """Fig. 7: Hibernus computing an FFT from a half-wave rectified supply."""
    return ScenarioSpec(
        name=f"fig7-fft{fft_size}",
        dt=50e-6,
        duration=duration,
        storage=StorageSpec(
            "capacitor", {"capacitance": capacitance, "v_max": 3.3}
        ),
        harvesters=(
            HarvesterSpec(
                "signal-generator",
                {
                    "amplitude": 4.5,
                    "frequency": supply_hz,
                    "rectified": True,
                    "source_resistance": source_resistance,
                },
            ),
        ),
        platform=PlatformSpec(
            strategy="hibernus",
            program="fft",
            program_params={"n": fft_size},
            machine_params={"data_space_words": max(2048, 4 * fft_size)},
        ),
    )


def quickstart_spec() -> ScenarioSpec:
    """The README/Fig. 6 quickstart: fig7 with the bench-supply impedance."""
    return dataclasses.replace(
        fig7_spec(duration=1.0, source_resistance=1200.0), name="quickstart"
    )


def crossover_spec(
    strategy: str = "hibernus",
    frequency: float = 10.0,
    total_cycles: int = 4_000_000,
    duration: float = 30.0,
) -> ScenarioSpec:
    """One Eq. (5) crossover point: energy to finish a fixed workload.

    The supply is the Eq. 5 bench waveform — a trapezoid between 3.2 V
    and 1.6 V at the given interruption ``frequency`` — feeding the rail
    through an ideal-diode rectifier; a bleed resistor makes the rail
    genuinely follow the down-ramp.  ``stop_on_completion`` ends each run
    as soon as the workload finishes, exactly like the imperative loop
    this replaces.
    """
    if strategy == "hibernus":
        strategy_params = {"v_hibernate": 2.8, "v_restore": 3.0}
        power_model = "msp430-sram"
    elif strategy == "quickrecall":
        strategy_params = {"v_hibernate": 2.1, "v_restore": 3.0}
        power_model = "msp430-fram"
    else:
        raise SpecError(
            f"crossover preset knows 'hibernus' and 'quickrecall', "
            f"not {strategy!r}"
        )
    return ScenarioSpec(
        name=f"crossover-{strategy}",
        dt=1e-4,
        duration=duration,
        stop_on_completion=True,
        storage=StorageSpec("capacitor", {"capacitance": 22e-6, "v_max": 3.3}),
        harvesters=(
            HarvesterSpec(
                "trapezoid-supply",
                {"frequency": frequency, "source_resistance": 10.0},
                rectifier="half-wave",
                rectifier_params={"forward_drop": 0.0, "on_resistance": 0.1},
            ),
        ),
        loads=(LoadSpec("resistive", {"resistance": 560.0}),),
        platform=PlatformSpec(
            strategy=strategy,
            strategy_params=strategy_params,
            engine="synthetic",
            engine_params={"total_cycles": total_cycles},
            power_model=power_model,
        ),
    )


_PRESETS: Dict[str, Callable[..., ScenarioSpec]] = {
    "fig7": fig7_spec,
    "quickstart": quickstart_spec,
    "crossover-hibernus": lambda **kw: crossover_spec("hibernus", **kw),
    "crossover-quickrecall": lambda **kw: crossover_spec("quickrecall", **kw),
}


def preset_names() -> List[str]:
    """The available preset names."""
    return sorted(_PRESETS)


def preset(name: str, **kwargs) -> ScenarioSpec:
    """Build a named preset scenario.

    Raises:
        SpecError: for unknown names, listing the valid ones.
    """
    factory = _PRESETS.get(name)
    if factory is None:
        raise SpecError(
            f"unknown preset {name!r}; available presets: {preset_names()}"
        )
    return factory(**kwargs)
