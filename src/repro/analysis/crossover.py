"""Empirical crossover finding for the Eq. (5) experiment."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError


def find_crossover(
    xs: Sequence[float],
    ys_a: Sequence[float],
    ys_b: Sequence[float],
) -> Optional[float]:
    """The x where curve A stops beating curve B (sign change of A - B).

    Values are compared pointwise; the crossing is linearly interpolated
    between the bracketing samples.  Returns None when the difference never
    changes sign (one curve dominates over the whole sweep).

    Args:
        xs: strictly increasing sweep values.
        ys_a / ys_b: metric per sweep point (same orientation: lower or
            higher is better for both — the caller decides).
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ConfigurationError("sequences must share a length")
    if len(xs) < 2:
        raise ConfigurationError("need at least two sweep points")
    for i in range(1, len(xs)):
        if xs[i] <= xs[i - 1]:
            raise ConfigurationError("xs must be strictly increasing")
    diffs = [a - b for a, b in zip(ys_a, ys_b)]
    for i in range(1, len(diffs)):
        d0, d1 = diffs[i - 1], diffs[i]
        if d0 == 0.0:
            return float(xs[i - 1])
        if (d0 < 0.0) != (d1 < 0.0):
            frac = abs(d0) / (abs(d0) + abs(d1))
            return float(xs[i - 1] + frac * (xs[i] - xs[i - 1]))
    return None
