"""Empirical crossover finding for the Eq. (5) experiment.

:func:`find_crossover` is the numeric core over bare curves;
:func:`crossover_from_store` lifts it onto the results pipeline — it
selects two series out of a :class:`~repro.results.store.ResultStore`
by a grouping column (typically the scenario ``name``), aligns them on
a shared x column and interpolates the crossing, which is how the CLI's
``crossover`` experiment runs since the pipeline refactor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results.run_result import RunResult
    from repro.results.store import ResultStore


def find_crossover(
    xs: Sequence[float],
    ys_a: Sequence[float],
    ys_b: Sequence[float],
) -> Optional[float]:
    """The x where curve A stops beating curve B (sign change of A - B).

    Values are compared pointwise; the crossing is linearly interpolated
    between the bracketing samples.  Returns None when the difference never
    changes sign (one curve dominates over the whole sweep).

    Args:
        xs: strictly increasing sweep values.
        ys_a / ys_b: metric per sweep point (same orientation: lower or
            higher is better for both — the caller decides).
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ConfigurationError("sequences must share a length")
    if len(xs) < 2:
        raise ConfigurationError("need at least two sweep points")
    for i in range(1, len(xs)):
        if xs[i] <= xs[i - 1]:
            raise ConfigurationError("xs must be strictly increasing")
    diffs = [a - b for a, b in zip(ys_a, ys_b)]
    for i in range(1, len(diffs)):
        d0, d1 = diffs[i - 1], diffs[i]
        if d0 == 0.0:
            return float(xs[i - 1])
        if (d0 < 0.0) != (d1 < 0.0):
            frac = abs(d0) / (abs(d0) + abs(d1))
            return float(xs[i - 1] + frac * (xs[i] - xs[i - 1]))
    return None


def series_from_store(
    store: "ResultStore", x: str, y: str, **filters: Any
) -> Tuple[List[float], List[float], List["RunResult"]]:
    """One (xs, ys, rows) series out of a store, sorted by ascending x.

    Rows are selected by column-equality ``filters`` (e.g.
    ``name="crossover-hibernus"``); rows missing either column — failed
    points — are dropped, so an infeasible corner shortens the series
    instead of poisoning the interpolation.
    """
    rows = [
        result
        for result in store.select(**filters)
        if result.get(x) is not None and result.get(y) is not None
    ]
    rows.sort(key=lambda result: float(result[x]))
    return (
        [float(result[x]) for result in rows],
        [float(result[y]) for result in rows],
        rows,
    )


def crossover_from_store(
    store: "ResultStore",
    x: str,
    y: str,
    group: str,
    a: Any,
    b: Any,
) -> Optional[float]:
    """The empirical crossover between two stored sweep series.

    Series ``a`` and ``b`` are the rows whose ``group`` column equals
    each value (typically ``group="name"`` distinguishing the two base
    scenarios of an Eq. (5) experiment).  Both series must cover the same
    x grid — a point that failed in one series is excluded from both.
    """
    xs_a, ys_a, _ = series_from_store(store, x, y, **{group: a})
    xs_b, ys_b, _ = series_from_store(store, x, y, **{group: b})
    shared = sorted(set(xs_a) & set(xs_b))
    if len(shared) < 2:
        return None
    map_a = dict(zip(xs_a, ys_a))
    map_b = dict(zip(xs_b, ys_b))
    return find_crossover(
        shared, [map_a[v] for v in shared], [map_b[v] for v in shared]
    )
