"""Analysis utilities shared by tests, benchmarks and examples."""

from repro.analysis.crossover import find_crossover
from repro.analysis.pareto import pareto_points
from repro.analysis.report import format_table, series_summary

__all__ = ["find_crossover", "pareto_points", "format_table", "series_summary"]
