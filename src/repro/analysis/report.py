"""Plain-text report formatting for benchmark output.

The benchmarks print the same rows/series the paper's figures show; these
helpers keep that output aligned and readable in a terminal or a log file.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with per-column width fitting."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
        cells.append([_fmt(value) for value in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def series_summary(name: str, values: Sequence[float]) -> str:
    """One-line min/mean/max summary of a numeric series."""
    if len(values) == 0:
        return f"{name}: (empty)"
    array = np.asarray(values, dtype=float)
    return (
        f"{name}: n={array.size} min={array.min():.4g} "
        f"mean={array.mean():.4g} max={array.max():.4g}"
    )


def bullet_list(items: Sequence[str]) -> str:
    """Indented bullet list."""
    return "\n".join(f"  - {item}" for item in items)


def print_section(title: str, body: str = "") -> None:
    """Print a titled section (used by benchmark harnesses)."""
    bar = "=" * max(8, len(title))
    print(f"\n{bar}\n{title}\n{bar}")
    if body:
        print(body)


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (inf-safe)."""
    if reference == 0.0:
        return float("inf") if measured != 0.0 else 0.0
    return abs(measured - reference) / abs(reference)
