"""Pareto-frontier extraction over (cost, benefit) pairs.

Two entry points: :func:`pareto_points` is the numeric core over bare
sequences; :func:`pareto_from_store` runs the same dominance rule over a
:class:`~repro.results.store.ResultStore` and hands back the
non-dominated :class:`RunResult` rows themselves, so downstream tools
keep the full metric row (and spec hash) of every frontier design.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results.run_result import RunResult
    from repro.results.store import ResultStore


def pareto_points(
    costs: Sequence[float], benefits: Sequence[float]
) -> List[Tuple[float, float]]:
    """Non-dominated (cost, benefit) pairs, sorted by ascending cost.

    A point dominates another when it has lower-or-equal cost and strictly
    higher benefit (or equal benefit at strictly lower cost).
    """
    if len(costs) != len(benefits):
        raise ConfigurationError("costs and benefits must share a length")
    pairs = sorted(zip(costs, benefits), key=lambda p: (p[0], -p[1]))
    frontier: List[Tuple[float, float]] = []
    best = float("-inf")
    for cost, benefit in pairs:
        if benefit > best:
            frontier.append((cost, benefit))
            best = benefit
    return frontier


def pareto_from_store(
    store: "ResultStore",
    cost: str,
    benefit: str,
    *,
    maximize_benefit: bool = True,
) -> List["RunResult"]:
    """The store rows on the (cost, benefit) Pareto frontier.

    Columns resolve like :meth:`RunResult.__getitem__` (overrides first,
    then metrics); rows missing either column — failed points, or
    scenarios a contributing extractor marked not-applicable — are
    excluded rather than treated as zero.  ``maximize_benefit=False``
    flips the benefit axis (minimise both), e.g. energy vs completion
    time.  Dominance matches :func:`pareto_points` exactly.
    """
    candidates = [
        result for result in store
        if result.get(cost) is not None and result.get(benefit) is not None
    ]
    if not candidates:
        raise ConfigurationError(
            f"no stored result records both {cost!r} and {benefit!r}"
        )
    sign = 1.0 if maximize_benefit else -1.0
    ordered = sorted(
        candidates, key=lambda r: (float(r[cost]), -sign * float(r[benefit]))
    )
    frontier: List["RunResult"] = []
    best = float("-inf")
    for result in ordered:
        value = sign * float(result[benefit])
        if value > best:
            frontier.append(result)
            best = value
    return frontier
