"""Generic Pareto-frontier extraction over (cost, benefit) pairs."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def pareto_points(
    costs: Sequence[float], benefits: Sequence[float]
) -> List[Tuple[float, float]]:
    """Non-dominated (cost, benefit) pairs, sorted by ascending cost.

    A point dominates another when it has lower-or-equal cost and strictly
    higher benefit (or equal benefit at strictly lower cost).
    """
    if len(costs) != len(benefits):
        raise ConfigurationError("costs and benefits must share a length")
    pairs = sorted(zip(costs, benefits), key=lambda p: (p[0], -p[1]))
    frontier: List[Tuple[float, float]] = []
    best = float("-inf")
    for cost, benefit in pairs:
        if benefit > best:
            frontier.append((cost, benefit))
            best = benefit
    return frontier
