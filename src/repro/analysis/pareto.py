"""Pareto-frontier extraction over multi-objective results.

Three entry points: :func:`pareto_points` is the numeric core over bare
(cost, benefit) sequences; :func:`non_dominated_indices` is the general
k-objective dominance filter (all objectives minimized) that the
exploration engine's evolutionary optimizer ranks populations with; and
:func:`pareto_from_store` runs the same dominance rule over a
:class:`~repro.results.store.ResultStore` and hands back the
non-dominated :class:`RunResult` rows themselves, so downstream tools
keep the full metric row (and spec hash) of every frontier design.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results.run_result import RunResult
    from repro.results.store import ResultStore


def pareto_points(
    costs: Sequence[float], benefits: Sequence[float]
) -> List[Tuple[float, float]]:
    """Non-dominated (cost, benefit) pairs, sorted by ascending cost.

    A point dominates another when it has lower-or-equal cost and strictly
    higher benefit (or equal benefit at strictly lower cost).
    """
    if len(costs) != len(benefits):
        raise ConfigurationError("costs and benefits must share a length")
    pairs = sorted(zip(costs, benefits), key=lambda p: (p[0], -p[1]))
    frontier: List[Tuple[float, float]] = []
    best = float("-inf")
    for cost, benefit in pairs:
        if benefit > best:
            frontier.append((cost, benefit))
            best = benefit
    return frontier


def non_dominated_indices(rows: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the rows no other row dominates (minimise everything).

    ``rows`` is a point per entry, one value per objective, every
    objective oriented so lower is better (callers flip signs for
    maximised metrics).  Row *a* dominates row *b* when it is
    less-or-equal in every objective and strictly less in at least one;
    duplicated points dominate nothing, so ties all stay on the
    frontier.  Non-finite values (NaN/inf) mark an infeasible point:
    such rows are never returned and never dominate.

    Returns indices in input order — stable, so callers can zip them
    back onto whatever the rows summarised.
    """
    if not rows:
        return []
    width = len(rows[0])
    for row in rows:
        if len(row) != width:
            raise ConfigurationError(
                "every row must have one value per objective"
            )
    feasible = [
        i for i, row in enumerate(rows)
        if all(math.isfinite(float(v)) for v in row)
    ]

    def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    return [
        i for i in feasible
        if not any(
            dominates(rows[j], rows[i]) for j in feasible if j != i
        )
    ]


def pareto_from_store(
    store: "ResultStore",
    cost: str,
    benefit: str,
    *,
    maximize_benefit: bool = True,
) -> List["RunResult"]:
    """The store rows on the (cost, benefit) Pareto frontier.

    Columns resolve like :meth:`RunResult.__getitem__` (overrides first,
    then metrics).  Failed points, rows with non-finite (NaN/inf) or
    non-numeric values, and sub-full-fidelity screening rows (the
    exploration driver's shortened-horizon evaluations, which
    accumulate less of every metric) are skipped *with a warning*
    rather than corrupting the dominance ordering — error rows in
    particular would otherwise compete on their override columns alone.
    Rows an extractor marked not-applicable (either column None) are
    silently excluded, as before.  ``maximize_benefit=False`` flips the
    benefit axis (minimise both), e.g. energy vs completion time.
    Dominance matches :func:`pareto_points` exactly.
    """
    from repro.results.store import rankable_results

    candidates = rankable_results(
        store, (cost, benefit),
        describe=f"pareto_from_store({cost!r}, {benefit!r})",
    )
    if not candidates:
        raise ConfigurationError(
            f"no stored result records both {cost!r} and {benefit!r}"
        )
    sign = 1.0 if maximize_benefit else -1.0
    ordered = sorted(
        candidates, key=lambda r: (float(r[cost]), -sign * float(r[benefit]))
    )
    frontier: List["RunResult"] = []
    best = float("-inf")
    for result in ordered:
        value = sign * float(result[benefit])
        if value > best:
            frontier.append(result)
            best = value
    return frontier
