"""QuickRecall: unified-FRAM transient computing (ref [8]).

Data and program both live in FRAM, so the only volatile state is the
register file.  The snapshot is therefore tiny (registers + PC), V_H can
sit barely above V_min, and snapshot/restore are near-instant — but the
device pays FRAM's higher access energy and quiescent power *all the time*,
the trade expression (5) quantifies.

Requires an engine whose data memory is non-volatile
(``MachineConfig(data_in_fram=True)`` or a synthetic engine configured with
register-sized snapshots).
"""

from __future__ import annotations

from typing import Optional

from repro.transient.hibernus import Hibernus
from repro.spec.registry import register


@register("quickrecall", kind="strategy")
class QuickRecall(Hibernus):
    """Register-only snapshot at a low threshold (see module docstring)."""

    name = "quickrecall"

    def __init__(
        self,
        v_hibernate: Optional[float] = None,
        v_restore: float = 2.6,
        margin: float = 1.5,
        min_headroom: float = 0.1,
    ):
        # The register snapshot is so cheap that Eq. (4) would put V_H
        # within millivolts of V_min; the comparator headroom floor, not
        # the energy balance, sets the threshold in practice.
        super().__init__(
            v_hibernate=v_hibernate,
            v_restore=v_restore,
            margin=margin,
            min_headroom=min_headroom,
            full_snapshot=False,
        )
