"""The transient platform: an MCU device attached to a supply rail.

:class:`TransientPlatform` is the :class:`~repro.power.rail.RailLoad` that
every checkpointing strategy drives.  It owns:

* a :class:`~repro.mcu.engine.ComputeEngine` (the interpreter or a
  synthetic workload),
* a :class:`~repro.mcu.power_model.McuPowerModel` and
  :class:`~repro.mcu.clock.ClockPlan`,
* a :class:`SnapshotStore` (NVM snapshot slots with atomic commit),
* a five-state machine: OFF, SLEEP, ACTIVE, SNAPSHOT, RESTORE.

The *strategy* decides transitions through callbacks; the platform enforces
the physics: brownout below ``v_min`` kills volatile state and aborts any
in-flight snapshot/restore, operations take real time and energy, and all
consumption is drawn from the rail.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError, SnapshotError
from repro.mcu.clock import ClockPlan
from repro.mcu.engine import ComputeEngine
from repro.mcu.power_model import FRAM_TECH, SRAM_TECH, McuPowerModel
from repro.power.rail import RailLoad
from repro.results.metrics import register_metric
from repro.sim.kernel import LoadProfile
from repro.spec.registry import register


class PlatformState(enum.Enum):
    """Device power/execution state."""

    OFF = "off"
    SLEEP = "sleep"
    ACTIVE = "active"
    SNAPSHOT = "snapshot"
    RESTORE = "restore"


class SnapshotStore:
    """NVM snapshot slots with atomic commit.

    Writes go to the slot *after* the current one; only :meth:`commit`
    makes it visible.  An aborted write (brownout mid-snapshot) therefore
    never corrupts the last good snapshot — with at least two slots, which
    is the default.  A single-slot store models designs that bet on the
    Eq. (4) guarantee instead (an aborted write loses everything).
    """

    def __init__(self, slots: int = 2):
        if slots < 1:
            raise ConfigurationError(f"need at least one slot, got {slots}")
        self._slots: List[Optional[tuple]] = [None] * slots
        self._current = -1
        self._writing = -1
        self._pending: Optional[tuple] = None
        self.sequence = 0
        self.words_written = 0
        self.aborted_writes = 0

    @property
    def slot_count(self) -> int:
        """Number of snapshot slots."""
        return len(self._slots)

    def has_snapshot(self) -> bool:
        """True when a committed snapshot exists."""
        return self._current >= 0

    def latest(self) -> Any:
        """The most recently committed snapshot payload.

        Raises:
            SnapshotError: when nothing has been committed.
        """
        if not self.has_snapshot():
            raise SnapshotError("no committed snapshot")
        return self._slots[self._current][0]

    def latest_words(self) -> int:
        """NVM word count of the most recently committed snapshot."""
        if not self.has_snapshot():
            raise SnapshotError("no committed snapshot")
        return self._slots[self._current][1]

    def begin_write(self, payload: Any, words: int) -> None:
        """Start writing ``payload`` (``words`` NVM words) to the next slot."""
        self._writing = (self._current + 1) % len(self._slots)
        self._pending = (payload, words)
        self.words_written += words

    def commit(self) -> None:
        """Atomically publish the in-flight write."""
        if self._writing < 0:
            raise SnapshotError("commit without begin_write")
        self._slots[self._writing] = self._pending
        self._current = self._writing
        self._writing = -1
        self._pending = None
        self.sequence += 1

    def abort(self) -> None:
        """Discard the in-flight write (supply died mid-snapshot).

        With one slot the previous snapshot is also lost — the slot was
        being overwritten.
        """
        if self._writing < 0:
            return
        if len(self._slots) == 1:
            self._slots[0] = None
            self._current = -1
        self._writing = -1
        self._pending = None
        self.aborted_writes += 1

    def invalidate(self) -> None:
        """Drop all snapshots (fresh deployment)."""
        self._slots = [None] * len(self._slots)
        self._current = -1
        self._writing = -1
        self._pending = None


@dataclass(frozen=True)
class TransientPlatformConfig:
    """Electrical/boot parameters of the device.

    Attributes:
        v_min: brownout voltage; below it all volatile state is lost (the
            paper's expression (2) right-hand side).
        v_por: power-on-reset voltage; rising past it from OFF boots the
            device (the strategy then decides what to do).
        rail_capacitance: the total rail capacitance C the strategy may use
            for Eq. (4) calibration.  It should match the attached storage
            element; strategies that self-calibrate (Hibernus++) ignore it.
        snapshot_frequency: core clock used during snapshot/restore DMA
            (strategies snapshot at a fixed safe frequency).
        on_complete: 'sleep' parks the device when the workload halts;
            'restart' cold-boots the engine for continuous duty.
    """

    v_min: float = 1.8
    v_por: float = 2.0
    rail_capacitance: float = 22e-6
    snapshot_frequency: float = 8e6
    on_complete: str = "sleep"

    def __post_init__(self) -> None:
        if not 0.0 < self.v_min <= self.v_por:
            raise ConfigurationError("need 0 < v_min <= v_por")
        if self.rail_capacitance <= 0.0:
            raise ConfigurationError("rail capacitance must be positive")
        if self.snapshot_frequency <= 0.0:
            raise ConfigurationError("snapshot frequency must be positive")
        if self.on_complete not in ("sleep", "restart"):
            raise ConfigurationError("on_complete must be 'sleep' or 'restart'")


class Strategy:
    """Checkpointing/adaptation policy driven by platform callbacks.

    Callbacks run with the platform in a consistent state and may invoke
    the platform's transition methods (:meth:`TransientPlatform.go_active`,
    :meth:`~TransientPlatform.go_sleep`,
    :meth:`~TransientPlatform.begin_snapshot`,
    :meth:`~TransientPlatform.begin_restore`).
    """

    name = "abstract"

    def configure(self, platform: "TransientPlatform") -> None:
        """One-time design/boot-time calibration hook."""

    def on_boot(self, platform: "TransientPlatform", t: float, v: float) -> None:
        """Device crossed v_por from OFF.  Decide restore/cold start/sleep."""
        raise NotImplementedError

    def on_active(self, platform: "TransientPlatform", t: float, v: float) -> None:
        """Called every step while ACTIVE, before cycles execute."""

    def on_sleep(self, platform: "TransientPlatform", t: float, v: float) -> None:
        """Called every step while SLEEPING."""

    def sleep_wake_threshold(self, platform: "TransientPlatform") -> Optional[float]:
        """The rail voltage at which :meth:`on_sleep` leaves SLEEP, if any.

        The fast kernel's declared event boundary for the sleeping state:
        returning a float asserts that, while ``v`` stays strictly below
        it, :meth:`on_sleep` is a pure no-op.  Strategies whose
        ``on_sleep`` is the base no-op wake never (``math.inf``); a
        strategy with an overridden ``on_sleep`` and no declared
        threshold returns None, which keeps its sleep per-step.
        """
        if type(self).on_sleep is Strategy.on_sleep:
            return math.inf
        return None

    def active_guard(self, platform: "TransientPlatform") -> Optional[float]:
        """The rail voltage at-or-below which :meth:`on_active` acts, if any.

        The fast kernel's declared event boundary for the ACTIVE state:
        returning a float asserts that, while the rail voltage stays
        *strictly above* it, :meth:`on_active` is a pure no-op (no
        snapshot trigger, no state transition, no mutation).  Strategies
        whose ``on_active`` is the base no-op never act (``-math.inf``);
        a strategy with an overridden ``on_active`` and no declared
        guard returns None, which keeps its ACTIVE execution per-step.
        (:meth:`on_checkpoint_site` needs no guard: checkpoint pauses
        only ever happen during per-step execution — the engine's
        :meth:`~repro.mcu.engine.ComputeEngine.active_plan` ends every
        chunk strictly before a checkpoint site.)
        """
        if type(self).on_active is Strategy.on_active:
            return -math.inf
        return None

    def on_checkpoint_site(
        self, platform: "TransientPlatform", t: float, v: float
    ) -> None:
        """Execution paused at a ``ckpt`` marker (only when the strategy
        enabled ``stop_at_checkpoints``)."""

    def on_snapshot_complete(
        self, platform: "TransientPlatform", t: float, v: float
    ) -> None:
        """A snapshot write committed."""

    def on_restore_complete(
        self, platform: "TransientPlatform", t: float, v: float
    ) -> None:
        """A restore finished; engine state is the snapshot's."""

    def on_power_fail(self, platform: "TransientPlatform", t: float) -> None:
        """Brownout: volatile state is gone."""

    def reset(self) -> None:
        """Forget adaptive state (fresh deployment)."""


@dataclass
class PlatformMetrics:
    """Counters and energy breakdown accumulated over a run."""

    boots: int = 0
    brownouts: int = 0
    snapshots_started: int = 0
    snapshots_completed: int = 0
    snapshots_aborted: int = 0
    restores_started: int = 0
    restores_completed: int = 0
    restores_aborted: int = 0
    cold_boots: int = 0
    cycles_executed: int = 0
    completions: int = 0
    first_completion_time: Optional[float] = None
    energy: Dict[str, float] = field(
        default_factory=lambda: {
            "active": 0.0,
            "sleep": 0.0,
            "off": 0.0,
            "snapshot": 0.0,
            "restore": 0.0,
            "memory": 0.0,
            "peripheral": 0.0,
        }
    )
    time_in_state: Dict[str, float] = field(
        default_factory=lambda: {state.value: 0.0 for state in PlatformState}
    )

    def total_energy(self) -> float:
        """Total joules consumed across all categories."""
        return sum(self.energy.values())

    def overhead_energy(self) -> float:
        """Joules spent on checkpointing rather than computation."""
        return self.energy["snapshot"] + self.energy["restore"]


@dataclass
class _Operation:
    kind: str  # 'snapshot' | 'restore'
    remaining: float
    power: float
    payload: Any = None


class TransientPlatform(RailLoad):
    """The rail-attached MCU device (see module docstring)."""

    def __init__(
        self,
        engine: ComputeEngine,
        strategy: Strategy,
        power_model: Optional[McuPowerModel] = None,
        clock: Optional[ClockPlan] = None,
        config: Optional[TransientPlatformConfig] = None,
        store: Optional[SnapshotStore] = None,
    ):
        self.engine = engine
        self.strategy = strategy
        self.power_model = power_model or McuPowerModel()
        self.clock = clock or ClockPlan.msp430_like()
        self.config = config or TransientPlatformConfig()
        self.store = store or SnapshotStore()
        self.state = PlatformState.OFF
        self.metrics = PlatformMetrics()
        #: When True, ACTIVE execution pauses at ckpt markers and the
        #: strategy's on_checkpoint_site fires (Mementos mode).
        self.stop_at_checkpoints = False
        #: Latched once the workload completes in 'sleep' mode: the device
        #: parks permanently instead of being re-woken by its strategy.
        self.workload_done = False
        self._operation: Optional[_Operation] = None
        self._restored_since_boot = False
        strategy.configure(self)

    # ------------------------------------------------------------------
    # Transition methods (called by strategies)
    # ------------------------------------------------------------------

    def go_active(self) -> None:
        """Enter ACTIVE execution."""
        self.state = PlatformState.ACTIVE

    def go_sleep(self) -> None:
        """Enter low-power SLEEP (volatile state retained)."""
        self.state = PlatformState.SLEEP

    def begin_snapshot(self, full: bool = True, words: Optional[int] = None) -> None:
        """Start writing a snapshot of the current volatile state to NVM.

        Args:
            full: capture RAM + registers (True) or registers only.
            words: override the NVM word count used for cost accounting —
                hardware-assisted backups (NVP) move less data than the
                logical state they preserve.
        """
        payload = self.engine.capture(full)
        if words is None:
            words = (
                self.engine.full_state_words
                if full
                else self.engine.register_state_words
            )
        duration, energy = self.power_model.snapshot_cost(
            words, self.config.snapshot_frequency, voltage=3.0, fram=FRAM_TECH
        )
        self.store.begin_write(payload, words)
        self._operation = _Operation(
            kind="snapshot",
            remaining=duration,
            power=energy / duration if duration > 0 else 0.0,
        )
        self.state = PlatformState.SNAPSHOT
        self.metrics.snapshots_started += 1

    def begin_restore(self) -> None:
        """Start copying the latest snapshot back into volatile state.

        Raises:
            SnapshotError: when no snapshot is committed.
        """
        payload = self.store.latest()
        words = self.store.latest_words()
        duration, energy = self.power_model.restore_cost(
            words, self.config.snapshot_frequency, voltage=3.0,
            fram=FRAM_TECH, sram=SRAM_TECH,
        )
        self._operation = _Operation(
            kind="restore",
            remaining=duration,
            power=energy / duration if duration > 0 else 0.0,
            payload=payload,
        )
        self.state = PlatformState.RESTORE
        self.metrics.restores_started += 1

    def cold_start(self) -> None:
        """Cold-boot the engine (all progress lost) and go active."""
        self.engine.cold_boot()
        self.metrics.cold_boots += 1
        self.go_active()

    # ------------------------------------------------------------------
    # RailLoad interface
    # ------------------------------------------------------------------

    def advance(self, t: float, dt: float, v_rail: float) -> float:
        energy = 0.0
        # Brownout check first: losing power trumps everything.
        if v_rail < self.config.v_min:
            if self.state is not PlatformState.OFF:
                self._brownout(t)
            self.metrics.time_in_state[PlatformState.OFF.value] += dt
            energy = self.power_model.off_power * dt
            self.metrics.energy["off"] += energy
            return energy

        if self.state is PlatformState.OFF:
            if v_rail >= self.config.v_por:
                self.metrics.boots += 1
                self._restored_since_boot = False
                if self.workload_done:
                    self.go_sleep()
                else:
                    self.strategy.on_boot(self, t, v_rail)
            else:
                self.metrics.time_in_state[PlatformState.OFF.value] += dt
                energy = self.power_model.off_power * dt
                self.metrics.energy["off"] += energy
                return energy

        # Strategy hooks may change state before the step's physics run.
        if self.state is PlatformState.ACTIVE:
            self.strategy.on_active(self, t, v_rail)
        elif self.state is PlatformState.SLEEP and not self.workload_done:
            self.strategy.on_sleep(self, t, v_rail)

        state = self.state
        self.metrics.time_in_state[state.value] += dt

        if state is PlatformState.ACTIVE:
            energy = self._step_active(t, dt, v_rail)
        elif state is PlatformState.SLEEP:
            energy = self.power_model.sleep_power * dt
            self.metrics.energy["sleep"] += energy
        elif state in (PlatformState.SNAPSHOT, PlatformState.RESTORE):
            energy = self._step_operation(t, dt, v_rail)
        else:  # OFF handled above; defensive
            energy = self.power_model.off_power * dt
            self.metrics.energy["off"] += energy
        return energy

    def load_profile(
        self, t: float, dt: float, v_rail: float
    ) -> Optional[LoadProfile]:
        """Fast-kernel event schedule descriptor for the current state.

        Every platform state is a piecewise-constant (or, for ACTIVE, a
        voltage-proportional) drain between declared events, so chunking
        survives the whole boot/active/sleep/snapshot cycle:

        * **OFF** — constant ``off_power``; exits when the rail rises
          through ``v_por`` (boot).
        * **SLEEP** — constant ``sleep_power``; exits at the strategy's
          wake threshold or at brownout (``v < v_min``).
        * **ACTIVE** — core power proportional to the rail voltage plus
          a constant per-step memory energy, as long as the compute
          engine can vectorize its forward progress
          (:meth:`~repro.mcu.engine.ComputeEngine.active_plan`) and the
          strategy declares its trigger threshold
          (:meth:`Strategy.active_guard`); exits at the guard, at
          brownout, or at the engine's time-based boundary (workload
          halt / checkpoint site), which bounds ``max_steps``.
        * **SNAPSHOT / RESTORE** — constant operation power; exits at
          brownout or when the operation's remaining duration runs out
          (``max_steps``), so the completing step — commit, state
          transition, strategy callback — always runs per-step.

        The state-transition step itself always executes through the
        unmodified :meth:`advance`, which is what keeps event timing
        identical between kernels.
        """
        if type(self).advance is not TransientPlatform.advance:
            # A subclass with its own per-step physics must publish its
            # own profiles; the base declarations would skip them.
            return None
        state = self.state
        model = self.power_model
        config = self.config
        if state is PlatformState.OFF:
            # Below v_min and between v_min and v_por both drain
            # off_power; crossing v_por boots the device.
            return LoadProfile(
                power=model.off_power,
                v_rising=config.v_por,
                commit=self._chunk_commit("off"),
            )
        if v_rail < config.v_min:
            return None  # brownout due: handle it per-step
        if state is PlatformState.SLEEP:
            commit = self._chunk_commit("sleep")
            if self.workload_done:
                return LoadProfile(
                    power=model.sleep_power, v_falling=config.v_min,
                    commit=commit,
                )
            wake = self.strategy.sleep_wake_threshold(self)
            if wake is None:
                return None
            return LoadProfile(
                power=model.sleep_power, v_rising=wake,
                v_falling=config.v_min, commit=commit,
            )
        if state is PlatformState.ACTIVE:
            return self._active_profile(dt, config, model)
        if state in (PlatformState.SNAPSHOT, PlatformState.RESTORE):
            return self._operation_profile(dt, config, state)
        return None

    def _active_profile(self, dt, config, model) -> Optional[LoadProfile]:
        """The ACTIVE-state event schedule, or None to stay per-step."""
        guard = self.strategy.active_guard(self)
        if guard is None:
            return None
        frequency = self.clock.frequency
        budget = max(0, int(frequency * dt))
        plan = self.engine.active_plan(budget, self.stop_at_checkpoints)
        if plan is None:
            return None
        step_energy, safe_steps, commit_cycles = plan
        # The strategy acts when v <= guard; the chunk's falling boundary
        # is strict (v < v_falling), so nudge the guard up one ulp to
        # make `v < boundary` equivalent to `v <= guard`.  Brownout
        # (v < v_min) folds into the same boundary.
        v_fall = config.v_min
        if guard > -math.inf:
            v_fall = max(v_fall, math.nextafter(guard, math.inf))
        metrics = self.metrics

        def commit(steps: int, dt_: float, energy: float) -> None:
            if steps:
                # `energy` is the summed per-step demand: voltage-
                # proportional core energy plus the constant memory
                # part, which is exactly steps * step_energy.
                mem = steps * step_energy
                metrics.time_in_state["active"] += steps * dt_
                metrics.energy["active"] += energy - mem
                metrics.energy["memory"] += mem
                metrics.cycles_executed += steps * budget
                commit_cycles(steps)

        return LoadProfile(
            current=model.active_current(frequency),
            current_gain=model.fram_execution_factor,
            energy=step_energy,
            v_falling=v_fall,
            max_steps=safe_steps,
            commit=commit,
        )

    #: Bound on how far ahead an operation profile resolves its
    #: completion step.  Understating ``max_steps`` is always safe (it
    #: only shortens chunks), and the engine never asks for chunks
    #: anywhere near this long — so the cap also bounds the rescan cost
    #: per chunk for a very long operation to O(cap), not O(operation).
    _MAX_OPERATION_LOOKAHEAD = 1 << 13

    def _operation_profile(self, dt, config, state) -> Optional[LoadProfile]:
        """The SNAPSHOT/RESTORE event schedule, or None to stay per-step."""
        operation = self._operation
        if operation is None:
            return None
        # The reference path counts the operation down by repeated
        # `remaining -= dt`; replicate that float-for-float to find how
        # many steps stay strictly in-flight (the completing step runs
        # per-step).
        remaining = operation.remaining
        safe = 0
        while safe < self._MAX_OPERATION_LOOKAHEAD:
            after = remaining - dt
            if after <= 0.0:
                break
            remaining = after
            safe += 1
        if safe <= 0:
            return None
        metrics = self.metrics
        kind = operation.kind
        state_key = state.value

        def commit(steps: int, dt_: float, energy: float) -> None:
            if steps:
                metrics.time_in_state[state_key] += steps * dt_
                metrics.energy[kind] += energy
                left = operation.remaining
                for _ in range(steps):
                    left -= dt_
                operation.remaining = left

        return LoadProfile(
            power=operation.power,
            v_falling=config.v_min,
            max_steps=safe,
            commit=commit,
        )

    def _chunk_commit(self, key: str):
        """Bulk metrics accounting for ``steps`` chunked quiescent steps."""
        def commit(steps: int, dt: float, energy: float) -> None:
            if steps:
                self.metrics.time_in_state[key] += steps * dt
                self.metrics.energy[key] += energy
        return commit

    def reset(self) -> None:
        self.engine.reset()
        self.clock.reset()
        self.store.invalidate()
        self.strategy.reset()
        self.state = PlatformState.OFF
        self.metrics = PlatformMetrics()
        self.workload_done = False
        self._operation = None
        self._restored_since_boot = False
        self.strategy.configure(self)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _step_active(self, t: float, dt: float, v: float) -> float:
        frequency = self.clock.frequency
        budget = max(0, int(frequency * dt))
        active = self.power_model.active_power(frequency, v) * dt
        self.metrics.energy["active"] += active
        extra = 0.0
        # Execute through checkpoint sites until the step's cycle budget is
        # spent or the strategy changes state (e.g. starts a snapshot).
        while budget > 0 and self.state is PlatformState.ACTIVE:
            slice_ = self.engine.run_cycles(
                budget, stop_at_ckpt=self.stop_at_checkpoints
            )
            budget -= slice_.cycles
            self.metrics.cycles_executed += slice_.cycles
            self.metrics.energy["memory"] += slice_.memory_energy
            self.metrics.energy["peripheral"] += slice_.peripheral_energy
            extra += slice_.memory_energy + slice_.peripheral_energy
            if slice_.halted:
                self._handle_completion(t)
                break
            if slice_.hit_checkpoint:
                self.strategy.on_checkpoint_site(self, t, v)
                continue
            if slice_.cycles == 0:
                break
        return active + extra

    def _handle_completion(self, t: float) -> None:
        self.metrics.completions += 1
        if self.metrics.first_completion_time is None:
            self.metrics.first_completion_time = t
        if self.config.on_complete == "restart":
            self.engine.cold_boot()
        else:
            self.workload_done = True
            self.go_sleep()

    def _step_operation(self, t: float, dt: float, v: float) -> float:
        operation = self._operation
        if operation is None:
            # Defensive: state says op but none exists; park in sleep.
            self.go_sleep()
            return self.power_model.sleep_power * dt
        energy = operation.power * dt
        self.metrics.energy[operation.kind] += energy
        operation.remaining -= dt
        if operation.remaining <= 0.0:
            self._operation = None
            if operation.kind == "snapshot":
                self.store.commit()
                self.metrics.snapshots_completed += 1
                self.go_sleep()
                self.strategy.on_snapshot_complete(self, t, v)
            else:
                self.engine.restore(operation.payload)
                self.metrics.restores_completed += 1
                self._restored_since_boot = True
                self.go_active()
                self.strategy.on_restore_complete(self, t, v)
        return energy

    def _brownout(self, t: float) -> None:
        if self._operation is not None:
            if self._operation.kind == "snapshot":
                self.store.abort()
                self.metrics.snapshots_aborted += 1
            else:
                self.metrics.restores_aborted += 1
            self._operation = None
        self.engine.power_fail()
        self.state = PlatformState.OFF
        self.metrics.brownouts += 1
        self.strategy.on_power_fail(self, t)


@register("null", kind="strategy")
class NullStrategy(Strategy):
    """No checkpointing at all: cold-start on every boot.

    The baseline the transient systems are measured against — it can only
    finish workloads that fit inside a single powered interval.
    """

    name = "null"

    def on_boot(self, platform: TransientPlatform, t: float, v: float) -> None:
        platform.cold_start()


# ---------------------------------------------------------------------------
# Results-pipeline contribution (see repro.results.metrics)
# ---------------------------------------------------------------------------


@register_metric(
    "platform",
    columns=(
        "completed",
        "completion_time",
        "brownouts",
        "snapshots",
        "snapshots_aborted",
        "restores",
        "energy_total",
        "energy_overhead",
        "availability",
    ),
    order=10,
)
def _platform_metric_columns(run, spec):
    """The transient platform's counters; None for platform-less runs."""
    platform = run.platform
    if platform is None:
        return None
    m = platform.metrics
    active = m.time_in_state[PlatformState.ACTIVE.value]
    return {
        "completed": m.first_completion_time is not None,
        "completion_time": m.first_completion_time,
        "brownouts": m.brownouts,
        "snapshots": m.snapshots_completed,
        "snapshots_aborted": m.snapshots_aborted,
        "restores": m.restores_completed,
        "energy_total": m.total_energy(),
        "energy_overhead": m.overhead_energy(),
        "availability": (active / run.t_end) if run.t_end > 0.0 else 0.0,
    }
