"""Transient computing: sustaining computation across supply interruptions.

This package implements the strategies the paper situates in its taxonomy:

* :class:`~repro.transient.hibernus.Hibernus` — voltage-interrupt snapshot
  at the Eq. (4) threshold (ref [9], §III).
* :class:`~repro.transient.hibernus_pp.HibernusPP` — online self-calibrating
  Hibernus (ref [2]).
* :class:`~repro.transient.quickrecall.QuickRecall` — unified-FRAM,
  register-only snapshots (ref [8]).
* :class:`~repro.transient.mementos.Mementos` — compile-time checkpoint
  sites with threshold-gated snapshots (ref [7]).
* :class:`~repro.transient.nvp.NVProcessor` — architectural non-volatile
  processor backup (ref [10]).
* :mod:`~repro.transient.taskbased` — charge-and-fire task-based systems:
  WISPCam, Monjolo, Gomez dynamic energy burst scaling (refs [4][5][6]).

All register/RAM-level strategies drive a
:class:`~repro.transient.base.TransientPlatform`, the rail-attached device
model that owns the compute engine, power model, snapshot store and clock.
"""

from repro.transient.base import (
    NullStrategy,
    PlatformState,
    SnapshotStore,
    Strategy,
    TransientPlatform,
    TransientPlatformConfig,
)
from repro.transient.hibernus import Hibernus, hibernate_threshold
from repro.transient.hibernus_pp import HibernusPP
from repro.transient.quickrecall import QuickRecall
from repro.transient.mementos import Mementos
from repro.transient.nvp import NVProcessor
from repro.transient.taskbased import (
    ChargeAndFireDevice,
    EnergyBurstScaler,
    MonjoloMeter,
    Task,
    WispCam,
)

__all__ = [
    "TransientPlatform",
    "TransientPlatformConfig",
    "PlatformState",
    "SnapshotStore",
    "Strategy",
    "NullStrategy",
    "Hibernus",
    "hibernate_threshold",
    "HibernusPP",
    "QuickRecall",
    "Mementos",
    "NVProcessor",
    "ChargeAndFireDevice",
    "Task",
    "WispCam",
    "MonjoloMeter",
    "EnergyBurstScaler",
]
