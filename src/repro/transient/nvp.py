"""Non-volatile processor (NVP) backup (ref [10]).

Architectural support: non-volatile flip-flops shadow the register file and
key state, so the whole volatile context can be flushed in a handful of
cycles when the supply collapses.  We model this as a *just-in-time*
snapshot triggered at a threshold barely above V_min — the backup is so
cheap that Eq. (4) is satisfiable with microvolts of headroom — after which
the device keeps computing until brownout (it loses only the cycles between
the flush and the actual death).

The contrast with Hibernus (software, milliseconds, needs real headroom)
and QuickRecall (software, registers only, needs unified FRAM) is the point
of including it in the ablation benches.
"""

from __future__ import annotations

import math

from repro.transient.base import Strategy, TransientPlatform
from repro.spec.registry import register
from repro.transient.hibernus import hibernate_threshold


@register("nvp", kind="strategy")
class NVProcessor(Strategy):
    """Hardware-assisted instant backup (see module docstring).

    Args:
        v_restore: supply level at which a booted device resumes.
        backup_margin: multiplier on the (tiny) hardware backup energy
            when deriving the flush threshold.  The default is generous:
            it covers detector latency (one control period) on top of the
            backup energy itself, keeping the flush window wide enough to
            hit at simulation resolution.
    """

    name = "nvp"

    #: Words flushed by the hardware backup path: register file + PC +
    #: pipeline/peripheral shadow state.
    BACKUP_WORDS = 32

    def __init__(self, v_restore: float = 2.4, backup_margin: float = 8.0):
        self.v_restore = v_restore
        self.backup_margin = backup_margin
        self.v_flush = 0.0
        self._flushed_this_excursion = False

    def configure(self, platform: TransientPlatform) -> None:
        # The NVP flush moves BACKUP_WORDS through non-volatile flip-flops
        # in ~one cycle per word at the snapshot clock.
        __, energy = platform.power_model.snapshot_cost(
            self.BACKUP_WORDS, platform.config.snapshot_frequency, voltage=3.0
        )
        self.v_flush = hibernate_threshold(
            energy,
            platform.config.rail_capacitance,
            platform.config.v_min,
            margin=self.backup_margin,
        )

    def on_boot(self, platform: TransientPlatform, t: float, v: float) -> None:
        platform.go_sleep()

    def on_active(self, platform: TransientPlatform, t: float, v: float) -> None:
        if v <= self.v_flush and not self._flushed_this_excursion:
            self._flushed_this_excursion = True
            # Hardware backup: the full logical state is preserved in
            # shadow NV cells, but only BACKUP_WORDS move over the NVM port.
            platform.begin_snapshot(full=True, words=self.BACKUP_WORDS)

    def on_snapshot_complete(
        self, platform: TransientPlatform, t: float, v: float
    ) -> None:
        # Keep computing on whatever charge remains; the backup is done.
        platform.go_active()

    def on_sleep(self, platform: TransientPlatform, t: float, v: float) -> None:
        if v < self.v_restore:
            return
        self._flushed_this_excursion = False
        if platform.store.has_snapshot():
            platform.begin_restore()
        else:
            platform.cold_start()

    def sleep_wake_threshold(self, platform: TransientPlatform):
        if type(self).on_sleep is not NVProcessor.on_sleep:
            return None  # subclass changed sleep behaviour; stay per-step
        return self.v_restore

    def active_guard(self, platform: TransientPlatform):
        if type(self).on_active is not NVProcessor.on_active:
            return None  # subclass changed active behaviour; stay per-step
        if self._flushed_this_excursion:
            # Already backed up: on_active is a no-op until brownout.
            return -math.inf
        return self.v_flush

    def on_power_fail(self, platform: TransientPlatform, t: float) -> None:
        self._flushed_this_excursion = False

    def reset(self) -> None:
        self._flushed_this_excursion = False
