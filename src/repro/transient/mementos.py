"""Mementos: compile-time checkpoints (ref [7]).

Checkpoints are placed at *program sites* chosen at design/compile time
(our programs carry ``ckpt`` markers at loop boundaries — the Mementos
loop-latch heuristic).  At each site the runtime compares V_cc against a
threshold and snapshots if the supply looks weak.  The paper lists the
three downsides this reproduction makes measurable:

1. redundant snapshots add time and energy overhead;
2. a snapshot can start but not complete before the supply dies;
3. code executed since the last snapshot is re-executed after restore.

Unlike Hibernus there is no hibernate-then-sleep: Mementos keeps running
after a snapshot and simply dies at brownout.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.transient.base import Strategy, TransientPlatform
from repro.spec.registry import register


@register("mementos", kind="strategy")
class Mementos(Strategy):
    """Threshold-gated snapshots at compile-time checkpoint sites.

    Args:
        v_checkpoint: snapshot when V_cc is at or below this at a site.
        v_operate: minimum supply at which a freshly booted device starts
            running (a simple oracle against booting into a dying supply).
        timer_interval: optional timer-aided mode — also snapshot at the
            first site after every ``timer_interval`` seconds, regardless
            of voltage (the Mementos timer heuristic).
    """

    name = "mementos"

    def __init__(
        self,
        v_checkpoint: float = 2.8,
        v_operate: float = 2.5,
        timer_interval: Optional[float] = None,
    ):
        if v_checkpoint <= 0.0 or v_operate <= 0.0:
            raise ConfigurationError("thresholds must be positive")
        if timer_interval is not None and timer_interval <= 0.0:
            raise ConfigurationError("timer interval must be positive")
        self.v_checkpoint = v_checkpoint
        self.v_operate = v_operate
        self.timer_interval = timer_interval
        self._last_snapshot_time = 0.0

    def configure(self, platform: TransientPlatform) -> None:
        platform.stop_at_checkpoints = True

    def on_boot(self, platform: TransientPlatform, t: float, v: float) -> None:
        if v < self.v_operate:
            platform.go_sleep()
            return
        self._boot_or_restore(platform)

    def on_sleep(self, platform: TransientPlatform, t: float, v: float) -> None:
        if v >= self.v_operate:
            self._boot_or_restore(platform)

    def sleep_wake_threshold(self, platform: TransientPlatform):
        if type(self).on_sleep is not Mementos.on_sleep:
            return None  # subclass changed sleep behaviour; stay per-step
        return self.v_operate

    def on_checkpoint_site(
        self, platform: TransientPlatform, t: float, v: float
    ) -> None:
        timer_due = (
            self.timer_interval is not None
            and t - self._last_snapshot_time >= self.timer_interval
        )
        if v <= self.v_checkpoint or timer_due:
            self._last_snapshot_time = t
            platform.begin_snapshot(full=True)

    def on_snapshot_complete(
        self, platform: TransientPlatform, t: float, v: float
    ) -> None:
        # Mementos does not hibernate: execution continues immediately.
        platform.go_active()

    def reset(self) -> None:
        self._last_snapshot_time = 0.0

    def _boot_or_restore(self, platform: TransientPlatform) -> None:
        if platform.store.has_snapshot():
            platform.begin_restore()
        else:
            platform.cold_start()
