"""Hibernus++: self-calibrating, adaptive Hibernus (ref [2]).

The paper's description: Hibernus needs design-time characterisation of
(1) the platform (C, hence V_H) and (2) the source (hence V_R);
Hibernus++ "performs adaptive, run-time calibration and management of the
platform and energy harvesting source" so neither needs to be known.

Implementation here:

* **Platform calibration** — V_H starts conservatively high.  Every
  completed snapshot measures the *actual* energy it cost through the rail
  voltage drop across the operation (E = C_est*(v_start^2 - v_end^2)/2 is
  unavailable without knowing C, so the strategy instead measures the
  voltage drop dV directly and maintains V_H = V_min + dV * margin, which
  needs no C at all).  If a snapshot ever aborts (supply died mid-write),
  V_H is raised sharply.
* **Source calibration** — V_R adapts to the source dynamics: when the
  supply consistently races through V_R (fast sources), V_R drifts down
  toward V_H + guard band to recover active time; when the device browns
  out soon after restoring (slow ramps), V_R drifts up.

Compared to a hand-calibrated Hibernus the overheads of starting
conservative make it slightly less efficient on the nominal platform, but
it keeps working when C differs from nominal — exactly the trade-off the
paper describes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.transient.base import Strategy, TransientPlatform
from repro.spec.registry import register


@register("hibernus++", kind="strategy")
class HibernusPP(Strategy):
    """Self-calibrating hibernate/restore thresholds (see module docstring).

    Args:
        v_hibernate_initial: conservative starting V_H (well above any
            plausible requirement); None picks 85% of the way from v_min
            to v_restore_initial.
        v_restore_initial: starting V_R.
        margin: multiplier on the measured snapshot voltage drop.
        guard: minimum gap kept between V_H and both rails of its range.
        adapt_rate: fractional step for V_R drift per observation.
    """

    name = "hibernus++"

    def __init__(
        self,
        v_hibernate_initial: float = None,
        v_restore_initial: float = 3.1,
        margin: float = 1.25,
        guard: float = 0.05,
        adapt_rate: float = 0.1,
    ):
        if adapt_rate <= 0.0 or adapt_rate >= 1.0:
            raise ConfigurationError("adapt_rate must be in (0, 1)")
        self._v_hibernate_initial = v_hibernate_initial
        self._v_restore_initial = v_restore_initial
        self.margin = margin
        self.guard = guard
        self.adapt_rate = adapt_rate
        self.v_hibernate = 0.0
        self.v_restore = v_restore_initial
        self._snapshot_start_v = 0.0
        self._restore_time = None
        self._last_measured_drop = None

    def configure(self, platform: TransientPlatform) -> None:
        v_min = platform.config.v_min
        if self._v_hibernate_initial is None:
            self.v_hibernate = v_min + 0.85 * (self._v_restore_initial - v_min)
        else:
            self.v_hibernate = self._v_hibernate_initial
        self.v_restore = self._v_restore_initial
        if self.v_hibernate >= self.v_restore:
            raise ConfigurationError("initial V_H must sit below initial V_R")

    # -- callbacks -------------------------------------------------------

    def on_boot(self, platform: TransientPlatform, t: float, v: float) -> None:
        platform.go_sleep()

    def on_active(self, platform: TransientPlatform, t: float, v: float) -> None:
        if v <= self.v_hibernate:
            self._snapshot_start_v = v
            platform.begin_snapshot(full=True)

    def on_sleep(self, platform: TransientPlatform, t: float, v: float) -> None:
        if v < self.v_restore:
            return
        self._restore_time = t
        if platform.store.has_snapshot():
            platform.begin_restore()
        else:
            platform.cold_start()

    def sleep_wake_threshold(self, platform: TransientPlatform):
        # V_R adapts only at wake/brownout events, never mid-sleep, so the
        # present value is a valid chunk boundary.  Subclasses overriding
        # on_sleep must declare their own.
        if type(self).on_sleep is not HibernusPP.on_sleep:
            return None
        return self.v_restore

    def active_guard(self, platform: TransientPlatform):
        # V_H adapts only in snapshot/brownout callbacks, which fire
        # per-step, so the present value is a valid chunk boundary while
        # the device computes.
        if type(self).on_active is not HibernusPP.on_active:
            return None
        return self.v_hibernate

    def on_snapshot_complete(
        self, platform: TransientPlatform, t: float, v: float
    ) -> None:
        # Runtime platform characterisation: the observed voltage cost of a
        # snapshot replaces the design-time Eq. (4) calculation.
        drop = max(0.0, self._snapshot_start_v - v)
        self._last_measured_drop = drop
        v_min = platform.config.v_min
        target = v_min + self.guard + drop * self.margin
        # Move most of the way to the measured target each time (snapshot
        # cost is deterministic, so convergence is fast and stable).
        self.v_hibernate += 0.7 * (target - self.v_hibernate)
        self._clamp(platform)

    def on_restore_complete(
        self, platform: TransientPlatform, t: float, v: float
    ) -> None:
        # Source characterisation: if the supply is already well above V_R
        # right after the restore finishes, the source ramps fast and V_R
        # can afford to sit lower (more active time per burst).
        if v > self.v_restore + 2.0 * self.guard:
            self.v_restore -= self.adapt_rate * (self.v_restore - self._floor())
            self._clamp(platform)

    def on_power_fail(self, platform: TransientPlatform, t: float) -> None:
        # Dying means calibration was too optimistic somewhere: raise both
        # thresholds (an aborted snapshot raises V_H; a brownout shortly
        # after restore raises V_R).
        self.v_hibernate += 0.1
        self.v_restore += self.adapt_rate * (3.4 - self.v_restore)
        self._clamp(platform)

    def reset(self) -> None:
        self.v_restore = self._v_restore_initial
        self._snapshot_start_v = 0.0
        self._restore_time = None
        self._last_measured_drop = None

    # -- internals --------------------------------------------------------

    def _floor(self) -> float:
        return self.v_hibernate + self.guard

    def _clamp(self, platform: TransientPlatform) -> None:
        v_min = platform.config.v_min
        self.v_hibernate = max(self.v_hibernate, v_min + self.guard)
        if self.v_restore < self._floor() + self.guard:
            self.v_restore = self._floor() + self.guard
