"""Hibernus: interrupt-driven hibernation (ref [9], paper §III).

Behaviour, per the paper:

* A voltage interrupt fires when V_cc falls through the hibernate
  threshold V_H; the system snapshots *all* volatile state (RAM + registers)
  to NVM and sleeps.  Usually exactly one snapshot per supply failure.
* V_H is chosen from expression (4): the energy left in the capacitance
  between V_H and V_min must cover the snapshot energy E_s:

      E_s <= C * (V_H^2 - V_min^2) / 2

* When the supply recovers through the restore threshold V_R, the snapshot
  is restored and execution continues where it left off (Fig. 7).

Design-time calibration (the two items §III lists) maps to the constructor:
``v_hibernate=None`` derives V_H from the platform's C and power model
(item 1); ``v_restore`` encodes the source characterisation (item 2).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.transient.base import Strategy, TransientPlatform
from repro.spec.registry import register


def hibernate_threshold(
    snapshot_energy: float,
    capacitance: float,
    v_min: float,
    margin: float = 1.1,
) -> float:
    """Solve expression (4) for the minimum safe hibernate threshold V_H.

    Args:
        snapshot_energy: E_s, joules needed to save the system state.
        capacitance: total rail capacitance C in farads.
        v_min: voltage at which the system stops operating.
        margin: safety factor applied to E_s (1.0 = exact Eq. 4 equality).

    Returns:
        V_H in volts such that ``E_s * margin == C*(V_H^2 - V_min^2)/2``.
    """
    if snapshot_energy < 0.0:
        raise ConfigurationError("snapshot energy must be non-negative")
    if capacitance <= 0.0:
        raise ConfigurationError("capacitance must be positive")
    if v_min < 0.0:
        raise ConfigurationError("v_min must be non-negative")
    if margin < 1.0:
        raise ConfigurationError("margin must be >= 1")
    return math.sqrt(2.0 * snapshot_energy * margin / capacitance + v_min * v_min)


@register("hibernus", kind="strategy")
class Hibernus(Strategy):
    """Voltage-interrupt snapshot-and-sleep (see module docstring).

    Args:
        v_hibernate: hibernate threshold V_H; None derives it from Eq. (4)
            using the platform's capacitance and snapshot cost.
        v_restore: restore threshold V_R (source characterisation); must
            end up above V_H.
        margin: safety factor on E_s when deriving V_H.
        min_headroom: floor on V_H - V_min.  The voltage comparator has
            finite resolution and latency; when Eq. (4) asks for only
            millivolts of headroom (tiny snapshots), the detector — not
            the energy balance — sets the threshold.
        full_snapshot: snapshot geometry — True saves RAM + registers
            (the Hibernus design); subclasses override.
    """

    name = "hibernus"

    def __init__(
        self,
        v_hibernate: Optional[float] = None,
        v_restore: float = 2.9,
        margin: float = 1.3,
        min_headroom: float = 0.05,
        full_snapshot: bool = True,
    ):
        self.v_hibernate = v_hibernate
        self.v_restore = v_restore
        self.margin = margin
        self.min_headroom = min_headroom
        self.full_snapshot = full_snapshot
        self._explicit_v_hibernate = v_hibernate is not None

    # -- calibration ----------------------------------------------------

    def snapshot_words(self, platform: TransientPlatform) -> int:
        """NVM words one snapshot writes (full state for Hibernus)."""
        if self.full_snapshot:
            return platform.engine.full_state_words
        return platform.engine.register_state_words

    def snapshot_energy(self, platform: TransientPlatform) -> float:
        """E_s for this platform: the Eq. (4) numerator."""
        __, energy = platform.power_model.snapshot_cost(
            self.snapshot_words(platform),
            platform.config.snapshot_frequency,
            voltage=3.0,
        )
        return energy

    def configure(self, platform: TransientPlatform) -> None:
        if not self._explicit_v_hibernate:
            self.v_hibernate = max(
                hibernate_threshold(
                    self.snapshot_energy(platform),
                    platform.config.rail_capacitance,
                    platform.config.v_min,
                    margin=self.margin,
                ),
                platform.config.v_min + self.min_headroom,
            )
        if self.v_hibernate >= self.v_restore:
            raise ConfigurationError(
                f"V_H ({self.v_hibernate:.3f} V) must sit below V_R "
                f"({self.v_restore:.3f} V); increase capacitance or V_R"
            )

    # -- callbacks -------------------------------------------------------

    def on_boot(self, platform: TransientPlatform, t: float, v: float) -> None:
        # Wait in sleep for the supply to reach V_R before doing anything;
        # on_sleep then either restores or cold starts.
        platform.go_sleep()

    def on_active(self, platform: TransientPlatform, t: float, v: float) -> None:
        if v <= self.v_hibernate:
            # The voltage interrupt: snapshot now, as late as possible.
            platform.begin_snapshot(full=self.full_snapshot)

    def on_sleep(self, platform: TransientPlatform, t: float, v: float) -> None:
        if v < self.v_restore:
            return
        if platform.store.has_snapshot():
            platform.begin_restore()
        else:
            platform.cold_start()

    def sleep_wake_threshold(self, platform: TransientPlatform):
        # on_sleep is a pure no-op strictly below V_R (see above).  A
        # subclass that overrides on_sleep changed that contract: it must
        # declare its own threshold or stay per-step.
        if type(self).on_sleep is not Hibernus.on_sleep:
            return None
        return self.v_restore

    def active_guard(self, platform: TransientPlatform):
        # The voltage interrupt fires at v <= V_H; strictly above it
        # on_active is a pure no-op, so ACTIVE execution may chunk down
        # to the hibernate threshold.  A subclass with its own on_active
        # must declare its own guard.
        if type(self).on_active is not Hibernus.on_active:
            return None
        return self.v_hibernate
