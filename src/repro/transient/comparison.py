"""Structured strategy comparison: the quantitative-evaluation harness.

Ref [13] (Rodriguez et al., ENSsys'15) compares transient-computing
approaches quantitatively; this module is that experiment as a reusable
API.  Give it a workload factory, a supply description and a set of
strategies; it runs each strategy on an identical system and returns a
comparison table of the metrics that matter (completion, overheads,
energy, availability).

Used by ``benchmarks/bench_ablation_strategies.py`` consumers and
downstream users sizing a design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import RunReport
from repro.core.system import EnergyDrivenSystem
from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester
from repro.mcu.clock import ClockPlan, OperatingPoint
from repro.mcu.engine import ComputeEngine
from repro.mcu.power_model import McuPowerModel
from repro.power.rail import ResistiveLoad
from repro.storage.capacitor import Capacitor
from repro.transient.base import Strategy, TransientPlatform, TransientPlatformConfig


@dataclass(frozen=True)
class ComparisonScenario:
    """The common conditions every strategy is run under.

    Attributes:
        harvester_factory: builds a fresh power source per run.
        capacitance: rail capacitance (F).
        duration: simulated seconds per run.
        dt: timestep.
        clock_frequency: core frequency (single-point plan).
        bleed_resistance: optional parallel drain forcing real brownouts.
        v_max: rail clamp voltage.
    """

    harvester_factory: Callable[[], PowerHarvester]
    capacitance: float = 22e-6
    duration: float = 6.0
    dt: float = 1e-4
    clock_frequency: float = 1e6
    bleed_resistance: Optional[float] = 10000.0
    v_max: float = 3.3

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0 or self.duration <= 0.0 or self.dt <= 0.0:
            raise ConfigurationError("invalid scenario parameters")


@dataclass
class StrategyResult:
    """One strategy's outcome under the scenario."""

    name: str
    report: RunReport
    platform: TransientPlatform

    def row(self) -> List[object]:
        """Table row: the ENSsys-style comparison columns."""
        r = self.report
        return [
            self.name,
            r.completed,
            f"{r.completion_time:.3f}" if r.completed else "-",
            r.snapshots,
            r.snapshots_aborted,
            r.restores,
            f"{r.energy_overhead * 1e6:.1f}",
            f"{r.energy_total * 1e3:.3f}",
            f"{100.0 * r.availability:.1f}%",
        ]


#: Header matching :meth:`StrategyResult.row`.
COMPARISON_HEADERS = [
    "strategy", "completed", "t_complete (s)", "snapshots", "aborted",
    "restores", "overhead (uJ)", "energy (mJ)", "availability",
]


def compare_strategies(
    scenario: ComparisonScenario,
    entries: Sequence[Tuple[str, Callable[[], Strategy], Callable[[], ComputeEngine], McuPowerModel]],
) -> Dict[str, StrategyResult]:
    """Run every (name, strategy factory, engine factory, power model)
    entry under identical conditions.

    Factories are called per run so no state leaks between strategies.
    """
    results: Dict[str, StrategyResult] = {}
    for name, strategy_factory, engine_factory, power_model in entries:
        platform = TransientPlatform(
            engine_factory(),
            strategy_factory(),
            power_model=power_model,
            clock=ClockPlan([OperatingPoint(scenario.clock_frequency, 3.0)]),
            config=TransientPlatformConfig(rail_capacitance=scenario.capacitance),
        )
        system = EnergyDrivenSystem(scenario.dt)
        system.set_storage(Capacitor(scenario.capacitance, v_max=scenario.v_max))
        system.add_power_source(scenario.harvester_factory())
        system.set_platform(platform)
        if scenario.bleed_resistance:
            system.add_load(ResistiveLoad(scenario.bleed_resistance))
        run = system.run(scenario.duration)
        results[name] = StrategyResult(
            name=name,
            report=RunReport.from_run(platform, run.t_end),
            platform=platform,
        )
    return results


def winner_by(results: Dict[str, StrategyResult], metric: str) -> str:
    """Name of the completing strategy minimising ``metric``.

    Supported metrics: 'completion_time', 'energy_total',
    'energy_overhead', 'snapshots'.
    """
    completed = {
        name: result for name, result in results.items() if result.report.completed
    }
    if not completed:
        raise ConfigurationError("no strategy completed the workload")
    def key(item: Tuple[str, StrategyResult]) -> float:
        value = getattr(item[1].report, metric)
        return float(value)
    return min(completed.items(), key=key)[0]
