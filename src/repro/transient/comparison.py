"""Structured strategy comparison: the quantitative-evaluation harness.

Ref [13] (Rodriguez et al., ENSsys'15) compares transient-computing
approaches quantitatively; this module is that experiment as a reusable
API.  Give it a workload factory, a supply description and a set of
strategies; it runs each strategy on an identical system and returns a
comparison table of the metrics that matter (completion, overheads,
energy, availability).

Used by ``benchmarks/bench_ablation_strategies.py`` consumers and
downstream users sizing a design.

Since the results-pipeline refactor every run is summarised through the
metric-extractor registry into a typed
:class:`~repro.results.run_result.RunResult` (one per strategy, keyed by
a content hash of the scenario conditions), so a comparison can be
persisted to, or resumed from, a :class:`ResultStore` shard like any
sweep — pass ``store=`` to :func:`compare_strategies`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import RunReport
from repro.core.system import EnergyDrivenSystem
from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester
from repro.mcu.clock import ClockPlan, OperatingPoint
from repro.mcu.engine import ComputeEngine
from repro.mcu.power_model import McuPowerModel
from repro.power.rail import ResistiveLoad
from repro.results.run_result import RunResult
from repro.results.store import ResultStore
from repro.storage.capacitor import Capacitor
from repro.transient.base import Strategy, TransientPlatform, TransientPlatformConfig


@dataclass(frozen=True)
class ComparisonScenario:
    """The common conditions every strategy is run under.

    Attributes:
        harvester_factory: builds a fresh power source per run.
        capacitance: rail capacitance (F).
        duration: simulated seconds per run.
        dt: timestep.
        clock_frequency: core frequency (single-point plan).
        bleed_resistance: optional parallel drain forcing real brownouts.
        v_max: rail clamp voltage.
        label: distinguishes scenarios that a store could not otherwise
            tell apart — see :meth:`key_payload`.
    """

    harvester_factory: Callable[[], PowerHarvester]
    capacitance: float = 22e-6
    duration: float = 6.0
    dt: float = 1e-4
    clock_frequency: float = 1e6
    bleed_resistance: Optional[float] = 10000.0
    v_max: float = 3.3
    label: str = ""

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0 or self.duration <= 0.0 or self.dt <= 0.0:
            raise ConfigurationError("invalid scenario parameters")

    def key_payload(self, strategy: str) -> Dict[str, object]:
        """The JSON-able identity of one (scenario, strategy) run.

        Imperatively wired comparisons have no ScenarioSpec to hash, so
        this payload is what keys their :class:`RunResult` rows in a
        store.  The harvester factory itself is not hashable; its
        qualified name stands in for it — two scenarios whose factories
        are *different lambdas with identical qualnames* (e.g. built in
        the same function with different captured parameters) must set
        distinct ``label``\\ s to share a persistent store safely.
        """
        factory = self.harvester_factory
        return {
            "experiment": "strategy-comparison",
            "label": self.label,
            "strategy": strategy,
            "harvester": getattr(factory, "__qualname__", repr(factory)),
            "capacitance": self.capacitance,
            "duration": self.duration,
            "dt": self.dt,
            "clock_frequency": self.clock_frequency,
            "bleed_resistance": self.bleed_resistance,
            "v_max": self.v_max,
        }


@dataclass
class StrategyResult:
    """One strategy's outcome under the scenario.

    ``platform`` is the live device for freshly simulated strategies and
    None for rows resumed from a store (the counters survive in
    ``result``/``report``; the object graph does not).
    """

    name: str
    report: RunReport
    platform: Optional[TransientPlatform]
    result: RunResult

    def row(self) -> List[object]:
        """Table row: the ENSsys-style comparison columns.

        Rendered from the pipeline's :class:`RunResult` metrics — the
        same counters :class:`RunReport` condenses, extracted once by
        the registry.
        """
        m = self.result.metrics
        return [
            self.name,
            m["completed"],
            f"{m['completion_time']:.3f}" if m["completed"] else "-",
            m["snapshots"],
            m["snapshots_aborted"],
            m["restores"],
            f"{m['energy_overhead'] * 1e6:.1f}",
            f"{m['energy_total'] * 1e3:.3f}",
            f"{100.0 * m['availability']:.1f}%",
        ]


#: Header matching :meth:`StrategyResult.row`.
COMPARISON_HEADERS = [
    "strategy", "completed", "t_complete (s)", "snapshots", "aborted",
    "restores", "overhead (uJ)", "energy (mJ)", "availability",
]


def compare_strategies(
    scenario: ComparisonScenario,
    entries: Sequence[Tuple[str, Callable[[], Strategy], Callable[[], ComputeEngine], McuPowerModel]],
    store: Optional[ResultStore] = None,
) -> Dict[str, StrategyResult]:
    """Run every (name, strategy factory, engine factory, power model)
    entry under identical conditions.

    Factories are called per run so no state leaks between strategies.
    Pass ``store`` to persist one :class:`RunResult` row per strategy
    and to skip strategies whose key the store already holds — the
    comparison resumes like a sweep (resumed entries carry
    ``platform=None``; their counters live on in the report/result).
    """
    from repro.results.run_result import content_hash

    results: Dict[str, StrategyResult] = {}
    for name, strategy_factory, engine_factory, power_model in entries:
        if store is not None:
            cached = store.get(content_hash(scenario.key_payload(name)))
            if cached is not None and cached.ok:
                results[name] = StrategyResult(
                    name=name,
                    report=_report_from_metrics(cached.metrics),
                    platform=None,
                    result=cached,
                )
                continue
        platform = TransientPlatform(
            engine_factory(),
            strategy_factory(),
            power_model=power_model,
            clock=ClockPlan([OperatingPoint(scenario.clock_frequency, 3.0)]),
            config=TransientPlatformConfig(rail_capacitance=scenario.capacitance),
        )
        system = EnergyDrivenSystem(scenario.dt)
        system.set_storage(Capacitor(scenario.capacitance, v_max=scenario.v_max))
        system.add_power_source(scenario.harvester_factory())
        system.set_platform(platform)
        if scenario.bleed_resistance:
            system.add_load(ResistiveLoad(scenario.bleed_resistance))
        run = system.run(scenario.duration)
        result = RunResult.from_system_run(
            run,
            overrides={"strategy": name},
            name=f"comparison-{name}",
            key_payload=scenario.key_payload(name),
        )
        if store is not None:
            store.add(result, overwrite=True)
        results[name] = StrategyResult(
            name=name,
            report=RunReport.from_run(platform, run.t_end),
            platform=platform,
            result=result,
        )
    return results


def _report_from_metrics(metrics: Dict[str, object]) -> RunReport:
    """Rebuild a :class:`RunReport` from a stored metrics row.

    Every report field is (or derives from) a registry column, so a
    resumed comparison row reads exactly like a fresh one.
    """
    t_end = float(metrics["t_end"])
    return RunReport(
        completed=bool(metrics["completed"]),
        completion_time=metrics["completion_time"],
        brownouts=int(metrics["brownouts"]),
        snapshots=int(metrics["snapshots"]),
        snapshots_aborted=int(metrics["snapshots_aborted"]),
        restores=int(metrics["restores"]),
        cycles_executed=int(metrics["cycles_executed"]),
        active_time=float(metrics["availability"]) * t_end,
        total_time=t_end,
        energy_total=float(metrics["energy_total"]),
        energy_overhead=float(metrics["energy_overhead"]),
    )


def comparison_store(results: Dict[str, StrategyResult]) -> ResultStore:
    """An in-memory :class:`ResultStore` over a comparison's rows.

    The query surface the neutral/ablation reports consume — e.g.
    ``comparison_store(results).best("energy_overhead")``.
    """
    store = ResultStore()
    for result in results.values():
        store.add(result.result)
    return store


def winner_by(results: Dict[str, StrategyResult], metric: str) -> str:
    """Name of the completing strategy minimising ``metric``.

    Supported metrics: 'completion_time', 'energy_total',
    'energy_overhead', 'snapshots'.  A store query underneath: only
    strategies that completed the workload compete.
    """
    completed = comparison_store(results).select(
        lambda r: r.metrics["completed"]
    )
    if not completed:
        raise ConfigurationError("no strategy completed the workload")
    return min(completed, key=lambda r: float(r.metrics[metric]))["strategy"]
