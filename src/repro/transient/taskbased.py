"""Task-based transient systems: charge, fire, repeat (§II.B refs [4][5][6]).

These systems sit on the *right* of the continuous/task-based adaptation arc
in Fig. 2: they buffer enough energy in a (super)capacitor to complete one
whole task atomically, then fire it and recharge.

* :class:`WispCam` — RF-harvesting camera with a 6 mF supercap; one task =
  capture a photo into NVM (ref [4]).
* :class:`MonjoloMeter` — induction-harvesting energy meter with a 500 uF
  capacitor; one task = transmit a ping, so the *ping frequency* measures
  the harvested power (ref [6]).
* :class:`EnergyBurstScaler` — Gomez et al.'s dynamic energy burst scaling
  on an 80 uF capacitor: each burst drains the stored energy into as many
  task units as it can fund, amortising the wake overhead (ref [5]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.power.rail import RailLoad
from repro.sim.kernel import LoadProfile


@dataclass(frozen=True)
class Task:
    """An atomic unit of work with a fixed energy and duration."""

    name: str
    energy: float
    duration: float

    def __post_init__(self) -> None:
        if self.energy <= 0.0 or self.duration <= 0.0:
            raise ConfigurationError("task energy and duration must be positive")

    @property
    def power(self) -> float:
        """Average draw while the task runs."""
        return self.energy / self.duration


@dataclass
class FireRecord:
    """One completed (or failed) task firing."""

    t_start: float
    t_end: float
    units: int
    completed: bool


class ChargeAndFireDevice(RailLoad):
    """Generic charge-and-fire load.

    The device sleeps (drawing ``quiescent_power``) until the rail reaches
    ``v_fire``, then executes its task, drawing the task's power until the
    task energy is delivered.  If the rail collapses below ``v_abort``
    mid-task, the task fails (it was not atomic after all) — sizing the
    storage so this never happens is the designer's job, which the tests
    exercise in both directions.

    Args:
        task: the atomic unit of work.
        v_fire: rail voltage that triggers execution.
        v_abort: rail voltage below which an in-flight task dies.
        quiescent_power: sleep draw while charging.
        fire_overhead: fixed energy cost paid once per firing (waking the
            MCU, stabilising clocks and radio) regardless of how many task
            units the firing runs — the cost burst scaling amortises.
    """

    def __init__(
        self,
        task: Task,
        v_fire: float,
        v_abort: float = 1.8,
        quiescent_power: float = 1e-6,
        fire_overhead: float = 0.0,
    ):
        if v_fire <= v_abort:
            raise ConfigurationError("v_fire must exceed v_abort")
        if fire_overhead < 0.0:
            raise ConfigurationError("fire overhead must be non-negative")
        self.task = task
        self.v_fire = v_fire
        self.v_abort = v_abort
        self.quiescent_power = quiescent_power
        self.fire_overhead = fire_overhead
        self.records: List[FireRecord] = []
        self._firing = False
        self._fire_started = 0.0
        self._energy_delivered = 0.0
        self._units_this_fire = 1

    # -- hooks subclasses override ----------------------------------------

    def units_for_fire(self, t: float, v: float) -> int:
        """Task units to run in this firing (burst size); default 1."""
        return 1

    def on_fire_complete(self, record: FireRecord) -> None:
        """Called when a firing finishes (completed or failed)."""

    # -- RailLoad ----------------------------------------------------------

    @property
    def completed_fires(self) -> int:
        """Count of firings that delivered their full task energy."""
        return sum(1 for r in self.records if r.completed)

    @property
    def failed_fires(self) -> int:
        """Count of firings that died mid-task."""
        return sum(1 for r in self.records if not r.completed)

    def fire_times(self) -> List[float]:
        """Completion times of successful firings (the Monjolo 'pings')."""
        return [r.t_end for r in self.records if r.completed]

    def advance(self, t: float, dt: float, v_rail: float) -> float:
        if self._firing:
            if v_rail < self.v_abort:
                self._finish(t, completed=False)
                return self.quiescent_power * dt
            draw = self.task.power * dt
            budget = self.task.energy * self._units_this_fire + self.fire_overhead
            remaining = budget - self._energy_delivered
            if draw >= remaining:
                self._energy_delivered = budget
                self._finish(t, completed=True)
                return remaining + self.quiescent_power * dt
            self._energy_delivered += draw
            return draw
        if v_rail >= self.v_fire:
            self._firing = True
            self._fire_started = t
            self._energy_delivered = 0.0
            self._units_this_fire = max(1, self.units_for_fire(t, v_rail))
        return self.quiescent_power * dt

    #: Bound on how far ahead a firing profile resolves its completion
    #: step.  Understating ``max_steps`` only shortens chunks (always
    #: safe), and capping it bounds the rescan cost per chunk for a
    #: very long firing to O(cap) rather than O(firing length).
    _MAX_FIRE_LOOKAHEAD = 1 << 13

    def load_profile(
        self, t: float, dt: float, v_rail: float
    ) -> Optional[LoadProfile]:
        """Fast-kernel event schedule: charge to ``v_fire``, then burn.

        Charging is a pure quiescent drain whose only exit is the rail
        rising through ``v_fire``; a firing is a constant task-power
        drain whose exits are the abort threshold (``v < v_abort``) and
        the time-based boundary where the budgeted energy runs out —
        the completing step (record, hooks) always runs per-step.
        """
        if type(self).advance is not ChargeAndFireDevice.advance:
            return None  # subclass changed the physics: stay per-step
        if not self._firing:
            return LoadProfile(
                power=self.quiescent_power, v_rising=self.v_fire
            )
        draw = self.task.power * dt
        if draw <= 0.0:
            return None
        budget = self.task.energy * self._units_this_fire + self.fire_overhead
        # Replicate the reference path's repeated `_energy_delivered +=
        # draw` float-for-float to find how many steps stay strictly
        # mid-firing.
        delivered = self._energy_delivered
        safe = 0
        while safe < self._MAX_FIRE_LOOKAHEAD:
            if draw >= budget - delivered:
                break
            delivered += draw
            safe += 1
        if safe <= 0:
            return None

        def commit(steps: int, dt_: float, energy: float) -> None:
            if steps:
                total = self._energy_delivered
                step_draw = self.task.power * dt_
                for _ in range(steps):
                    total += step_draw
                self._energy_delivered = total

        return LoadProfile(
            power=self.task.power,
            v_falling=self.v_abort,
            max_steps=safe,
            commit=commit,
        )

    def _finish(self, t: float, completed: bool) -> None:
        record = FireRecord(
            t_start=self._fire_started,
            t_end=t,
            units=self._units_this_fire,
            completed=completed,
        )
        self.records.append(record)
        self._firing = False
        self._energy_delivered = 0.0
        self.on_fire_complete(record)

    def reset(self) -> None:
        self.records.clear()
        self._firing = False
        self._energy_delivered = 0.0
        self._units_this_fire = 1


class WispCam(ChargeAndFireDevice):
    """Battery-free RFID camera (ref [4]): one photo per charge cycle.

    The paper's numbers: a 6 mF supercapacitor buffers enough for a single
    photo captured into NVM; data transfer happens over RFID backscatter
    (not separately modelled — it rides the same charge budget).
    """

    #: Energy to capture and store one QVGA photo (order of magnitude from
    #: the WISPCam paper: a few mJ).
    PHOTO_ENERGY = 2.4e-3
    PHOTO_DURATION = 0.65

    def __init__(self, v_fire: float = 4.1, v_abort: float = 2.2):
        super().__init__(
            Task("photo", self.PHOTO_ENERGY, self.PHOTO_DURATION),
            v_fire=v_fire,
            v_abort=v_abort,
            quiescent_power=2e-6,
        )

    @property
    def photos_taken(self) -> int:
        """Photos safely stored in NVM."""
        return self.completed_fires


class MonjoloMeter(ChargeAndFireDevice):
    """Energy-metering by ping frequency (ref [6]).

    The receiver estimates harvested power from the inter-ping rate:
    each completed fire consumed exactly (task energy + charge losses), so
    ``P_est = E_per_ping * ping_rate``.
    """

    #: One wireless packet: wake, sample, transmit.
    PING_ENERGY = 180e-6
    PING_DURATION = 0.012

    def __init__(self, v_fire: float = 3.3, v_abort: float = 1.9):
        super().__init__(
            Task("ping", self.PING_ENERGY, self.PING_DURATION),
            v_fire=v_fire,
            v_abort=v_abort,
            quiescent_power=0.5e-6,
        )

    def ping_rate(self, window: float) -> float:
        """Pings per second over the trailing ``window`` seconds."""
        if window <= 0.0:
            raise ConfigurationError("window must be positive")
        times = self.fire_times()
        if not times:
            return 0.0
        t_end = times[-1]
        recent = [t for t in times if t >= t_end - window]
        return len(recent) / window

    def estimated_power(self, window: float) -> float:
        """Receiver-side harvested-power estimate from the ping rate."""
        return self.PING_ENERGY * self.ping_rate(window)


class EnergyBurstScaler(ChargeAndFireDevice):
    """Dynamic energy burst scaling (ref [5]).

    When the capacitor reaches ``v_fire`` the controller sizes the burst to
    the energy actually available above the retention floor, running as
    many task units as that funds — fewer wakes, less per-wake overhead,
    higher throughput when harvesting is strong.
    """

    def __init__(
        self,
        unit_task: Task,
        capacitance: float = 80e-6,
        v_fire: float = 3.0,
        v_floor: float = 2.0,
        max_units: int = 32,
        wake_overhead: float = 8e-6,
    ):
        if capacitance <= 0.0:
            raise ConfigurationError("capacitance must be positive")
        if max_units < 1:
            raise ConfigurationError("max_units must be >= 1")
        super().__init__(
            unit_task,
            v_fire=v_fire,
            v_abort=v_floor,
            quiescent_power=1e-6,
            fire_overhead=wake_overhead,
        )
        self.capacitance = capacitance
        self.v_floor = v_floor
        self.max_units = max_units
        self.wake_overhead = wake_overhead

    def units_for_fire(self, t: float, v: float) -> int:
        usable = 0.5 * self.capacitance * (v * v - self.v_floor * self.v_floor)
        usable -= self.wake_overhead
        if usable <= 0.0:
            return 1
        return min(self.max_units, max(1, int(usable / self.task.energy)))

    @property
    def units_completed(self) -> int:
        """Total task units across all completed bursts."""
        return sum(r.units for r in self.records if r.completed)

    def mean_burst_size(self) -> float:
        """Average units per completed burst (1.0 = no scaling benefit)."""
        completed = [r.units for r in self.records if r.completed]
        if not completed:
            return 0.0
        return sum(completed) / len(completed)
