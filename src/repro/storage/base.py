"""Storage element interface.

Charge is the primary injection quantity (rectified sources push coulombs),
energy is the primary extraction quantity (loads consume joules); each
element keeps the two views consistent with its own physics.
"""

from __future__ import annotations

from typing import Optional

from repro.results.metrics import register_metric


class StorageElement:
    """Abstract energy store attached to a supply rail."""

    def chunk_physics(self) -> Optional["object"]:
        """Inline-able physics for the fast kernel, or None.

        Elements whose charge/energy updates reduce to capacitor-law
        scalar arithmetic return a
        :class:`~repro.sim.kernel.CapacitorPhysics`; everything else
        returns None, which keeps the rail on per-step execution.
        """
        return None

    @property
    def voltage(self) -> float:
        """Terminal voltage in volts."""
        raise NotImplementedError

    @property
    def stored_energy(self) -> float:
        """Energy currently held, in joules."""
        raise NotImplementedError

    @property
    def storage_capacity(self) -> float:
        """Maximum energy the element can hold, in joules.

        This is the quantity the Fig. 2 taxonomy axis measures.
        """
        raise NotImplementedError

    def add_charge(self, charge: float) -> float:
        """Push ``charge`` coulombs in; returns the charge actually accepted
        (the rest is shunted by overvoltage protection)."""
        raise NotImplementedError

    def add_energy(self, energy: float) -> float:
        """Push ``energy`` joules in; returns the energy actually accepted."""
        raise NotImplementedError

    def draw_energy(self, energy: float) -> float:
        """Extract up to ``energy`` joules; returns the energy delivered
        (less than requested once the element is empty)."""
        raise NotImplementedError

    def step_leakage(self, dt: float) -> float:
        """Apply self-discharge over ``dt`` seconds; returns joules leaked."""
        return 0.0

    def reset(self) -> None:
        """Restore the element to its initial state."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Results-pipeline contribution (see repro.results.metrics)
# ---------------------------------------------------------------------------


@register_metric(
    "storage", columns=("energy_stored_final", "storage_capacity"), order=40
)
def _storage_metric_columns(run, spec):
    """End-of-run state of charge and the taxonomy's capacity axis."""
    storage = run.rail.storage
    return {
        "energy_stored_final": storage.stored_energy,
        "storage_capacity": storage.storage_capacity,
    }
