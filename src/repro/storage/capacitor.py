"""Capacitor models.

The transient-computing systems in the paper live or die on capacitor
physics: expression (4) sets the hibernate threshold from ``C``, and the
difference between a 6 mF WISPCam supercap and 10 uF of decoupling is the
difference between task-based and continuous adaptation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.storage.base import StorageElement
from repro.spec.registry import register


@register("capacitor", kind="storage")
class Capacitor(StorageElement):
    """An (optionally leaky) capacitor with an overvoltage clamp.

    Args:
        capacitance: farads.
        v_max: overvoltage clamp — charge beyond this is shunted, modelling
            the protection diode/regulator present in real harvesting
            front-ends.
        v_initial: voltage at t=0 (default 0: cold start).
        leakage_resistance: parallel self-discharge resistance in ohms;
            ``None`` means ideal (no leakage).
    """

    def __init__(
        self,
        capacitance: float,
        v_max: float = 3.6,
        v_initial: float = 0.0,
        leakage_resistance: Optional[float] = None,
    ):
        if capacitance <= 0.0:
            raise ConfigurationError(f"capacitance must be positive, got {capacitance!r}")
        if v_max <= 0.0:
            raise ConfigurationError(f"v_max must be positive, got {v_max!r}")
        if not 0.0 <= v_initial <= v_max:
            raise ConfigurationError(f"v_initial must be in [0, v_max], got {v_initial!r}")
        if leakage_resistance is not None and leakage_resistance <= 0.0:
            raise ConfigurationError("leakage resistance must be positive")
        self.capacitance = capacitance
        self.v_max = v_max
        self.v_initial = v_initial
        self.leakage_resistance = leakage_resistance
        self._v = v_initial

    @property
    def voltage(self) -> float:
        return self._v

    @property
    def stored_energy(self) -> float:
        return 0.5 * self.capacitance * self._v * self._v

    @property
    def storage_capacity(self) -> float:
        return 0.5 * self.capacitance * self.v_max * self.v_max

    def add_charge(self, charge: float) -> float:
        if charge < 0.0:
            raise ConfigurationError("charge must be non-negative; use draw_energy")
        v_new = self._v + charge / self.capacitance
        if v_new > self.v_max:
            accepted = (self.v_max - self._v) * self.capacitance
            self._v = self.v_max
            return max(0.0, accepted)
        self._v = v_new
        return charge

    def add_energy(self, energy: float) -> float:
        if energy < 0.0:
            raise ConfigurationError("energy must be non-negative; use draw_energy")
        e_new = self.stored_energy + energy
        e_cap = self.storage_capacity
        if e_new > e_cap:
            accepted = e_cap - self.stored_energy
            self._v = self.v_max
            return max(0.0, accepted)
        self._v = math.sqrt(2.0 * e_new / self.capacitance)
        return energy

    def draw_energy(self, energy: float) -> float:
        if energy < 0.0:
            raise ConfigurationError("energy must be non-negative; use add_energy")
        available = self.stored_energy
        if energy >= available:
            self._v = 0.0
            return available
        self._v = math.sqrt(2.0 * (available - energy) / self.capacitance)
        return energy

    def step_leakage(self, dt: float) -> float:
        if self.leakage_resistance is None or self._v == 0.0:
            return 0.0
        before = self.stored_energy
        # Exact RC self-discharge over dt.
        tau = self.leakage_resistance * self.capacitance
        self._v *= math.exp(-dt / tau)
        return before - self.stored_energy

    def reset(self) -> None:
        self._v = self.v_initial

    def chunk_physics(self):
        """Fast-kernel physics descriptor (exact-type instances only).

        Subclasses that override any charge/energy method must publish
        their own descriptor (or None); gating on the exact type keeps an
        unaware subclass from silently running the wrong physics.
        """
        if type(self) is not Capacitor:
            return None
        return self._capacitor_physics(draw_overhead=1.0)

    def _capacitor_physics(self, draw_overhead: float):
        from repro.sim.kernel import CapacitorPhysics

        tau = (
            self.leakage_resistance * self.capacitance
            if self.leakage_resistance is not None
            else None
        )

        def write(v: float) -> None:
            self._v = v

        return CapacitorPhysics(
            capacitance=self.capacitance,
            v_max=self.v_max,
            leak_tau=tau,
            draw_overhead=draw_overhead,
            read_voltage=lambda: self._v,
            write_voltage=write,
        )

    def voltage_after_drawing(self, energy: float) -> float:
        """Voltage the capacitor would sit at after supplying ``energy``.

        The quantity expression (4) reasons about: drawing the snapshot
        energy E_s from voltage V_H must leave at least V_min.
        """
        remaining = self.stored_energy - energy
        if remaining <= 0.0:
            return 0.0
        return math.sqrt(2.0 * remaining / self.capacitance)


@dataclass(frozen=True)
class DecouplingBudget:
    """The 'theoretical arc' of Fig. 2: capacitance present for other reasons.

    Sums the parasitic and decoupling contributions a board carries anyway;
    a continuous-adaptation transient system operates from exactly this.
    """

    bulk_decoupling: float = 10e-6
    per_pin_decoupling: float = 100e-9
    pin_count: int = 8
    parasitic: float = 50e-9

    def total(self) -> float:
        """Total effective rail capacitance in farads."""
        return (
            self.bulk_decoupling
            + self.per_pin_decoupling * self.pin_count
            + self.parasitic
        )

    def as_capacitor(self, v_max: float = 3.6, v_initial: float = 0.0) -> Capacitor:
        """Materialise the budget as an ideal rail capacitor."""
        return Capacitor(self.total(), v_max=v_max, v_initial=v_initial)
