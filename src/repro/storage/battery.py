"""Rechargeable battery model.

Batteries anchor the right-hand side of the Fig. 2 taxonomy (smartphone,
laptop, energy-neutral WSN node).  The model is deliberately simple — a
nearly flat discharge curve, coulombic efficiency on charge, and a small
self-discharge — because the taxonomy cares about *capacity*, not chemistry.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.storage.base import StorageElement
from repro.spec.registry import register


@register("battery", kind="storage")
class RechargeableBattery(StorageElement):
    """Energy-bucket battery with a mildly SoC-dependent terminal voltage.

    Args:
        capacity: full-charge energy in joules.
        v_nominal: mid-charge terminal voltage.
        v_swing: total voltage swing across the SoC range (terminal voltage
            goes from ``v_nominal - v_swing/2`` empty to
            ``v_nominal + v_swing/2`` full).
        soc_initial: initial state of charge in [0, 1].
        charge_efficiency: fraction of injected energy actually stored.
        self_discharge_per_day: fractional energy loss per day at rest.
    """

    def __init__(
        self,
        capacity: float,
        v_nominal: float = 3.7,
        v_swing: float = 0.4,
        soc_initial: float = 0.5,
        charge_efficiency: float = 0.95,
        self_discharge_per_day: float = 0.001,
    ):
        if capacity <= 0.0:
            raise ConfigurationError(f"capacity must be positive, got {capacity!r}")
        if v_nominal <= 0.0 or v_swing < 0.0 or v_swing >= 2.0 * v_nominal:
            raise ConfigurationError("invalid voltage parameters")
        if not 0.0 <= soc_initial <= 1.0:
            raise ConfigurationError("soc_initial must be in [0, 1]")
        if not 0.0 < charge_efficiency <= 1.0:
            raise ConfigurationError("charge efficiency must be in (0, 1]")
        if not 0.0 <= self_discharge_per_day < 1.0:
            raise ConfigurationError("self-discharge must be in [0, 1)")
        self.capacity = capacity
        self.v_nominal = v_nominal
        self.v_swing = v_swing
        self.soc_initial = soc_initial
        self.charge_efficiency = charge_efficiency
        self.self_discharge_per_day = self_discharge_per_day
        self._energy = soc_initial * capacity

    @property
    def state_of_charge(self) -> float:
        """State of charge in [0, 1]."""
        return self._energy / self.capacity

    @property
    def voltage(self) -> float:
        return self.v_nominal + self.v_swing * (self.state_of_charge - 0.5)

    @property
    def stored_energy(self) -> float:
        return self._energy

    @property
    def storage_capacity(self) -> float:
        return self.capacity

    def add_charge(self, charge: float) -> float:
        if charge < 0.0:
            raise ConfigurationError("charge must be non-negative")
        energy = charge * self.voltage
        accepted = self.add_energy(energy)
        if energy == 0.0:
            return 0.0
        return charge * accepted / energy

    def add_energy(self, energy: float) -> float:
        if energy < 0.0:
            raise ConfigurationError("energy must be non-negative")
        stored = energy * self.charge_efficiency
        room = self.capacity - self._energy
        if stored > room:
            self._energy = self.capacity
            # Report acceptance in terms of input energy.
            return room / self.charge_efficiency
        self._energy += stored
        return energy

    def draw_energy(self, energy: float) -> float:
        if energy < 0.0:
            raise ConfigurationError("energy must be non-negative")
        drawn = min(energy, self._energy)
        self._energy -= drawn
        return drawn

    def step_leakage(self, dt: float) -> float:
        rate = self.self_discharge_per_day / 86400.0
        leaked = self._energy * rate * dt
        self._energy = max(0.0, self._energy - leaked)
        return leaked

    def reset(self) -> None:
        self._energy = self.soc_initial * self.capacity
