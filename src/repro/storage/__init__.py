"""Energy storage elements.

The taxonomy's horizontal axis (Fig. 2) is *the amount of energy storage in
the system*, from large batteries on the right, through task-sized
supercapacitors, down to nothing but parasitic/decoupling capacitance at the
'Theoretical' arc on the left.  Every element here reports its
:meth:`~repro.storage.base.StorageElement.storage_capacity` so the taxonomy
engine can place the system it belongs to.
"""

from repro.storage.base import StorageElement
from repro.storage.capacitor import Capacitor, DecouplingBudget
from repro.storage.supercap import Supercapacitor
from repro.storage.battery import RechargeableBattery
from repro.spec.registry import register


@register("decoupling", kind="storage")
def _decoupling_storage(
    v_max: float = 3.6,
    v_initial: float = 0.0,
    bulk_decoupling: float = 10e-6,
    per_pin_decoupling: float = 100e-9,
    pin_count: int = 8,
    parasitic: float = 50e-9,
):
    """The Fig. 2 'theoretical arc': decoupling budget as a rail capacitor.

    The budget fields are spelled out (no ``**kwargs``) so spec-layer
    parameter validation stays eager for this component.
    """
    budget = DecouplingBudget(
        bulk_decoupling=bulk_decoupling,
        per_pin_decoupling=per_pin_decoupling,
        pin_count=pin_count,
        parasitic=parasitic,
    )
    return budget.as_capacitor(v_max=v_max, v_initial=v_initial)

__all__ = [
    "StorageElement",
    "Capacitor",
    "DecouplingBudget",
    "Supercapacitor",
    "RechargeableBattery",
]
