"""Energy storage elements.

The taxonomy's horizontal axis (Fig. 2) is *the amount of energy storage in
the system*, from large batteries on the right, through task-sized
supercapacitors, down to nothing but parasitic/decoupling capacitance at the
'Theoretical' arc on the left.  Every element here reports its
:meth:`~repro.storage.base.StorageElement.storage_capacity` so the taxonomy
engine can place the system it belongs to.
"""

from repro.storage.base import StorageElement
from repro.storage.capacitor import Capacitor, DecouplingBudget
from repro.storage.supercap import Supercapacitor
from repro.storage.battery import RechargeableBattery

__all__ = [
    "StorageElement",
    "Capacitor",
    "DecouplingBudget",
    "Supercapacitor",
    "RechargeableBattery",
]
