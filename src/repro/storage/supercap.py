"""Supercapacitor: a capacitor with non-negligible leakage and ESR.

The task-based systems in §II.B all use supercapacitors (WISPCam: 6 mF,
Monjolo: 500 uF, Gomez burst scaling: 80 uF).  Compared to an ideal
capacitor the two effects that matter at this scale are self-discharge and
the effective series resistance limiting burst currents.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.storage.capacitor import Capacitor
from repro.spec.registry import register


@register("supercapacitor", kind="storage")
class Supercapacitor(Capacitor):
    """A leaky capacitor with an ESR-limited maximum discharge power.

    Args:
        esr: effective series resistance in ohms; bounds deliverable power
            at ``P_max = V^2 / (4 * esr)`` (maximum power transfer).
        leakage_resistance: defaults to a value giving a few-percent
            self-discharge per hour at 3 V, typical for small supercaps.
    """

    def __init__(
        self,
        capacitance: float,
        v_max: float = 5.0,
        v_initial: float = 0.0,
        esr: float = 25.0,
        leakage_resistance: Optional[float] = 2e6,
    ):
        super().__init__(
            capacitance,
            v_max=v_max,
            v_initial=v_initial,
            leakage_resistance=leakage_resistance,
        )
        if esr <= 0.0:
            raise ConfigurationError(f"esr must be positive, got {esr!r}")
        self.esr = esr

    def max_discharge_power(self) -> float:
        """Peak power deliverable into a matched load right now (W)."""
        return self._v * self._v / (4.0 * self.esr)

    def draw_energy(self, energy: float) -> float:
        """Draw energy, accounting for ESR loss.

        Delivering ``e`` joules to the load dissipates an extra fraction in
        the ESR; we approximate the loss factor from the ratio of requested
        power to the maximum transferable power at the present voltage
        (exact at the endpoints, smooth in between).
        """
        if energy <= 0.0:
            return super().draw_energy(energy)
        if self.max_discharge_power() <= 0.0:
            return 0.0
        # ESR loss is second-order for the sub-ms draws the simulator makes;
        # account for it as a small fixed-percentage overhead instead of a
        # per-draw power solve, keeping draw_energy O(1).
        overhead = 1.0 + self.esr_loss_fraction()
        drawn = super().draw_energy(energy * overhead)
        return drawn / overhead

    def esr_loss_fraction(self) -> float:
        """Fractional ESR overhead applied to each draw (small, voltage-free)."""
        return 0.02

    def chunk_physics(self):
        """Capacitor physics plus the fixed ESR draw overhead."""
        if type(self) is not Supercapacitor:
            return None
        return self._capacitor_physics(
            draw_overhead=1.0 + self.esr_loss_fraction()
        )
