"""Power-neutral and energy-neutral operation.

* :mod:`repro.neutral.power_neutral` — Fig. 8: a DFS governor that holds
  V_cc steady by modulating the MCU's clock, composed with Hibernus into
  the paper's hibernus-PN point.
* :mod:`repro.neutral.mpsoc` — Fig. 5: the ODROID-XU4 big.LITTLE model
  whose DVFS x core-count operating points span an order of magnitude of
  power, plus a power-neutral performance scaler over them (ref [11]).
* :mod:`repro.neutral.energy_neutral` — §II.A: Kansal-style energy-neutral
  duty-cycle management for a harvesting WSN node (ref [3]).
"""

from repro.neutral.power_neutral import (
    GovernorTrace,
    PowerNeutralGovernor,
    PowerNeutralHibernus,
)
from repro.neutral.mpsoc import (
    ClusterConfig,
    CpuCluster,
    MpsocLoad,
    MpsocOperatingPoint,
    OdroidXU4Model,
    PowerNeutralMpsocScaler,
)
from repro.neutral.energy_neutral import (
    DutyCycleManager,
    EwmaPredictor,
    WsnNode,
)

__all__ = [
    "PowerNeutralGovernor",
    "PowerNeutralHibernus",
    "GovernorTrace",
    "CpuCluster",
    "ClusterConfig",
    "MpsocLoad",
    "MpsocOperatingPoint",
    "OdroidXU4Model",
    "PowerNeutralMpsocScaler",
    "EwmaPredictor",
    "DutyCycleManager",
    "WsnNode",
]
