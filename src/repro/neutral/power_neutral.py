"""Power-neutral operation via DFS (§II.C, §III, Fig. 8).

Power neutrality is expression (3): P_h(t) = P_c(t) at every instant, with
only parasitic/decoupling capacitance smoothing the residual.  The control
signal is the rail voltage itself: if V_cc falls the load is drawing more
than the harvest (slow down); if it rises the harvest exceeds the draw
(speed up).  Holding V_cc constant *is* power neutrality — exactly how the
paper phrases it ("modulating this performance at runtime to keep V_cc
constant").

:class:`PowerNeutralHibernus` composes the governor with Hibernus: the
system of Fig. 8 that gracefully degrades performance as the gust fades
and, only when even the slowest operating point cannot be sustained,
hibernates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.transient.base import TransientPlatform
from repro.transient.hibernus import Hibernus
from repro.results.metrics import register_metric
from repro.spec.registry import register


@dataclass
class GovernorTrace:
    """Frequency decisions over time, for the Fig. 8 bottom panel."""

    times: List[float] = field(default_factory=list)
    frequencies: List[float] = field(default_factory=list)

    def record(self, t: float, frequency: float) -> None:
        """Append one decision."""
        self.times.append(t)
        self.frequencies.append(frequency)


@register("power-neutral", kind="governor")
class PowerNeutralGovernor:
    """Bang-bang-with-deadband DFS controller on the rail voltage.

    Args:
        v_target: the V_cc setpoint the governor tries to hold.
        deadband: half-width of the hold band around the setpoint; inside
            it the frequency stays put (avoids dithering).
        period: control period in seconds (DFS transitions are not free on
            real silicon; the governor acts at this rate, not every step).
            Zero means 'every evaluation'.
    """

    def __init__(self, v_target: float = 2.9, deadband: float = 0.12, period: float = 0.004):
        if deadband <= 0.0 or period < 0.0:
            raise ConfigurationError("deadband must be positive, period non-negative")
        self.v_target = v_target
        self.deadband = deadband
        self.period = period
        self.trace = GovernorTrace()
        self._last_decision = -1e30

    def control(self, platform: TransientPlatform, t: float, v: float) -> None:
        """One control evaluation; steps the platform clock up or down."""
        if t - self._last_decision < self.period:
            return
        self._last_decision = t
        if v < self.v_target - self.deadband:
            platform.clock.step_down()
        elif v > self.v_target + self.deadband:
            platform.clock.step_up()
        self.trace.record(t, platform.clock.frequency)

    def reset(self) -> None:
        """Clear the decision trace and timer."""
        self.trace = GovernorTrace()
        self._last_decision = -1e30


@register("power-neutral-hibernus", kind="strategy")
class PowerNeutralHibernus(Hibernus):
    """Hibernus + power-neutral DFS: the paper's hibernus-PN (§III, Fig. 8).

    While active, the governor modulates the clock to match consumption to
    harvest; the Hibernus voltage interrupt remains armed underneath and
    fires only when even minimum-frequency operation cannot be sustained —
    "between 0.4 and 1.1 seconds, power-neutral operation allows it to
    modulate its performance ... such that V_cc is not interrupted and
    hence does not incur the overheads of saving and restoring state".

    Args:
        governor: the DFS controller; defaults target V_cc above V_R so
            governing and hibernation thresholds nest correctly.
        kwargs: forwarded to :class:`Hibernus`.
    """

    name = "hibernus-pn"

    def __init__(self, governor: Optional[PowerNeutralGovernor] = None, **kwargs):
        super().__init__(**kwargs)
        self.governor = governor or PowerNeutralGovernor()

    def configure(self, platform: TransientPlatform) -> None:
        super().configure(platform)
        if self.governor.v_target - self.governor.deadband <= self.v_hibernate:
            raise ConfigurationError(
                "governor band must sit above V_H or DFS can never act "
                f"(band floor {self.governor.v_target - self.governor.deadband:.2f} V, "
                f"V_H {self.v_hibernate:.2f} V)"
            )

    def on_active(self, platform: TransientPlatform, t: float, v: float) -> None:
        self.governor.control(platform, t, v)
        super().on_active(platform, t, v)

    def on_restore_complete(
        self, platform: TransientPlatform, t: float, v: float
    ) -> None:
        # Resume cautiously: the supply just came back; let the governor
        # ramp up from the slowest point instead of slamming the rail.
        platform.clock.set_index(0)

    def reset(self) -> None:
        super().reset()
        self.governor.reset()


# ---------------------------------------------------------------------------
# Results-pipeline contribution (see repro.results.metrics)
# ---------------------------------------------------------------------------


@register_metric(
    "governor",
    columns=("governor_updates", "governor_mean_frequency"),
    order=50,
)
def _governor_metric_columns(run, spec):
    """DFS-governor activity; None unless a power-neutral strategy ran."""
    platform = run.platform
    if platform is None:
        return None
    strategy = platform.strategy
    if not isinstance(strategy, PowerNeutralHibernus):
        return None
    trace = strategy.governor.trace
    frequencies = trace.frequencies
    return {
        "governor_updates": len(frequencies),
        "governor_mean_frequency": (
            float(sum(frequencies) / len(frequencies)) if frequencies else None
        ),
    }
