"""Energy-neutral duty-cycle management for harvesting WSN nodes (ref [3]).

The §II.A approach: add enough storage that expression (2) always holds,
then satisfy expression (1) — energy harvested equals energy consumed over
a period T (24 h for solar) — by adapting the node's activity.

The manager follows Kansal et al.'s structure: a slotted EWMA predictor
learns the diurnal harvest profile; each slot the duty cycle is set so the
predicted daily harvest covers the planned daily consumption, with a
battery-level feedback term that nudges consumption whenever the stored
energy drifts from its target (which is what actually enforces neutrality
when predictions err).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.power.rail import RailLoad
from repro.storage.base import StorageElement
from repro.units import days


class EwmaPredictor:
    """Slotted exponentially-weighted moving-average harvest predictor.

    The day is divided into ``slots`` equal slots; each maintains an EWMA
    of the energy harvested during that slot on previous days — Kansal's
    prediction structure, which captures the diurnal cycle without a model
    of weather.
    """

    def __init__(self, slots: int = 48, alpha: float = 0.3):
        if slots < 1:
            raise ConfigurationError("need at least one slot")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.slots = slots
        self.alpha = alpha
        self._estimates: List[Optional[float]] = [None] * slots

    @property
    def slot_duration(self) -> float:
        """Seconds per slot."""
        return days(1) / self.slots

    def slot_of(self, t: float) -> int:
        """Slot index for simulation time ``t``."""
        return int((t % days(1)) / self.slot_duration)

    def observe(self, slot: int, energy: float) -> None:
        """Record the energy actually harvested during ``slot``."""
        if not 0 <= slot < self.slots:
            raise ConfigurationError(f"slot {slot} out of range")
        previous = self._estimates[slot]
        if previous is None:
            self._estimates[slot] = energy
        else:
            self._estimates[slot] = self.alpha * energy + (1.0 - self.alpha) * previous

    def predict_slot(self, slot: int) -> float:
        """Predicted energy for one slot (0 until first observation)."""
        value = self._estimates[slot % self.slots]
        return value if value is not None else 0.0

    def predict_day(self) -> float:
        """Predicted total energy over the next full day."""
        return sum(self.predict_slot(s) for s in range(self.slots))

    def trained(self) -> bool:
        """True once every slot has at least one observation."""
        return all(v is not None for v in self._estimates)


@dataclass
class DutySchedule:
    """Record of one duty-cycle decision."""

    t: float
    duty: float
    predicted_day_energy: float
    soc: float


class DutyCycleManager:
    """Kansal-style energy-neutral duty-cycle controller.

    Args:
        predictor: the slotted harvest predictor.
        p_active: node power while performing its duty (W).
        p_sleep: node power while sleeping (W).
        duty_min / duty_max: actuation limits.
        soc_target: battery state-of-charge the feedback term defends.
        feedback_gain: duty-cycle correction per unit SoC error.
    """

    def __init__(
        self,
        predictor: EwmaPredictor,
        p_active: float,
        p_sleep: float,
        duty_min: float = 0.01,
        duty_max: float = 1.0,
        soc_target: float = 0.6,
        feedback_gain: float = 0.8,
    ):
        if p_active <= p_sleep:
            raise ConfigurationError("p_active must exceed p_sleep")
        # Equality pins the duty cycle — useful for open-loop operation.
        if not 0.0 <= duty_min <= duty_max <= 1.0:
            raise ConfigurationError("need 0 <= duty_min <= duty_max <= 1")
        self.predictor = predictor
        self.p_active = p_active
        self.p_sleep = p_sleep
        self.duty_min = duty_min
        self.duty_max = duty_max
        self.soc_target = soc_target
        self.feedback_gain = feedback_gain
        self.schedule: List[DutySchedule] = []

    def duty_for(self, t: float, soc: float) -> float:
        """Duty cycle for the slot containing ``t`` given battery SoC."""
        day_energy = self.predictor.predict_day()
        day_seconds = days(1)
        # Solve E_pred = d * P_active * T + (1-d) * P_sleep * T for d.
        denom = (self.p_active - self.p_sleep) * day_seconds
        base = (day_energy - self.p_sleep * day_seconds) / denom
        corrected = base + self.feedback_gain * (soc - self.soc_target)
        duty = min(self.duty_max, max(self.duty_min, corrected))
        self.schedule.append(
            DutySchedule(t=t, duty=duty, predicted_day_energy=day_energy, soc=soc)
        )
        return duty

    def reset(self) -> None:
        """Clear the decision history."""
        self.schedule.clear()


class WsnNode(RailLoad):
    """A duty-cycled sensing node under energy-neutral management.

    The node re-evaluates its duty cycle at every predictor slot boundary,
    observes the harvest (through the rail's storage recovery — here
    approximated by the manager being fed the harvested energy externally
    via :meth:`observe_harvest`), and consumes accordingly.  'Work done'
    is counted in sample units (one per active second at full rate).
    """

    def __init__(
        self,
        manager: DutyCycleManager,
        storage: StorageElement,
        samples_per_active_second: float = 2.0,
    ):
        self.manager = manager
        self.storage = storage
        self.samples_per_active_second = samples_per_active_second
        self.duty = manager.duty_min
        self.samples_taken = 0.0
        self._current_slot = -1
        self._slot_harvest = 0.0

    def observe_harvest(self, energy: float) -> None:
        """Feed the energy harvested since the last call (accumulated into
        the current predictor slot)."""
        self._slot_harvest += energy

    def advance(self, t: float, dt: float, v_rail: float) -> float:
        slot = self.manager.predictor.slot_of(t)
        if slot != self._current_slot:
            if self._current_slot >= 0:
                self.manager.predictor.observe(self._current_slot, self._slot_harvest)
            self._slot_harvest = 0.0
            self._current_slot = slot
            soc = self.storage.stored_energy / self.storage.storage_capacity
            self.duty = self.manager.duty_for(t, soc)
        power = self.duty * self.manager.p_active + (1.0 - self.duty) * self.manager.p_sleep
        self.samples_taken += self.duty * self.samples_per_active_second * dt
        return power * dt

    def reset(self) -> None:
        self.duty = self.manager.duty_min
        self.samples_taken = 0.0
        self._current_slot = -1
        self._slot_harvest = 0.0
        self.manager.reset()
