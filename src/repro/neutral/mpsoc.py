"""Power-neutral MPSoC performance scaling (Fig. 5, ref [11]).

Fig. 5 plots raytrace frames-per-second against board power for an
ODROID-XU4 (Samsung Exynos 5422: 4x Cortex-A15 'big' + 4x Cortex-A7
'LITTLE'), sweeping DVFS levels and enabled-core combinations.  The paper's
point: those hooks modulate power by *an order of magnitude*, which is the
actuation range power-neutral operation needs.

The model is the standard first-order one: per-core dynamic power
``C_eff * f * V(f)^2``, per-core static power scaled by voltage, a board
baseline (fan, regulators, DRAM idle), and throughput ``IPC * f`` per core
with a mild parallel-efficiency discount (raytracing scales well but not
perfectly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of one CPU cluster.

    Attributes:
        name: cluster label ('big' / 'LITTLE').
        cores: number of cores in the cluster.
        freqs_v: DVFS table as (frequency Hz, voltage V) pairs, ascending.
        c_eff: effective switched capacitance per core (F).
        static_per_core: leakage power per powered core at nominal V (W).
        ipc: sustained instructions per cycle per core on the raytrace
            workload.
    """

    name: str
    cores: int
    freqs_v: Tuple[Tuple[float, float], ...]
    c_eff: float
    static_per_core: float
    ipc: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("a cluster needs at least one core")
        if not self.freqs_v:
            raise ConfigurationError("a cluster needs a DVFS table")


class CpuCluster:
    """Power/throughput evaluation for one cluster."""

    def __init__(self, config: ClusterConfig):
        self.config = config

    def power(self, active_cores: int, level: int) -> float:
        """Cluster power (W) with ``active_cores`` at DVFS ``level``.

        Hot-plugged-off cores are power-gated (no static power); an idle
        but powered cluster with zero active cores costs nothing here —
        the board baseline picks up shared rails.
        """
        self._validate(active_cores, level)
        if active_cores == 0:
            return 0.0
        f, v = self.config.freqs_v[level]
        dynamic = self.config.c_eff * f * v * v
        static = self.config.static_per_core * (v / self.config.freqs_v[-1][1])
        return active_cores * (dynamic + static)

    def throughput(self, active_cores: int, level: int) -> float:
        """Instructions per second with a parallel-efficiency discount."""
        self._validate(active_cores, level)
        if active_cores == 0:
            return 0.0
        f, _ = self.config.freqs_v[level]
        # 92% incremental efficiency per extra core (memory contention).
        scale = sum(0.92**i for i in range(active_cores))
        return self.config.ipc * f * scale

    def levels(self) -> int:
        """Number of DVFS levels."""
        return len(self.config.freqs_v)

    def _validate(self, active_cores: int, level: int) -> None:
        if not 0 <= active_cores <= self.config.cores:
            raise ConfigurationError(
                f"{self.config.name}: active cores {active_cores} out of range"
            )
        if not 0 <= level < len(self.config.freqs_v):
            raise ConfigurationError(f"{self.config.name}: DVFS level {level} out of range")


@dataclass(frozen=True)
class MpsocOperatingPoint:
    """One point of the Fig. 5 cloud."""

    big_cores: int
    big_level: int
    little_cores: int
    little_level: int
    power: float
    fps: float


def _a15_table() -> Tuple[Tuple[float, float], ...]:
    freqs = [0.2e9, 0.4e9, 0.6e9, 0.8e9, 1.0e9, 1.2e9, 1.4e9, 1.6e9, 1.8e9, 2.0e9]
    volts = [0.92, 0.95, 0.98, 1.02, 1.06, 1.10, 1.14, 1.19, 1.24, 1.30]
    return tuple(zip(freqs, volts))


def _a7_table() -> Tuple[Tuple[float, float], ...]:
    freqs = [0.2e9, 0.4e9, 0.6e9, 0.8e9, 1.0e9, 1.2e9, 1.4e9]
    volts = [0.90, 0.92, 0.95, 0.98, 1.02, 1.06, 1.12]
    return tuple(zip(freqs, volts))


class OdroidXU4Model:
    """The Fig. 5 platform: Exynos 5422 big.LITTLE running a raytracer.

    Args:
        instructions_per_frame: raytrace cost per frame; the default is
            tuned so the flat-out configuration lands near the figure's
            ~0.23 FPS ceiling.
        board_baseline: always-on board power (fan, DRAM, regulators).
    """

    def __init__(
        self,
        instructions_per_frame: float = 6.5e10,
        board_baseline: float = 0.45,
    ):
        if instructions_per_frame <= 0.0 or board_baseline < 0.0:
            raise ConfigurationError("invalid platform parameters")
        self.big = CpuCluster(
            ClusterConfig(
                name="big",
                cores=4,
                freqs_v=_a15_table(),
                c_eff=1.45e-9,
                static_per_core=0.28,
                ipc=1.7,
            )
        )
        self.little = CpuCluster(
            ClusterConfig(
                name="LITTLE",
                cores=4,
                freqs_v=_a7_table(),
                c_eff=0.45e-9,
                static_per_core=0.06,
                ipc=0.9,
            )
        )
        self.instructions_per_frame = instructions_per_frame
        self.board_baseline = board_baseline

    def evaluate(
        self, big_cores: int, big_level: int, little_cores: int, little_level: int
    ) -> MpsocOperatingPoint:
        """Power and raytrace FPS for one configuration."""
        power = (
            self.board_baseline
            + self.big.power(big_cores, big_level)
            + self.little.power(little_cores, little_level)
        )
        ips = self.big.throughput(big_cores, big_level) + self.little.throughput(
            little_cores, little_level
        )
        return MpsocOperatingPoint(
            big_cores=big_cores,
            big_level=big_level,
            little_cores=little_cores,
            little_level=little_level,
            power=power,
            fps=ips / self.instructions_per_frame,
        )

    def operating_points(self) -> List[MpsocOperatingPoint]:
        """The full Fig. 5 cloud: every core-count x DVFS combination.

        At least one core must be active (the OS has to run somewhere);
        both clusters sweep their levels independently, but to keep the
        cloud the size of the figure's, an inactive cluster contributes a
        single (0-core) entry rather than one per level.
        """
        points: List[MpsocOperatingPoint] = []
        for big_cores in range(self.big.config.cores + 1):
            big_levels = range(self.big.levels()) if big_cores else [0]
            for big_level in big_levels:
                for little_cores in range(self.little.config.cores + 1):
                    if big_cores == 0 and little_cores == 0:
                        continue
                    little_levels = (
                        range(self.little.levels()) if little_cores else [0]
                    )
                    for little_level in little_levels:
                        points.append(
                            self.evaluate(
                                big_cores, big_level, little_cores, little_level
                            )
                        )
        return points


def pareto_frontier(
    points: Sequence[MpsocOperatingPoint],
) -> List[MpsocOperatingPoint]:
    """Points not dominated in (lower power, higher fps), by power order."""
    frontier: List[MpsocOperatingPoint] = []
    best_fps = -1.0
    for point in sorted(points, key=lambda p: (p.power, -p.fps)):
        if point.fps > best_fps:
            frontier.append(point)
            best_fps = point.fps
    return frontier


class MpsocLoad:
    """A rail-coupled MPSoC under power-neutral control (ref [11]).

    The Fig. 4 architecture at MPSoC scale: the board hangs on a rail fed
    by a harvester, and a governor re-selects the operating point each
    control period from the rail-voltage error — holding V_cc constant is
    power neutrality (expression (3)).  Frames accumulate according to the
    active point's FPS.

    Implements the :class:`repro.power.rail.RailLoad` protocol.
    """

    def __init__(
        self,
        scaler: "PowerNeutralMpsocScaler",
        v_target: float = 5.0,
        deadband: float = 0.25,
        period: float = 0.1,
        v_min_operate: float = 4.0,
    ):
        if deadband <= 0.0 or period <= 0.0:
            raise ConfigurationError("deadband and period must be positive")
        self.scaler = scaler
        self.v_target = v_target
        self.deadband = deadband
        self.period = period
        self.v_min_operate = v_min_operate
        self._frontier = scaler.frontier
        self._index: Optional[int] = None  # None = suspended
        self._last_decision = -1e30
        self.frames_rendered = 0.0
        self.suspended_time = 0.0

    @property
    def current_point(self) -> Optional[MpsocOperatingPoint]:
        """The active operating point, or None while suspended."""
        if self._index is None:
            return None
        return self._frontier[self._index]

    def _control(self, t: float, v: float) -> None:
        if t - self._last_decision < self.period:
            return
        self._last_decision = t
        if v < self.v_min_operate:
            self._index = None
            return
        if self._index is None:
            self._index = 0
            return
        if v < self.v_target - self.deadband and self._index > 0:
            self._index -= 1
        elif v > self.v_target + self.deadband and self._index < len(self._frontier) - 1:
            self._index += 1

    def advance(self, t: float, dt: float, v_rail: float) -> float:
        self._control(t, v_rail)
        point = self.current_point
        if point is None:
            self.suspended_time += dt
            return 0.05 * dt  # suspend/monitor power
        self.frames_rendered += point.fps * dt
        return point.power * dt

    def reset(self) -> None:
        self._index = None
        self._last_decision = -1e30
        self.frames_rendered = 0.0
        self.suspended_time = 0.0


class PowerNeutralMpsocScaler:
    """Power-neutral performance scaling over the operating-point cloud.

    Given the instantaneous harvested power budget, select the highest-FPS
    operating point whose power fits — the MPSoC equivalent of the MCU DFS
    governor, matching P_c to P_h by moving along the Pareto frontier
    (ref [11]).
    """

    def __init__(self, model: Optional[OdroidXU4Model] = None):
        self.model = model or OdroidXU4Model()
        self._frontier = pareto_frontier(self.model.operating_points())
        self.decisions: List[MpsocOperatingPoint] = []

    @property
    def frontier(self) -> List[MpsocOperatingPoint]:
        """The Pareto frontier the scaler walks (ascending power)."""
        return list(self._frontier)

    def select_point(self, power_budget: float) -> Optional[MpsocOperatingPoint]:
        """Best point with ``power <= power_budget`` (None if even the
        floor point does not fit — the system must suspend)."""
        chosen: Optional[MpsocOperatingPoint] = None
        for point in self._frontier:
            if point.power <= power_budget:
                chosen = point
            else:
                break
        if chosen is not None:
            self.decisions.append(chosen)
        return chosen

    def track(self, power_trace: Sequence[float]) -> List[Optional[MpsocOperatingPoint]]:
        """Select a point for each sample of a harvested-power trace."""
        return [self.select_point(p) for p in power_trace]
