"""repro: energy-driven computing.

A simulation framework for transient and power-neutral energy-harvesting
systems, reproducing Merrett & Al-Hashimi, "Energy-Driven Computing:
Rethinking the Design of Energy Harvesting Systems" (DATE 2017).

Quickstart (the paper's Fig. 6 one-liner, translated)::

    from repro import (
        Capacitor, EnergyDrivenSystem, Hibernus, MachineEngine,
        Machine, SignalGenerator, TransientPlatform, assemble,
    )
    from repro.mcu.programs import fft_program

    engine = MachineEngine(Machine(assemble(fft_program(64))))
    platform = TransientPlatform(engine, Hibernus())   # <- 'Hibernus();'
    system = EnergyDrivenSystem(dt=50e-6)
    system.set_storage(Capacitor(22e-6, v_max=3.3))
    system.add_voltage_source(SignalGenerator(3.3, 4.7, rectified=True))
    system.set_platform(platform)
    result = system.run(1.0)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro.errors import (
    AssemblerError,
    BrownoutError,
    ConfigurationError,
    MachineError,
    ReproError,
    SimulationError,
    SnapshotError,
    TaxonomyError,
)
from repro.sim import Simulator, Trace
from repro.harvest import (
    ConstantPowerHarvester,
    GatedPowerHarvester,
    HalfWaveRectifiedSinePower,
    ImpactKineticHarvester,
    MicroWindTurbine,
    PhotovoltaicHarvester,
    RFHarvester,
    SignalGenerator,
    SineVoltageHarvester,
    SquareWavePowerHarvester,
    ThermoelectricHarvester,
    TraceHarvester,
    VibrationHarvester,
)
from repro.storage import Capacitor, DecouplingBudget, RechargeableBattery, Supercapacitor
from repro.power import (
    BoostConverter,
    FractionalVocMPPT,
    HalfWaveRectifier,
    LinearRegulator,
    SupplyRail,
)
from repro.mcu import (
    ClockPlan,
    Machine,
    MachineConfig,
    MachineEngine,
    McuPowerModel,
    SyntheticEngine,
    assemble,
)
from repro.transient import (
    EnergyBurstScaler,
    Hibernus,
    HibernusPP,
    Mementos,
    MonjoloMeter,
    NVProcessor,
    NullStrategy,
    QuickRecall,
    SnapshotStore,
    TransientPlatform,
    TransientPlatformConfig,
    WispCam,
    hibernate_threshold,
)
from repro.neutral import (
    DutyCycleManager,
    EwmaPredictor,
    OdroidXU4Model,
    PowerNeutralGovernor,
    PowerNeutralHibernus,
    PowerNeutralMpsocScaler,
    WsnNode,
)
from repro.core import (
    EnergyDrivenSystem,
    RunReport,
    SystemDescriptor,
    classify,
    crossover_frequency,
    energy_neutral_over,
    exemplars,
    expression2_holds,
    minimum_capacitance,
)
from repro.spec import (
    HarvesterSpec,
    LoadSpec,
    PlatformSpec,
    ScenarioSpec,
    StorageSpec,
    SweepResult,
    SweepRunner,
    register,
)
from repro.results import (
    ResultStore,
    RunResult,
    metric_columns,
    register_metric,
    result_columns,
    spec_hash,
)
from repro.explore import (
    Axis,
    ExplorationDriver,
    ExplorationResult,
    Objective,
    SearchSpace,
    available_optimizers,
    register_optimizer,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "BrownoutError",
    "AssemblerError",
    "MachineError",
    "SnapshotError",
    "TaxonomyError",
    # sim
    "Simulator",
    "Trace",
    # harvest
    "ConstantPowerHarvester",
    "SignalGenerator",
    "SineVoltageHarvester",
    "HalfWaveRectifiedSinePower",
    "SquareWavePowerHarvester",
    "GatedPowerHarvester",
    "MicroWindTurbine",
    "PhotovoltaicHarvester",
    "RFHarvester",
    "ImpactKineticHarvester",
    "VibrationHarvester",
    "ThermoelectricHarvester",
    "TraceHarvester",
    # storage
    "Capacitor",
    "Supercapacitor",
    "RechargeableBattery",
    "DecouplingBudget",
    # power
    "SupplyRail",
    "HalfWaveRectifier",
    "LinearRegulator",
    "BoostConverter",
    "FractionalVocMPPT",
    # mcu
    "Machine",
    "MachineConfig",
    "MachineEngine",
    "SyntheticEngine",
    "ClockPlan",
    "McuPowerModel",
    "assemble",
    # transient
    "TransientPlatform",
    "TransientPlatformConfig",
    "SnapshotStore",
    "NullStrategy",
    "Hibernus",
    "HibernusPP",
    "QuickRecall",
    "Mementos",
    "NVProcessor",
    "hibernate_threshold",
    "WispCam",
    "MonjoloMeter",
    "EnergyBurstScaler",
    # neutral
    "PowerNeutralGovernor",
    "PowerNeutralHibernus",
    "OdroidXU4Model",
    "PowerNeutralMpsocScaler",
    "EwmaPredictor",
    "DutyCycleManager",
    "WsnNode",
    # spec
    "ScenarioSpec",
    "HarvesterSpec",
    "StorageSpec",
    "LoadSpec",
    "PlatformSpec",
    "SweepRunner",
    "SweepResult",
    "register",
    # results
    "RunResult",
    "ResultStore",
    "register_metric",
    "metric_columns",
    "result_columns",
    "spec_hash",
    # explore
    "Axis",
    "SearchSpace",
    "Objective",
    "ExplorationDriver",
    "ExplorationResult",
    "register_optimizer",
    "available_optimizers",
    # core
    "EnergyDrivenSystem",
    "SystemDescriptor",
    "classify",
    "exemplars",
    "RunReport",
    "energy_neutral_over",
    "expression2_holds",
    "crossover_frequency",
    "minimum_capacitance",
]
