"""``repro.obs`` — the unified instrumentation layer.

Two primitives, one enablement switch:

* **Metrics** (:mod:`repro.obs.metrics`): a process-wide get-or-create
  registry of counters, gauges and fixed-bucket histograms.  On by
  default (the enabled path is a lock + float add, bumped per run / per
  batch / per request — never per simulation step); ``REPRO_OBS=0``
  or :func:`set_obs_enabled` reduces every update to an attribute
  check.
* **Spans** (:mod:`repro.obs.trace`): ``with obs.span("kernel.run",
  kernel="fast"):`` context managers on monotonic clocks, captured into
  a bounded buffer only while tracing is enabled (``--trace-out``, the
  service's ``/v1/trace`` window, or :class:`capture` in tests) and
  exported as Chrome trace-event JSON.

Instrumented layers import this package as ``from repro import obs``
and use the module-level helpers; nothing needs wiring or setup.  See
DESIGN.md "Observability" for the naming scheme and the checklist for
instrumenting a new component.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    obs_enabled,
    registry,
    set_obs_enabled,
)
from repro.obs.trace import (
    absorb,
    capture,
    chrome_trace,
    disable_tracing,
    drain,
    dropped_events,
    enable_tracing,
    events,
    instant,
    span,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "obs_enabled",
    "set_obs_enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "instant",
    "capture",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "events",
    "drain",
    "absorb",
    "dropped_events",
    "chrome_trace",
    "write_trace",
    "record_progress",
    "export_trace",
]


def counter(name: str, **labels: Any) -> Counter:
    """``registry.counter`` shorthand."""
    return registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """``registry.gauge`` shorthand."""
    return registry.gauge(name, **labels)


def histogram(name: str, buckets=None, **labels: Any) -> Histogram:
    """``registry.histogram`` shorthand."""
    return registry.histogram(name, buckets=buckets, **labels)


def record_progress(event: Any) -> None:
    """Fold one :class:`repro.spec.runner.BatchProgress` into the layer.

    Called centrally by the sweep runner and exploration driver for
    every batch — whether or not a ``--progress`` hook is attached — so
    the CLI progress stream, job event logs and ``/metrics`` all read
    from the same numbers.  Bumps the progress counters and, when a
    trace is being captured, emits one instant event marking the batch
    on the timeline.
    """
    if not obs_enabled():
        return
    registry.counter("repro_progress_batches_total").inc()
    registry.counter("repro_points_computed_total").inc(event.computed)
    registry.counter("repro_points_cached_total").inc(event.cached)
    registry.counter("repro_points_errors_total").inc(event.errors)
    instant(
        "progress.batch",
        label=event.label,
        batch=event.batch,
        computed=event.computed,
        cached=event.cached,
        errors=event.errors,
        total=event.total,
    )


def export_trace(path: str, metrics: Optional[Mapping[str, Any]] = None) -> int:
    """Drain the span buffer to a Chrome trace file at ``path``.

    The CLI ``--trace-out`` epilogue: the buffered events are consumed
    (so back-to-back runs in one process don't bleed together) and the
    current metrics snapshot rides along under ``otherData.metrics``
    unless an explicit snapshot is passed.  Returns the event count.
    """
    snapshot: Dict[str, Any] = (
        dict(metrics) if metrics is not None else registry.snapshot()
    )
    return write_trace(path, trace_events=drain(), metrics=snapshot)
