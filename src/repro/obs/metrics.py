"""The process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per process (the module-level
:data:`registry`) aggregates everything the instrumented layers record:
kernel chunk/pass counts, pool queue waits, store append wall times,
HTTP request latencies.  Instruments are **get-or-create** —
``registry.counter("repro_store_rows_appended_total").inc(3)`` works
from any layer without setup — and label sets address children of one
family exactly as in Prometheus
(``registry.histogram("repro_http_request_seconds", endpoint="/metrics",
method="GET")``).

Design constraints, in priority order:

* **Cheap when disabled.**  ``repro.obs.set_enabled(False)`` (or
  ``REPRO_OBS=0`` in the environment) turns every ``inc``/``set``/
  ``observe`` into a single attribute check and return.  The enabled
  path is one lock acquire plus a float add — cheap enough to leave on
  by default, which is why the instrumentation-overhead gate in
  ``check_regression.py`` budgets 3% for the *enabled* path.
* **Thread-safe.**  The registry serves HTTP handler threads, the job
  executor thread and the main thread concurrently; one registry lock
  covers instrument creation and every update (updates are nanoseconds,
  so contention is irrelevant at this event rate — instruments are
  bumped per run / per batch / per request, never per simulation step).
* **Mergeable across processes.**  Warm-pool workers run the kernel in
  separate processes; :meth:`MetricsRegistry.values` /
  :meth:`MetricsRegistry.delta` / :meth:`MetricsRegistry.merge_delta`
  let a worker ship the counters one task produced back to the parent
  as a plain dict (see ``repro.spec.runner``), so ``/metrics`` reflects
  kernel activity wherever it physically ran.

Naming scheme (see DESIGN.md "Observability"): metric names are
Prometheus-style ``repro_<layer>_<quantity>[_<unit>][_total]`` —
``repro_kernel_chunked_steps_total``, ``repro_pool_chunk_wait_seconds``
— with low-cardinality labels only (kernel name, endpoint, job kind;
never spec hashes or job ids).
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
]

#: Default histogram bucket boundaries (seconds-oriented: the common
#: instrumented quantity is a wall time).  Fixed at creation — a
#: histogram's identity includes its boundaries, so deltas merge
#: bucket-by-bucket without resampling.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _ObsState:
    """The one mutable enablement flag, shared by metrics and tracing.

    An instrument's hot path reads ``_STATE.enabled`` and returns — the
    documented no-op-attribute-check disabled path.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = os.environ.get("REPRO_OBS", "1").lower() not in (
            "0", "false", "no", "off",
        )


_STATE = _ObsState()


def obs_enabled() -> bool:
    """Whether instrumentation records anything at all."""
    return _STATE.enabled


def set_obs_enabled(enabled: bool) -> bool:
    """Flip the process-wide instrumentation switch; returns the old value."""
    previous = _STATE.enabled
    _STATE.enabled = bool(enabled)
    return previous


LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus exposition number formatting."""
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: LabelItems, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(items)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class _Instrument:
    """Common identity: a name plus a sorted label tuple."""

    kind = "untyped"
    __slots__ = ("name", "label_items", "_lock")

    def __init__(self, name: str, label_items: LabelItems, lock: threading.Lock):
        self.name = name
        self.label_items = label_items
        self._lock = lock

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self.label_items)


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, label_items: LabelItems, lock: threading.Lock):
        super().__init__(name, label_items, lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, worker count)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name: str, label_items: LabelItems, lock: threading.Lock):
        super().__init__(name, label_items, lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Instrument):
    """Cumulative-bucket histogram with fixed boundaries.

    ``observe`` places the value in the first bucket whose upper bound
    is >= value (bisect over the fixed boundary tuple); rendering emits
    Prometheus cumulative ``_bucket``/``_sum``/``_count`` series.
    """

    kind = "histogram"
    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        label_items: LabelItems,
        lock: threading.Lock,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, label_items, lock)
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name!r}: bucket bounds must be strictly "
                f"increasing, got {bounds!r}"
            )
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _STATE.enabled:
            return
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf slot last."""
        return list(self._counts)

    def quantile(self, q: float) -> Optional[float]:
        """A bucket-boundary estimate of the q-quantile (None when empty).

        Returns the upper bound of the bucket holding the q-th sample —
        coarse by construction, but exactly what fixed-bucket data can
        support; the ``repro obs`` summary table uses it for p50/p99.
        """
        if self._count == 0:
            return None
        rank = q * self._count
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= rank and count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return math.inf
        return math.inf


class MetricsRegistry:
    """Thread-safe get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelItems], _Instrument] = {}

    # -- instrument access -----------------------------------------------

    def _get(self, cls, name: str, labels: Mapping[str, Any], **kwargs):
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], self._lock, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> Histogram:
        kwargs = {}
        if buckets is not None:
            kwargs["bounds"] = tuple(buckets)
        return self._get(Histogram, name, labels, **kwargs)

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def reset(self) -> None:
        """Drop every instrument (tests)."""
        with self._lock:
            self._instruments.clear()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able point-in-time view of every instrument.

        The whole read happens under the registry lock, so counters
        that are updated together are reported together.
        """
        counters: List[Dict[str, Any]] = []
        gauges: List[Dict[str, Any]] = []
        histograms: List[Dict[str, Any]] = []
        with self._lock:
            for instrument in self._instruments.values():
                if isinstance(instrument, Counter):
                    counters.append({
                        "name": instrument.name,
                        "labels": instrument.labels,
                        "value": instrument.value,
                    })
                elif isinstance(instrument, Gauge):
                    gauges.append({
                        "name": instrument.name,
                        "labels": instrument.labels,
                        "value": instrument.value,
                    })
                elif isinstance(instrument, Histogram):
                    histograms.append({
                        "name": instrument.name,
                        "labels": instrument.labels,
                        "count": instrument.count,
                        "sum": instrument.sum,
                        "bounds": list(instrument.bounds),
                        "buckets": instrument.bucket_counts(),
                    })
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        with self._lock:
            families: Dict[str, List[_Instrument]] = {}
            for instrument in self._instruments.values():
                families.setdefault(instrument.name, []).append(instrument)
            for name in sorted(families):
                members = families[name]
                lines.append(f"# TYPE {name} {members[0].kind}")
                for inst in members:
                    if isinstance(inst, (Counter, Gauge)):
                        lines.append(
                            f"{name}{_render_labels(inst.label_items)} "
                            f"{_format_value(inst.value)}"
                        )
                    elif isinstance(inst, Histogram):
                        cumulative = 0
                        for bound, count in zip(
                            list(inst.bounds) + [math.inf],
                            inst.bucket_counts(),
                        ):
                            cumulative += count
                            le = _render_labels(
                                inst.label_items, ("le", _format_value(bound))
                            )
                            lines.append(f"{name}_bucket{le} {cumulative}")
                        labels = _render_labels(inst.label_items)
                        lines.append(
                            f"{name}_sum{labels} {_format_value(inst.sum)}"
                        )
                        lines.append(f"{name}_count{labels} {inst.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- cross-process aggregation ----------------------------------------

    def values(self) -> Dict[str, Any]:
        """The raw state a :meth:`delta` is computed against."""
        counters: Dict[Tuple[str, LabelItems], float] = {}
        histograms: Dict[Tuple[str, LabelItems], Tuple] = {}
        with self._lock:
            for key, inst in self._instruments.items():
                if isinstance(inst, Counter):
                    counters[key] = inst.value
                elif isinstance(inst, Histogram):
                    histograms[key] = (
                        inst.bounds, tuple(inst.bucket_counts()), inst.sum,
                    )
        return {"counters": counters, "histograms": histograms}

    def delta(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """What changed since ``before`` (a :meth:`values` snapshot).

        Returns a picklable plain-dict delta: counter increments and
        histogram bucket/sum increments.  Gauges are process-local state
        (queue depth, worker count) and intentionally do not travel.
        """
        after = self.values()
        counters = []
        for key, value in after["counters"].items():
            increment = value - before["counters"].get(key, 0.0)
            if increment:
                counters.append([key[0], dict(key[1]), increment])
        histograms = []
        for key, (bounds, buckets, total) in after["histograms"].items():
            prev = before["histograms"].get(key)
            prev_buckets = prev[1] if prev else (0,) * len(buckets)
            prev_sum = prev[2] if prev else 0.0
            increments = [b - p for b, p in zip(buckets, prev_buckets)]
            if any(increments):
                histograms.append([
                    key[0], dict(key[1]), list(bounds), increments,
                    total - prev_sum,
                ])
        delta: Dict[str, Any] = {}
        if counters:
            delta["counters"] = counters
        if histograms:
            delta["histograms"] = histograms
        return delta

    def merge_delta(self, delta: Mapping[str, Any]) -> None:
        """Fold a worker's :meth:`delta` into this registry."""
        if not delta or not _STATE.enabled:
            return
        for name, labels, increment in delta.get("counters", ()):
            self.counter(name, **labels).inc(increment)
        for name, labels, bounds, increments, total in delta.get(
            "histograms", ()
        ):
            hist = self.histogram(name, buckets=bounds, **labels)
            with self._lock:
                for index, increment in enumerate(increments):
                    hist._counts[index] += increment
                added = sum(increments)
                hist._count += added
                hist._sum += total


#: The process-wide registry every instrumented layer records into.
registry = MetricsRegistry()
