"""Human-readable summaries of Chrome trace files (``repro obs``).

A trace produced by ``--trace-out`` (or fetched from ``GET /v1/trace``)
carries both the span events and a metrics snapshot under
``otherData.metrics``.  This module aggregates that into the terminal
tables the ``repro obs`` subcommand prints: top spans by cumulative
wall time, counter/gauge listings, and histogram summaries with
bucket-boundary p50/p99 estimates.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = ["load_trace", "summarize_spans", "render_report"]


def load_trace(path: str) -> Dict[str, Any]:
    """Parse a Chrome trace-event JSON file (object or bare array form)."""
    with open(path, "r", encoding="utf-8") as stream:
        body = json.load(stream)
    if isinstance(body, list):
        body = {"traceEvents": body, "otherData": {}}
    if not isinstance(body, dict) or "traceEvents" not in body:
        raise ValueError(f"{path}: not a Chrome trace-event file")
    return body


def summarize_spans(
    trace_events: Iterable[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Aggregate complete-span events by name, sorted by cumulative time.

    Returns rows of ``{name, count, total_s, avg_s, max_s}``; instant
    events get ``total_s = 0`` and are listed by count.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for event in trace_events:
        name = event.get("name", "?")
        phase = event.get("ph")
        row = rows.setdefault(
            name, {"name": name, "count": 0, "total_s": 0.0, "max_s": 0.0},
        )
        row["count"] += 1
        if phase == "X":
            dur_s = float(event.get("dur", 0.0)) / 1e6
            row["total_s"] += dur_s
            row["max_s"] = max(row["max_s"], dur_s)
    for row in rows.values():
        row["avg_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
    return sorted(rows.values(), key=lambda r: (-r["total_s"], r["name"]))


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:7.2f}ms"
    return f"{value * 1e6:7.1f}us"


def _snapshot_quantile(
    bounds: List[float], buckets: List[int], q: float,
) -> Optional[float]:
    """Bucket-boundary quantile from a snapshot's (bounds, counts) pair."""
    total = sum(buckets)
    if not total:
        return None
    rank = q * total
    seen = 0
    for index, count in enumerate(buckets):
        seen += count
        if seen >= rank and count:
            return bounds[index] if index < len(bounds) else math.inf
    return math.inf


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_report(body: Mapping[str, Any], top: int = 20) -> str:
    """The full ``repro obs`` text report for one loaded trace body."""
    lines: List[str] = []
    trace_events = body.get("traceEvents", [])
    spans = summarize_spans(trace_events)

    lines.append(f"trace: {len(trace_events)} events, "
                 f"{len(spans)} distinct names")
    other = body.get("otherData") or {}
    if other.get("evictions"):
        lines.append(f"  (buffer evicted oldest events "
                     f"{other['evictions']} time(s) — totals are partial)")
    lines.append("")

    if spans:
        lines.append("top spans by cumulative wall time")
        lines.append(f"  {'span':<32} {'count':>7} {'total':>10} "
                     f"{'avg':>10} {'max':>10}")
        for row in spans[:top]:
            lines.append(
                f"  {row['name']:<32} {row['count']:>7} "
                f"{_fmt_seconds(row['total_s']):>10} "
                f"{_fmt_seconds(row['avg_s']):>10} "
                f"{_fmt_seconds(row['max_s']):>10}"
            )
        if len(spans) > top:
            lines.append(f"  ... {len(spans) - top} more")
        lines.append("")

    metrics = other.get("metrics") or {}
    counters = metrics.get("counters", [])
    gauges = metrics.get("gauges", [])
    histograms = metrics.get("histograms", [])

    if counters or gauges:
        lines.append("counters and gauges")
        for item in sorted(
            counters + gauges,
            key=lambda i: (i["name"], sorted(i.get("labels", {}).items())),
        ):
            label = item["name"] + _format_labels(item.get("labels", {}))
            value = item["value"]
            rendered = str(int(value)) if float(value).is_integer() else f"{value:.6g}"
            lines.append(f"  {label:<56} {rendered:>12}")
        lines.append("")

    if histograms:
        lines.append("histograms (bucket-boundary quantile estimates)")
        lines.append(f"  {'histogram':<48} {'count':>7} {'mean':>10} "
                     f"{'p50':>10} {'p99':>10}")
        for item in sorted(
            histograms,
            key=lambda i: (i["name"], sorted(i.get("labels", {}).items())),
        ):
            label = item["name"] + _format_labels(item.get("labels", {}))
            count = item.get("count", 0)
            mean = (item.get("sum", 0.0) / count) if count else 0.0
            bounds = item.get("bounds", [])
            buckets = item.get("buckets", [])
            p50 = _snapshot_quantile(bounds, buckets, 0.50)
            p99 = _snapshot_quantile(bounds, buckets, 0.99)

            def _q(value: Optional[float]) -> str:
                if value is None:
                    return "-"
                if value == math.inf:
                    return ">max"
                return _fmt_seconds(value)

            lines.append(
                f"  {label:<48} {count:>7} {_fmt_seconds(mean):>10} "
                f"{_q(p50):>10} {_q(p99):>10}"
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
