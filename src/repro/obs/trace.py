"""Span tracing: monotonic-clock context managers, Chrome-trace export.

``span("kernel.run", kernel="fast")`` brackets one unit of work; when
tracing is enabled the completed span lands in a process-wide bounded
buffer as one Chrome trace-event (``"ph": "X"``) dict, exportable via
:func:`chrome_trace` / :func:`write_trace` and loadable in
``about:tracing`` or Perfetto.  ``instant("progress.batch", **attrs)``
records zero-duration marker events the same way.

The enablement contract mirrors the metrics registry: **disabled
tracing is a no-op attribute check** — ``span()`` returns a shared
do-nothing context manager without allocating, so permanently
instrumented hot paths cost nothing until someone asks for a trace
(``--trace-out``, ``repro serve``'s ``/v1/trace`` buffer, or a test's
:func:`capture` block).

Clocks: durations come from ``time.monotonic()`` (never wall time, so a
clock step mid-span cannot produce negative durations); the absolute
``ts`` placing a span on the timeline is derived from a per-process
``(wall, monotonic)`` anchor pair captured at import, which makes spans
recorded in different processes (warm-pool workers) land on one
mutually consistent timeline to within clock-read jitter.  Worker spans
travel back to the parent as plain dicts (see
:func:`repro.spec.runner._run_payload_batch`) and merge via
:func:`absorb`.

Thread-safety: one module lock guards the buffer; span objects
themselves are single-thread (create, enter, exit on one thread — the
only way a context manager is used).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import _STATE

__all__ = [
    "span",
    "instant",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "capture",
    "events",
    "drain",
    "absorb",
    "chrome_trace",
    "write_trace",
]

#: Default cap on buffered events; the oldest are evicted beyond it (a
#: long-lived ``repro serve`` keeps the most recent window, which is
#: what ``GET /v1/trace`` should return).  Evictions are counted in
#: ``dropped_events()``.
DEFAULT_EVENT_LIMIT = 200_000

#: Per-process anchor: wall-clock seconds at an instant whose monotonic
#: reading is also recorded.  ``ts_us(mono) = (wall0 + (mono - mono0)) * 1e6``
#: gives cross-process-comparable microsecond timestamps with
#: monotonic-derived spacing.
_WALL_ANCHOR = time.time()
_MONO_ANCHOR = time.monotonic()

_lock = threading.Lock()
_enabled = False
_events: List[Dict[str, Any]] = []
_limit = DEFAULT_EVENT_LIMIT
_dropped = 0


def _ts_us(mono: float) -> float:
    return (_WALL_ANCHOR + (mono - _MONO_ANCHOR)) * 1e6


def tracing_enabled() -> bool:
    """Whether spans are currently being captured."""
    return _enabled


def enable_tracing(limit: int = DEFAULT_EVENT_LIMIT) -> None:
    """Start capturing spans into the process buffer (idempotent).

    A no-op when instrumentation is globally disabled (``REPRO_OBS=0``).
    """
    global _enabled, _limit
    if not _STATE.enabled:
        return
    with _lock:
        _limit = int(limit)
        _enabled = True


def disable_tracing() -> None:
    """Stop capturing; already-buffered events stay until :func:`drain`."""
    global _enabled
    with _lock:
        _enabled = False


def _record(event: Dict[str, Any]) -> None:
    global _dropped
    with _lock:
        if not _enabled:
            return
        if len(_events) >= _limit:
            # Keep the most recent window: evict from the front in one
            # slice (amortised — eviction halves the buffer).
            keep = max(1, _limit // 2)
            del _events[: len(_events) - keep]
            _dropped += 1
        _events.append(event)


class _Span:
    """One live span; records itself on ``__exit__``."""

    __slots__ = ("name", "args", "_t0")

    def __init__(self, name: str, args: Dict[str, Any]):
        self.name = name
        self.args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.monotonic()
        return self

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (chunk counts, rows)."""
        self.args.update(attrs)

    def __exit__(self, exc_type, _exc, _tb) -> None:
        t1 = time.monotonic()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        _record({
            "name": self.name,
            "cat": self.name.split(".", 1)[0],
            "ph": "X",
            "ts": _ts_us(self._t0),
            "dur": (t1 - self._t0) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident() % 1_000_000,
            "args": self.args,
        })


class _NoopSpan:
    """The shared disabled-path span: enter/exit/annotate do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attrs: Any):
    """A context manager timing one ``<layer>.<operation>`` unit of work.

    Disabled path: one module-attribute check, then the shared no-op
    singleton — no allocation, no clock read.
    """
    if not _enabled:
        return _NOOP
    return _Span(name, attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record a zero-duration marker event (``"ph": "i"``)."""
    if not _enabled:
        return
    _record({
        "name": name,
        "cat": name.split(".", 1)[0],
        "ph": "i",
        "s": "t",
        "ts": _ts_us(time.monotonic()),
        "pid": os.getpid(),
        "tid": threading.get_ident() % 1_000_000,
        "args": attrs,
    })


def events() -> List[Dict[str, Any]]:
    """A copy of the buffered events (oldest first)."""
    with _lock:
        return list(_events)


def drain() -> List[Dict[str, Any]]:
    """Return and clear the buffered events."""
    global _dropped
    with _lock:
        drained, _events[:] = list(_events), []
        _dropped = 0
        return drained


def dropped_events() -> int:
    """How many buffer evictions have happened since the last drain."""
    return _dropped


def absorb(foreign: Iterable[Dict[str, Any]]) -> None:
    """Merge events recorded in another process (already-final dicts)."""
    if not _enabled:
        return
    for event in foreign:
        _record(dict(event))


class capture:
    """``with capture():`` — enable tracing for a block, restoring after.

    The block's events stay in the shared buffer (read them with
    :func:`events`/:func:`drain`); on exit the previous enabled state is
    restored.  Used by tests and the CLI ``--trace-out`` path.
    """

    def __init__(self, limit: int = DEFAULT_EVENT_LIMIT):
        self._limit = limit
        self._was_enabled = False

    def __enter__(self) -> "capture":
        self._was_enabled = _enabled
        enable_tracing(limit=self._limit)
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._was_enabled:
            disable_tracing()


def chrome_trace(
    trace_events: Optional[Iterable[Dict[str, Any]]] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The Chrome trace-event JSON object (``about:tracing``/Perfetto).

    Defaults to the live buffer; pass ``trace_events`` to export a
    drained list.  A metrics snapshot rides along under
    ``otherData.metrics`` so one trace file carries both signals (the
    ``repro obs`` table renders both).
    """
    body: Dict[str, Any] = {
        "traceEvents": list(trace_events if trace_events is not None
                            else events()),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }
    if metrics is not None:
        body["otherData"]["metrics"] = metrics
    if _dropped:
        body["otherData"]["evictions"] = _dropped
    return body


def write_trace(
    path: str,
    trace_events: Optional[Iterable[Dict[str, Any]]] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> int:
    """Write :func:`chrome_trace` to ``path``; returns the event count."""
    import json

    body = chrome_trace(trace_events, metrics=metrics)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(body, stream)
        stream.write("\n")
    return len(body["traceEvents"])
