"""Command-line experiment runner.

    python -m repro.cli list
    python -m repro.cli taxonomy
    python -m repro.cli fig7 [--fft-size 512] [--supply-hz 4.7]
    python -m repro.cli crossover [--frequencies 2 10 40 80]
    python -m repro.cli sources

Each subcommand runs one of the reproduction scenarios and prints the same
series the paper's figures show.  The benchmark suite (``pytest
benchmarks/ --benchmark-only``) runs the full set with assertions; the CLI
is the interactive, parameterisable view.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis.crossover import find_crossover
from repro.analysis.report import format_table, print_section
from repro.core.system import EnergyDrivenSystem
from repro.core.taxonomy import classify, exemplars
from repro.harvest.solar import PhotovoltaicHarvester
from repro.harvest.synthetic import SignalGenerator
from repro.harvest.traces import record_voltage
from repro.harvest.wind import MicroWindTurbine
from repro.mcu.assembler import assemble
from repro.mcu.engine import MachineEngine, SyntheticEngine
from repro.mcu.machine import Machine, MachineConfig
from repro.mcu.power_model import MSP430_FRAM_MODEL, MSP430_SRAM_MODEL
from repro.mcu.programs import fft_golden, fft_program
from repro.sim import waveform
from repro.sim.probes import Trace
from repro.storage.capacitor import Capacitor
from repro.transient.base import TransientPlatform, TransientPlatformConfig
from repro.transient.hibernus import Hibernus
from repro.transient.quickrecall import QuickRecall
from repro.units import days


def cmd_list(_: argparse.Namespace) -> int:
    """List the available experiments."""
    rows = [
        ["sources", "Fig. 1: wind gust + indoor PV source statistics"],
        ["taxonomy", "Fig. 2: classify the paper's example systems"],
        ["fig7", "Fig. 7: Hibernus FFT over a half-wave rectified supply"],
        ["crossover", "Eq. 5: Hibernus vs QuickRecall energy sweep"],
    ]
    print(format_table(["command", "experiment"], rows))
    return 0


def cmd_sources(_: argparse.Namespace) -> int:
    """Fig. 1 source statistics."""
    turbine = MicroWindTurbine.single_gust()
    times, volts = record_voltage(turbine, duration=9.0, dt=1e-3)
    wind = Trace("wind", times, volts)
    print_section(
        "Fig. 1a: micro wind turbine (single gust)",
        f"peaks {wind.minimum():.2f} .. {wind.maximum():.2f} V, "
        f"dominant {waveform.dominant_frequency(wind.between(3.0, 5.5)):.1f} Hz "
        "mid-gust",
    )
    cell = PhotovoltaicHarvester.indoor_fig1b()
    import numpy as np

    pv_times = np.arange(0.0, days(2), 300.0)
    currents = np.array([cell.current(float(t)) for t in pv_times])
    pv = Trace("pv", pv_times, currents)
    print_section(
        "Fig. 1b: indoor PV over two days",
        f"current band {pv.minimum() * 1e6:.0f} .. {pv.maximum() * 1e6:.0f} uA, "
        f"24 h periodicity {waveform.periodicity_strength(pv, days(1)):.2f}",
    )
    return 0


def cmd_taxonomy(_: argparse.Namespace) -> int:
    """Fig. 2 classification table."""
    rows = []
    for descriptor in exemplars():
        placement = classify(descriptor)
        rows.append(
            [
                placement.name,
                placement.axis,
                placement.storage_class.value,
                placement.adaptation.value,
                placement.energy_driven,
            ]
        )
    print_section(
        "Fig. 2: taxonomy placements",
        format_table(
            ["system", "axis", "storage", "adaptation", "energy-driven"], rows
        ),
    )
    return 0


def cmd_fig7(args: argparse.Namespace) -> int:
    """Fig. 7 scenario with adjustable FFT size and supply frequency."""
    machine = Machine(
        assemble(fft_program(args.fft_size)),
        MachineConfig(data_space_words=max(2048, 4 * args.fft_size)),
    )
    strategy = Hibernus()
    platform = TransientPlatform(
        MachineEngine(machine),
        strategy,
        config=TransientPlatformConfig(rail_capacitance=22e-6),
    )
    system = EnergyDrivenSystem(dt=50e-6)
    system.set_storage(Capacitor(22e-6, v_max=3.3))
    system.add_voltage_source(
        SignalGenerator(
            4.5, args.supply_hz, rectified=True, source_resistance=1500.0
        )
    )
    system.set_platform(platform)
    system.run(args.duration)

    metrics = platform.metrics
    completion = metrics.first_completion_time
    golden = fft_golden(args.fft_size)[2]
    rows = [
        ["V_H (Eq. 4)", f"{strategy.v_hibernate:.2f} V"],
        ["snapshots / restores",
         f"{metrics.snapshots_completed} / {metrics.restores_completed}"],
        ["completed", "no" if completion is None else f"t={completion:.3f} s"],
        ["supply cycle", "-" if completion is None
         else int(completion * args.supply_hz) + 1],
        ["checksum ok", machine.output_port.last == golden],
    ]
    print_section(
        f"Fig. 7: Hibernus FFT-{args.fft_size} at {args.supply_hz} Hz",
        format_table(["quantity", "value"], rows),
    )
    return 0 if completion is not None else 1


def _run_crossover_point(strategy, power_model, frequency: float) -> float:
    engine = SyntheticEngine(total_cycles=4_000_000)
    platform = TransientPlatform(
        engine,
        strategy,
        power_model=power_model,
        config=TransientPlatformConfig(rail_capacitance=22e-6),
    )
    period = 1.0 / frequency
    v_high, v_low, ramp_down, ramp_up = 3.2, 1.6, 230.0, 4000.0
    t_down = (v_high - v_low) / ramp_down
    t_up = (v_high - v_low) / ramp_up

    def v_of_t(t: float) -> float:
        phase = t % period
        if phase < t_down:
            return v_high - ramp_down * phase
        if phase < t_down + 2e-3:
            return v_low
        if phase < t_down + 2e-3 + t_up:
            return v_low + ramp_up * (phase - t_down - 2e-3)
        return v_high

    t = 0.0
    while platform.metrics.first_completion_time is None and t < 30.0:
        platform.advance(t, 1e-4, v_of_t(t))
        t += 1e-4
    return platform.metrics.total_energy()


def cmd_crossover(args: argparse.Namespace) -> int:
    """Eq. 5 sweep over the given interruption frequencies."""
    rows = []
    for frequency in args.frequencies:
        e_hib = _run_crossover_point(
            Hibernus(v_hibernate=2.8, v_restore=3.0), MSP430_SRAM_MODEL, frequency
        )
        e_qr = _run_crossover_point(
            QuickRecall(v_hibernate=2.1, v_restore=3.0), MSP430_FRAM_MODEL, frequency
        )
        rows.append([frequency, e_hib * 1e3, e_qr * 1e3,
                     "hibernus" if e_hib < e_qr else "quickrecall"])
    crossover = find_crossover(
        [r[0] for r in rows], [r[1] for r in rows], [r[2] for r in rows]
    )
    print_section(
        "Eq. (5): energy to complete 4 M cycles",
        format_table(
            ["f (Hz)", "E hibernus (mJ)", "E quickrecall (mJ)", "winner"], rows
        )
        + (f"\nmeasured crossover: {crossover:.1f} Hz" if crossover else
           "\nno crossover inside the sweep"),
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Energy-driven computing experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=cmd_list)
    sub.add_parser("sources", help="Fig. 1 sources").set_defaults(fn=cmd_sources)
    sub.add_parser("taxonomy", help="Fig. 2 taxonomy").set_defaults(fn=cmd_taxonomy)

    fig7 = sub.add_parser("fig7", help="Fig. 7 Hibernus FFT")
    fig7.add_argument("--fft-size", type=int, default=512)
    fig7.add_argument("--supply-hz", type=float, default=4.7)
    fig7.add_argument("--duration", type=float, default=1.2)
    fig7.set_defaults(fn=cmd_fig7)

    crossover = sub.add_parser("crossover", help="Eq. 5 sweep")
    crossover.add_argument(
        "--frequencies", type=float, nargs="+", default=[2.0, 10.0, 40.0, 80.0]
    )
    crossover.set_defaults(fn=cmd_crossover)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
