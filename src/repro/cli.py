"""Command-line experiment runner.

    python -m repro.cli list
    python -m repro.cli taxonomy
    python -m repro.cli fig7 [--fft-size 512] [--supply-hz 4.7]
    python -m repro.cli crossover [--frequencies 2 10 40 80]
    python -m repro.cli sources
    python -m repro.cli spec fig7 > fig7.json
    python -m repro.cli run fig7.json
    python -m repro.cli sweep --set capacitance=22e-6,47e-6 --set frequency=4.7,9.4
    python -m repro.cli sweep --set frequency=2,10,40 --output sweep.jsonl --resume
    python -m repro.cli explore --axis capacitance=log:1e-5:1e-4 \
        --objective capacitance --require completed --budget 24 \
        --output explore.jsonl --resume
    python -m repro.cli results sweep.jsonl --best energy_total
    python -m repro.cli serve --port 8000 --store service.jsonl
    python -m repro.cli sweep --set frequency=2,10 --trace-out trace.json
    python -m repro.cli obs trace.json
    python -m repro.cli components

The figure subcommands run the reproduction scenarios and print the same
series the paper's figures show.  The generic ``run``/``sweep`` commands
drive any declarative :class:`~repro.spec.ScenarioSpec` — dump a starting
point with ``spec``, edit the JSON, and feed it back.  ``sweep`` expands a
parameter grid and executes the points in parallel across processes;
``--output`` persists every point to a JSONL
:class:`~repro.results.ResultStore` and ``--resume`` recomputes only the
points the store does not already hold.  ``results`` queries a store
after the fact: tabulate, merge shards, pick bests, extract Pareto
frontiers.  ``serve`` runs the whole stack as a long-lived HTTP service
(see :mod:`repro.serve`): clients POST specs/grids/search-spaces, jobs
queue onto one warm worker pool, and a shared store dedupes overlapping
work across clients.  ``run``/``sweep``/``explore`` take ``--trace-out``
to record kernel/pool/store spans (see :mod:`repro.obs`) as Chrome
trace-event JSON, and ``obs`` summarizes such a file as text tables.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Iterator, List, Optional

from repro import obs

from repro.analysis.crossover import crossover_from_store, series_from_store
from repro.analysis.pareto import pareto_from_store
from repro.analysis.report import format_table, print_section
from repro.core.metrics import RunReport
from repro.explore import (
    Axis,
    ExplorationDriver,
    Objective,
    SearchSpace,
    available_optimizers,
)
from repro.results import BACKEND_CHOICES, ResultStore, RunResult
from repro.core.taxonomy import classify, exemplars
from repro.errors import ReproError
from repro.harvest.solar import PhotovoltaicHarvester
from repro.harvest.traces import record_voltage
from repro.harvest.wind import MicroWindTurbine
from repro.mcu.programs import fft_golden
from repro.sim import waveform
from repro.sim.kernel import KERNELS
from repro.sim.probes import Trace
from repro.spec import (
    ScenarioSpec,
    SweepRunner,
    available,
    kinds,
    preset,
    preset_names,
)
from repro.spec.presets import crossover_spec, fig7_spec
from repro.units import days


def cmd_list(_: argparse.Namespace) -> int:
    """List the available experiments."""
    rows = [
        ["sources", "Fig. 1: wind gust + indoor PV source statistics"],
        ["taxonomy", "Fig. 2: classify the paper's example systems"],
        ["fig7", "Fig. 7: Hibernus FFT over a half-wave rectified supply"],
        ["crossover", "Eq. 5: Hibernus vs QuickRecall energy sweep"],
        ["spec", "dump a preset scenario spec as JSON"],
        ["run", "run a scenario spec from a JSON file"],
        ["sweep", "expand a parameter grid and run it in parallel"],
        ["explore", "budgeted design-space search with an optimizer"],
        ["results", "query a persisted sweep result store"],
        ["serve", "run the HTTP simulation service (job queue + store)"],
        ["chaos", "fault-injection smoke: faulted sweep == clean sweep"],
        ["obs", "summarize a --trace-out trace file (spans + metrics)"],
        ["components", "list the registered spec components"],
    ]
    print(format_table(["command", "experiment"], rows))
    return 0


def cmd_sources(_: argparse.Namespace) -> int:
    """Fig. 1 source statistics."""
    turbine = MicroWindTurbine.single_gust()
    times, volts = record_voltage(turbine, duration=9.0, dt=1e-3)
    wind = Trace("wind", times, volts)
    print_section(
        "Fig. 1a: micro wind turbine (single gust)",
        f"peaks {wind.minimum():.2f} .. {wind.maximum():.2f} V, "
        f"dominant {waveform.dominant_frequency(wind.between(3.0, 5.5)):.1f} Hz "
        "mid-gust",
    )
    cell = PhotovoltaicHarvester.indoor_fig1b()
    import numpy as np

    pv_times = np.arange(0.0, days(2), 300.0)
    currents = np.array([cell.current(float(t)) for t in pv_times])
    pv = Trace("pv", pv_times, currents)
    print_section(
        "Fig. 1b: indoor PV over two days",
        f"current band {pv.minimum() * 1e6:.0f} .. {pv.maximum() * 1e6:.0f} uA, "
        f"24 h periodicity {waveform.periodicity_strength(pv, days(1)):.2f}",
    )
    return 0


def cmd_taxonomy(_: argparse.Namespace) -> int:
    """Fig. 2 classification table."""
    rows = []
    for descriptor in exemplars():
        placement = classify(descriptor)
        rows.append(
            [
                placement.name,
                placement.axis,
                placement.storage_class.value,
                placement.adaptation.value,
                placement.energy_driven,
            ]
        )
    print_section(
        "Fig. 2: taxonomy placements",
        format_table(
            ["system", "axis", "storage", "adaptation", "energy-driven"], rows
        ),
    )
    return 0


def cmd_fig7(args: argparse.Namespace) -> int:
    """Fig. 7 scenario with adjustable FFT size and supply frequency.

    Declarative since the spec layer landed: the scenario is a
    :func:`~repro.spec.presets.fig7_spec` built and run through
    ``ScenarioSpec.build()`` — the hand-wired ``EnergyDrivenSystem``
    construction this used to do inline.
    """
    spec = fig7_spec(
        fft_size=args.fft_size,
        supply_hz=args.supply_hz,
        duration=args.duration,
    )
    if args.kernel is not None:
        spec = spec.with_override("kernel", args.kernel)
    result = spec.run()

    platform = result.platform
    strategy = platform.strategy
    machine = platform.engine.machine
    metrics = platform.metrics
    completion = metrics.first_completion_time
    golden = fft_golden(args.fft_size)[2]
    rows = [
        ["V_H (Eq. 4)", f"{strategy.v_hibernate:.2f} V"],
        ["snapshots / restores",
         f"{metrics.snapshots_completed} / {metrics.restores_completed}"],
        ["completed", "no" if completion is None else f"t={completion:.3f} s"],
        ["supply cycle", "-" if completion is None
         else int(completion * args.supply_hz) + 1],
        ["checksum ok", machine.output_port.last == golden],
    ]
    print_section(
        f"Fig. 7: Hibernus FFT-{args.fft_size} at {args.supply_hz} Hz",
        format_table(["quantity", "value"], rows),
    )
    return 0 if completion is not None else 1


def cmd_crossover(args: argparse.Namespace) -> int:
    """Eq. 5 sweep over the given interruption frequencies.

    Two frequency sweeps (one per strategy) run through the
    :class:`SweepRunner` into one :class:`ResultStore` — persistent
    (and resumable) with ``--output`` — and the table plus the
    interpolated crossover are store queries.
    """
    grid = {"frequency": [float(f) for f in args.frequencies]}
    store = ResultStore(args.output, backend=args.backend)
    wanted = set()
    for strategy in ("hibernus", "quickrecall"):
        base = crossover_spec(strategy)
        if args.kernel is not None:
            base = base.with_override("kernel", args.kernel)
        runner = SweepRunner(base, grid)
        runner.run(
            parallel=not args.serial,
            store=store,
            resume=args.output is not None,
        )
        wanted.update(runner.hashes)
    # Query through a view holding only THIS invocation's points: a
    # reused --output store may also hold other kernels/frequencies
    # under the same scenario names.
    view = ResultStore()
    for point_hash in wanted:
        if store.get(point_hash) is not None:
            view.add(store.get(point_hash))
    series = {
        strategy: dict(zip(*series_from_store(
            view, "frequency", "energy_total",
            name=f"crossover-{strategy}",
        )[:2]))
        for strategy in ("hibernus", "quickrecall")
    }
    rows = []
    for frequency in grid["frequency"]:
        e_hib = series["hibernus"].get(frequency)
        e_qr = series["quickrecall"].get(frequency)
        if e_hib is None or e_qr is None:
            errors = [
                r.error
                for r in view.select(frequency=frequency)
                if r.error is not None
            ]
            rows.append([frequency, "-", "-",
                         f"error: {errors[0]}" if errors else "incomplete"])
            continue
        rows.append([frequency, e_hib * 1e3, e_qr * 1e3,
                     "hibernus" if e_hib < e_qr else "quickrecall"])
    crossover = crossover_from_store(
        view, "frequency", "energy_total",
        "name", "crossover-hibernus", "crossover-quickrecall",
    )
    print_section(
        "Eq. (5): energy to complete 4 M cycles",
        format_table(
            ["f (Hz)", "E hibernus (mJ)", "E quickrecall (mJ)", "winner"], rows
        )
        + (f"\nmeasured crossover: {crossover:.1f} Hz" if crossover else
           "\nno crossover inside the sweep"),
    )
    return 0


@contextlib.contextmanager
def _maybe_tracing(trace_out: Optional[str]) -> Iterator[None]:
    """Capture spans for the block and export them to ``trace_out``.

    With no ``--trace-out`` this is free — tracing stays off and every
    ``obs.span`` in the stack returns the shared no-op.  With a path,
    spans buffer in memory for the duration of the command and land as
    one Chrome trace-event JSON file (open it in Perfetto or
    ``chrome://tracing``, or summarize it with ``repro obs``).
    """
    if trace_out is None:
        yield
        return
    with obs.capture():
        yield
    count = obs.export_trace(trace_out)
    print(f"\nwrote {count} trace event(s) to {trace_out} "
          f"(view: Perfetto / chrome://tracing; summarize: repro obs)")


def _print_run_summary(spec: ScenarioSpec, result) -> None:
    vcc = result.vcc()
    print_section(
        f"scenario: {spec.name}",
        f"t_end {result.t_end:.4f} s, "
        f"V_cc {vcc.minimum():.2f} .. {vcc.maximum():.2f} V",
    )
    if result.platform is not None:
        report = RunReport.from_run(result.platform, result.t_end)
        for line in report.lines():
            print(" ", line)


def _component_label(filename: str) -> str:
    """Map a profiled code path onto a framework component name.

    Frames inside the ``repro`` package report as ``repro.<subpackage>``
    (``repro.power``, ``repro.transient``, ...); everything else —
    numpy, the standard library, the interpreter loop's built-ins —
    folds into ``(other)`` so the table stays about *this* codebase.
    """
    normalized = filename.replace(os.sep, "/")
    marker = "/repro/"
    if marker in normalized:
        inside = normalized.split(marker, 1)[1]
        if "/" in inside:
            return "repro." + inside.split("/", 1)[0]
        return "repro." + inside.removesuffix(".py")
    return "(other)"


def _profiled_run(spec: ScenarioSpec, top: int = 12):
    """Run ``spec`` under cProfile; returns (result, report_text).

    The report has two sections: cumulative time per framework
    component (where did the run's wall time go, layer by layer) and
    the top-N individual functions by cumulative time — enough to find
    a hot path without re-running under an external profiler.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = spec.run()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    total = stats.total_tt or 1e-12

    by_component: dict = {}
    for (filename, _lineno, _name), row in stats.stats.items():
        _cc, ncalls, tottime, _cumtime, _callers = row
        label = _component_label(filename)
        calls, own = by_component.get(label, (0, 0.0))
        by_component[label] = (calls + ncalls, own + tottime)
    component_rows = [
        [label, str(calls), f"{own:.3f}", f"{100.0 * own / total:.1f}%"]
        for label, (calls, own) in sorted(
            by_component.items(), key=lambda kv: kv[1][1], reverse=True
        )
        if own >= 0.0005 * total
    ]

    function_rows = []
    entries = sorted(
        stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
    )
    for (filename, lineno, name), row in entries:
        if len(function_rows) >= top:
            break
        _cc, ncalls, tottime, cumtime, _callers = row
        location = f"{_component_label(filename)}:{name}"
        if filename.startswith("~"):  # built-ins
            location = name
        function_rows.append(
            [location, str(ncalls), f"{tottime:.3f}", f"{cumtime:.3f}"]
        )

    report = "\n".join([
        f"profile: {total:.3f} s total in-run",
        "",
        "cumulative time by component:",
        format_table(["component", "calls", "own s", "share"],
                     component_rows),
        "",
        f"top {top} functions by cumulative time:",
        format_table(["function", "calls", "own s", "cum s"],
                     function_rows),
    ])
    return result, report


def cmd_spec(args: argparse.Namespace) -> int:
    """Dump a preset scenario spec as JSON (edit it, then ``run`` it)."""
    if args.name is None:
        print(format_table(["preset"], [[name] for name in preset_names()]))
        return 0
    print(preset(args.name).to_json())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run a scenario spec loaded from a JSON file."""
    spec = ScenarioSpec.load(args.spec)
    if args.kernel is not None:
        spec = spec.with_override("kernel", args.kernel)
    if args.duration is not None:
        spec = spec.with_override("duration", args.duration)
    with _maybe_tracing(args.trace_out):
        if getattr(args, "profile", False):
            result, profile_report = _profiled_run(spec)
            _print_run_summary(spec, result)
            print()
            print(profile_report)
        else:
            result = spec.run()
            _print_run_summary(spec, result)
        if args.output is not None:
            store = ResultStore(args.output, backend=args.backend)
            store.add(
                RunResult.from_system_run(
                    result, spec, capture_traces=("vcc",)
                ),
                overwrite=True,
            )
            print(f"\nstored 1 result ({len(store)} total) in {args.output}")
    if result.platform is None:
        return 0
    return 0 if result.platform.metrics.first_completion_time is not None else 1


def _parse_grid_value(text: str):
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _parse_grid(settings: Optional[List[str]]):
    grid = {}
    for setting in settings or []:
        key, _, values = setting.partition("=")
        if not values:
            raise ReproError(
                f"--set wants key=v1,v2,... got {setting!r}"
            )
        grid[key] = [_parse_grid_value(v) for v in values.split(",")]
    return grid


def _load_base(args: argparse.Namespace) -> ScenarioSpec:
    """The base spec of a sweep/exploration: file or preset, plus the
    shared --duration/--kernel overrides."""
    if args.spec is not None:
        base = ScenarioSpec.load(args.spec)
    else:
        base = preset(args.preset)
    if args.duration is not None:
        base = base.with_override("duration", args.duration)
    if args.kernel is not None:
        base = base.with_override("kernel", args.kernel)
    return base


def _supervision_policy(args: argparse.Namespace):
    """The ``--deadline``/``--max-retries`` flags as a
    :class:`~repro.spec.runner.SupervisionPolicy` (None when both are
    unset — the exact historical unsupervised path)."""
    deadline = getattr(args, "deadline", None)
    retries = getattr(args, "max_retries", 0) or 0
    if deadline is None and retries <= 0:
        return None
    from repro.spec.runner import SupervisionPolicy

    return SupervisionPolicy(deadline_s=deadline, max_retries=retries)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Expand a parameter grid over a base spec and run it in parallel."""
    base = _load_base(args)
    grid = _parse_grid(args.set)
    if not grid:
        # A representative default: storage size x supply frequency, with
        # Eq. (4) thresholds recalibrating per point.
        grid = {"capacitance": [22e-6, 47e-6], "frequency": [4.7, 9.4]}
    if args.resume and args.output is None:
        raise ReproError("--resume needs --output (the store to resume from)")
    store = (ResultStore(args.output, backend=args.backend)
             if args.output is not None else None)
    runner = SweepRunner(base, grid, max_workers=args.workers)
    progress = None
    if args.progress:
        progress = lambda event: print(f"  {event.describe()}")
    with _maybe_tracing(args.trace_out):
        result = runner.run(
            parallel=not args.serial, store=store, resume=args.resume,
            progress=progress, batch_size=args.batch_size,
            policy=_supervision_policy(args),
        )
    mode = "serial" if args.serial else "parallel"
    print_section(
        f"sweep: {base.name}, {len(runner)} points ({mode})",
        result.format(),
    )
    if store is not None:
        print(
            f"\n{result.computed} computed, {result.cached} reused; "
            f"{len(store)} result(s) in {args.output}"
        )
    return 0


_AXIS_KIND_PREFIXES = {
    "lin": "continuous",
    "log": "log",
    "int": "integer",
    "cat": "categorical",
}


def _parse_axis(text: str) -> Axis:
    """One ``--axis`` setting: ``KEY=[lin:|log:|int:|cat:]ARGS``.

    ``capacitance=log:1e-5:1e-4`` (log-spaced bounds),
    ``frequency=4.7:9.4`` (linear bounds — the default kind),
    ``store_slots=int:1:4``, ``strategy=cat:hibernus,quickrecall``.
    """
    name, sep, domain = text.partition("=")
    if not sep or not name or not domain:
        raise ReproError(
            f"--axis wants KEY=[lin:|log:|int:|cat:]ARGS, got {text!r}"
        )
    parts = domain.split(":")
    if parts[0] in _AXIS_KIND_PREFIXES:
        kind, parts = _AXIS_KIND_PREFIXES[parts[0]], parts[1:]
    else:
        kind = "continuous"
    if kind == "categorical":
        choices = [_parse_grid_value(v) for v in ":".join(parts).split(",")]
        return Axis.categorical(name, choices)
    if len(parts) != 2:
        raise ReproError(
            f"--axis {name!r}: numeric kinds want LOW:HIGH, got {domain!r}"
        )
    low, high = (_parse_grid_value(p) for p in parts)
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in (low, high)):
        raise ReproError(
            f"--axis {name!r}: bounds must be numbers, got {domain!r}"
        )
    if kind == "integer":
        return Axis.integer(name, low, high)
    return Axis(name, kind, low=float(low), high=float(high))


def _parse_optimizer_params(settings: Optional[List[str]]):
    params = {}
    for setting in settings or []:
        key, sep, value = setting.partition("=")
        if not sep or not key:
            raise ReproError(f"--opt wants key=value, got {setting!r}")
        params[key] = _parse_grid_value(value)
    return params


def cmd_explore(args: argparse.Namespace) -> int:
    """Budgeted design-space search: optimizer + store-backed caching."""
    base = _load_base(args)
    if args.space is not None:
        if args.axis:
            raise ReproError("--space and --axis are mutually exclusive")
        space = SearchSpace.load(args.space)
    elif args.axis:
        space = SearchSpace.of(*[_parse_axis(a) for a in args.axis])
    else:
        raise ReproError(
            "explore needs a search space: repeat --axis KEY=KIND:ARGS "
            "or point --space at a SearchSpace JSON file"
        )
    objectives = [
        Objective.parse(text, require=args.require)
        for text in (args.objective or ["completion_time"])
    ]
    if args.resume and args.output is None:
        raise ReproError("--resume needs --output (the store to resume from)")
    store = (ResultStore(args.output, backend=args.backend)
             if args.output is not None else None)

    def progress(event):
        print(f"  {event.describe()}")

    # --deadline/--max-retries ride in on a supervised warm pool (the
    # driver threads no per-call policy; a pool default covers it).
    policy = _supervision_policy(args)
    pool = None
    if policy is not None and not args.serial:
        from repro.spec.runner import WarmPool

        pool = WarmPool(max_workers=args.workers, policy=policy)
    driver = ExplorationDriver(
        base,
        space,
        objectives,
        optimizer=args.optimizer,
        optimizer_params=_parse_optimizer_params(args.opt),
        store=store,
        resume=args.resume,
        parallel=not args.serial,
        max_workers=args.workers,
        seed=args.seed,
        progress=progress,
        batch_size=args.batch_size,
        pool=pool,
    )
    goals = ", ".join(o.describe() for o in driver.objectives)
    print(f"explore: {base.name} via {args.optimizer} "
          f"(budget {args.budget}, {goals})")
    try:
        with _maybe_tracing(args.trace_out):
            outcome = driver.run(budget=args.budget)
    finally:
        if pool is not None:
            pool.close()
    print_section(
        f"top {min(args.top, len(outcome))} of {len(outcome)} evaluation(s)",
        outcome.format(top=args.top),
    )
    print(outcome.describe())
    if len(driver.objectives) > 1 and outcome.frontier:
        lines = [
            f"{e.candidate.overrides} -> "
            + ", ".join(
                f"{o.metric}={o.value(e.result):.6g}"
                for o in driver.objectives
                if o.value(e.result) is not None
            )
            for e in outcome.frontier
        ]
        print_section(
            f"pareto frontier ({len(outcome.frontier)} point(s))",
            "\n".join(lines),
        )
    if store is not None:
        print(f"\n{outcome.computed} computed, {outcome.cached} reused; "
              f"{len(store)} result(s) in {args.output}")
    return 0 if outcome.best is not None else 1


def _load_store(path: str, backend: str = "auto") -> ResultStore:
    if not os.path.exists(path):
        raise ReproError(f"no result store at {path!r}")
    return ResultStore(path, backend=backend)


def cmd_results(args: argparse.Namespace) -> int:
    """Query a persisted result store: tabulate, merge, best, pareto."""
    if args.merge:
        store = ResultStore.merge_shards(
            args.merge, output=args.store, backend=args.backend
        )
        print(f"merged {len(args.merge)} shard(s) into {args.store} "
              f"({len(store)} unique results)")
    else:
        store = _load_store(args.store, args.backend)
    if len(store) == 0:
        print("store is empty")
        return 0
    failed = [r for r in store if not r.ok]
    print_section(
        f"results: {args.store} ({len(store)} rows, {len(failed)} failed)",
        store.table(),
    )
    if args.best is not None:
        best = store.best(args.best, minimize=not args.maximize)
        objective = "max" if args.maximize else "min"
        print(f"\nbest ({objective} {args.best}): "
              f"{best.name} {best.overrides} -> {best[args.best]:.6g}")
    if args.pareto is not None:
        cost, benefit = args.pareto
        frontier = pareto_from_store(store, cost, benefit)
        lines = [
            f"{r.name} {r.overrides}: {cost}={r[cost]:.6g} "
            f"{benefit}={r[benefit]:.6g}"
            for r in frontier
        ]
        print_section(
            f"pareto frontier ({len(frontier)} of {len(store)} points, "
            f"min {cost} / max {benefit})",
            "\n".join(lines),
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP simulation service until SIGTERM/SIGINT.

    One process serves every client: jobs queue FIFO onto a persistent
    warm-worker pool, results land in the shared ``--store`` (so
    overlapping requests compute each point exactly once), and shutdown
    is graceful — in-flight jobs are marked ``interrupted`` in the job
    file and no worker processes are leaked.
    """
    from repro.serve import create_server, serve_forever

    server = create_server(
        host=args.host,
        port=args.port,
        store_path=args.store,
        store_backend=args.backend,
        max_workers=args.workers,
        parallel=not args.serial,
        default_deadline_s=args.deadline,
        default_max_retries=args.max_retries,
    )
    host, port = server.server_address[:2]
    store_note = args.store if args.store is not None else "in-memory"
    print(f"repro serve: listening on http://{host}:{port} "
          f"(store: {store_note})", flush=True)
    print("  POST /v1/runs|/v1/sweeps|/v1/explorations, GET /v1/jobs/{id}, "
          "GET /v1/results, /healthz, /metrics", flush=True)
    serve_forever(server)
    print("repro serve: shut down cleanly")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection smoke test: a faulted sweep must equal a clean one.

    Runs the same grid twice — once fault-free, once with the
    ``--faults`` injection points armed and the supervised pool's
    retry/deadline machinery turned on — and demands the chaos run
    converge to **bit-identical** results (metrics and vcc traces per
    spec hash).  Prints the injection/retry/reap counters so the chaos
    actually exercised something, and exits nonzero on any divergence
    or quarantined payload.
    """
    from repro import faults as faults_mod
    from repro.spec.runner import SupervisionPolicy, is_quarantined

    base = _load_base(args)
    grid = _parse_grid(args.set)
    if not grid:
        grid = {"capacitance": [22e-6, 33e-6, 47e-6, 68e-6],
                "frequency": [2.0, 4.7, 9.4, 20.0]}
    probabilities = faults_mod.parse_spec(args.faults)
    policy = SupervisionPolicy(
        deadline_s=args.deadline, max_retries=args.max_retries
    )
    parallel = not args.serial
    if "worker.hang" in probabilities and not parallel:
        print("note: worker.hang is only reapable under pool execution; "
              "serial hangs sleep their full duration")

    runner = SweepRunner(base, grid, max_workers=args.workers)
    print(f"chaos: {base.name}, {len(runner)} points; "
          f"faults {args.faults} (seed {args.seed}), "
          f"deadline {policy.deadline_s}s, "
          f"max retries {policy.max_retries}")
    # The reference run must be genuinely fault-free even when the
    # process inherited ambient REPRO_FAULTS arming: an empty
    # probability map masks it for the duration.
    with faults_mod.active({}):
        clean = runner.run(parallel=parallel, capture_traces=("vcc",))
    with faults_mod.active(
        probabilities, seed=args.seed, hang_s=args.hang_s
    ):
        chaos = SweepRunner(base, grid, max_workers=args.workers).run(
            parallel=parallel, capture_traces=("vcc",), policy=policy,
        )

    mismatched = []
    quarantined = 0
    for clean_point, chaos_point in zip(clean.points, chaos.points):
        if is_quarantined(chaos_point):
            quarantined += 1
        elif (clean_point.metrics != chaos_point.metrics
                or clean_point.traces != chaos_point.traces):
            mismatched.append(clean_point.spec_hash)

    wanted = (
        "repro_faults_injected_total",
        "repro_pool_retries_total",
        "repro_pool_workers_reaped_total",
        "repro_pool_deadline_timeouts_total",
        "repro_pool_quarantined_total",
    )
    rows = [
        [
            entry["name"]
            + ("{" + ", ".join(f"{k}={v}" for k, v in
                               sorted(entry["labels"].items())) + "}"
               if entry["labels"] else ""),
            str(entry["value"]),
        ]
        for entry in obs.registry.snapshot()["counters"]
        if entry["name"] in wanted
    ]
    print_section(
        "fault / supervision counters",
        format_table(["counter", "value"], rows) if rows
        else "(none fired)",
    )
    verdict = []
    if mismatched:
        verdict.append(f"{len(mismatched)} point(s) diverged from the "
                       f"clean run: {', '.join(mismatched[:4])}...")
    if quarantined:
        verdict.append(f"{quarantined} payload(s) quarantined")
    if verdict:
        print("chaos: FAIL — " + "; ".join(verdict))
        return 1
    print(f"chaos: OK — {len(chaos)} faulted point(s) bit-identical "
          "to the clean run, zero quarantined")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Summarize a ``--trace-out`` trace file as human-readable tables.

    Prints the top spans by cumulative time plus — when the trace was
    exported with a metrics snapshot (every ``--trace-out`` export is)
    — counter/gauge values and histogram summaries with p50/p99
    estimates.  The same file loads unchanged in Perfetto or
    ``chrome://tracing`` for the timeline view.
    """
    from repro.obs.report import load_trace, render_report

    if not os.path.exists(args.trace):
        raise ReproError(f"no trace file at {args.trace!r}")
    print(render_report(load_trace(args.trace), top=args.top))
    return 0


def cmd_components(_: argparse.Namespace) -> int:
    """List every registered spec component by kind."""
    rows = [[kind, ", ".join(available(kind))] for kind in kinds()]
    print_section(
        "registered components", format_table(["kind", "names"], rows)
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Energy-driven computing experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=cmd_list)
    sub.add_parser("sources", help="Fig. 1 sources").set_defaults(fn=cmd_sources)
    sub.add_parser("taxonomy", help="Fig. 2 taxonomy").set_defaults(fn=cmd_taxonomy)

    def add_kernel_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--kernel", choices=list(KERNELS), default=None,
            help="simulation kernel (fast = chunked execution, "
                 "identical physics)",
        )

    def add_backend_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--backend", choices=list(BACKEND_CHOICES), default="auto",
            help="result-store backend; auto selects columnar for "
                 "*.colstore paths and JSONL otherwise",
        )

    def batch_size(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError("must be >= 0")
        return value

    def add_batch_size_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--batch-size", type=batch_size, default=0, metavar="M",
            help="advance up to M same-topology fast-kernel points "
                 "together through the batched SoA kernel (0 = auto, "
                 "1 = per-point execution); results are identical "
                 "either way",
        )

    def add_supervision_flags(
        command: argparse.ArgumentParser,
        deadline_help: str = "per-task wall deadline in seconds: a "
                             "worker that exceeds it is reaped and the "
                             "task retried (needs --max-retries) or "
                             "recorded as a timeout error",
        retries_help: str = "retry a payload whose worker crashed or "
                            "timed out up to N times (with backoff) "
                            "before quarantining it (default 0: "
                            "crashes stay error rows)",
    ) -> None:
        command.add_argument("--deadline", type=float, default=None,
                             metavar="SECONDS", help=deadline_help)
        command.add_argument("--max-retries", type=int, default=0,
                             metavar="N", help=retries_help)

    def add_trace_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace-out", default=None, metavar="TRACE.json",
            help="record kernel/pool/store spans for this command and "
                 "write them as Chrome trace-event JSON (open in "
                 "Perfetto or chrome://tracing, or summarize with "
                 "'repro obs TRACE.json')",
        )

    fig7 = sub.add_parser("fig7", help="Fig. 7 Hibernus FFT")
    fig7.add_argument("--fft-size", type=int, default=512)
    fig7.add_argument("--supply-hz", type=float, default=4.7)
    fig7.add_argument("--duration", type=float, default=1.2)
    add_kernel_flag(fig7)
    fig7.set_defaults(fn=cmd_fig7)

    crossover = sub.add_parser("crossover", help="Eq. 5 sweep")
    crossover.add_argument(
        "--frequencies", type=float, nargs="+", default=[2.0, 10.0, 40.0, 80.0]
    )
    crossover.add_argument("--serial", action="store_true",
                           help="run points in-process instead of a pool")
    crossover.add_argument("--output", default=None, metavar="STORE",
                           help="persist points to a result store — JSONL "
                                "file or *.colstore directory (re-runs "
                                "reuse stored points)")
    add_backend_flag(crossover)
    add_kernel_flag(crossover)
    crossover.set_defaults(fn=cmd_crossover)

    spec = sub.add_parser("spec", help="dump a preset spec as JSON")
    spec.add_argument("name", nargs="?", default=None,
                      help="preset name (omit to list presets)")
    spec.set_defaults(fn=cmd_spec)

    run = sub.add_parser("run", help="run a scenario spec JSON file")
    run.add_argument("spec", help="path to a ScenarioSpec JSON file")
    run.add_argument("--duration", type=float, default=None,
                     help="override the spec's duration")
    run.add_argument("--output", default=None, metavar="STORE",
                     help="append the run (with its vcc trace) to a "
                          "result store (JSONL file or *.colstore "
                          "directory)")
    add_backend_flag(run)
    run.add_argument("--profile", action="store_true",
                     help="profile the run with cProfile and print a "
                          "per-component cumulative-time breakdown plus "
                          "the hottest functions")
    add_kernel_flag(run)
    add_trace_flag(run)
    run.set_defaults(fn=cmd_run)

    sweep = sub.add_parser("sweep", help="run a parameter grid in parallel")
    sweep.add_argument("spec", nargs="?", default=None,
                       help="base ScenarioSpec JSON file (default: preset)")
    sweep.add_argument("--preset", default="fig7",
                       help="base preset when no spec file is given")
    sweep.add_argument("--set", action="append", metavar="KEY=V1,V2,...",
                       help="one grid dimension (repeatable); keys follow "
                            "ScenarioSpec.with_override resolution")
    sweep.add_argument("--duration", type=float, default=None)
    sweep.add_argument("--serial", action="store_true",
                       help="run points in-process instead of a pool")
    sweep.add_argument("--workers", type=int, default=None)
    sweep.add_argument("--output", default=None, metavar="STORE",
                       help="persist every point to a result store "
                            "(JSONL file or *.colstore directory)")
    add_backend_flag(sweep)
    sweep.add_argument("--resume", action="store_true",
                       help="skip points --output already holds; only the "
                            "missing points are computed")
    sweep.add_argument("--progress", action="store_true",
                       help="print computed/cached/error counts per batch")
    add_batch_size_flag(sweep)
    add_supervision_flags(sweep)
    add_kernel_flag(sweep)
    add_trace_flag(sweep)
    sweep.set_defaults(fn=cmd_sweep)

    explore = sub.add_parser(
        "explore", help="budgeted design-space search with an optimizer"
    )
    explore.add_argument("spec", nargs="?", default=None,
                         help="base ScenarioSpec JSON file (default: preset)")
    explore.add_argument("--preset", default="fig7",
                         help="base preset when no spec file is given")
    explore.add_argument("--axis", action="append", default=[],
                         metavar="KEY=KIND:ARGS",
                         help="one search axis (repeatable): KEY=LOW:HIGH "
                              "(linear), KEY=log:LOW:HIGH, KEY=int:LOW:HIGH, "
                              "KEY=cat:A,B,...; keys follow "
                              "ScenarioSpec.with_override resolution")
    explore.add_argument("--space", default=None, metavar="SPACE.json",
                         help="load the search space from a SearchSpace "
                              "JSON file instead of --axis flags")
    explore.add_argument("--objective", action="append",
                         default=None, metavar="METRIC[:min|max]",
                         help="objective column from the metric registry "
                              "or a search axis (repeat for "
                              "multi-objective; default: min "
                              "completion_time)")
    explore.add_argument("--require", default=None, metavar="COLUMN",
                         help="feasibility column that must be truthy "
                              "(e.g. completed)")
    explore.add_argument("--optimizer", default="successive-halving",
                         choices=available_optimizers(),
                         help="search strategy (default: successive-halving)")
    explore.add_argument("--opt", action="append", metavar="KEY=VALUE",
                         help="one optimizer parameter (repeatable), e.g. "
                              "--opt initial=16 --opt eta=4")
    explore.add_argument("--budget", type=int, default=24,
                         help="total evaluation budget (default 24)")
    explore.add_argument("--seed", type=int, default=0,
                         help="optimizer RNG seed (fixes the candidate "
                              "sequence, making re-runs pure cache hits)")
    explore.add_argument("--duration", type=float, default=None)
    explore.add_argument("--serial", action="store_true",
                         help="run evaluations in-process instead of a pool")
    explore.add_argument("--workers", type=int, default=None)
    explore.add_argument("--output", default=None, metavar="STORE",
                         help="persist every evaluation to a result store "
                              "(JSONL file or *.colstore directory)")
    add_backend_flag(explore)
    explore.add_argument("--resume", action="store_true",
                         help="reuse evaluations --output already holds; a "
                              "re-run with the same seed recomputes nothing")
    explore.add_argument("--top", type=int, default=10,
                         help="rows of the ranked table to print")
    add_batch_size_flag(explore)
    add_supervision_flags(explore)
    add_kernel_flag(explore)
    add_trace_flag(explore)
    explore.set_defaults(fn=cmd_explore)

    results = sub.add_parser(
        "results", help="query a persisted result store"
    )
    results.add_argument("store", help="path to a result store (JSONL "
                                       "file or *.colstore directory)")
    results.add_argument("--merge", nargs="+", default=None,
                         metavar="SHARD",
                         help="fold shard stores into STORE before querying "
                              "(dedupes by spec hash; all-columnar merges "
                              "move whole column blocks)")
    add_backend_flag(results)
    results.add_argument("--best", default=None, metavar="METRIC",
                         help="report the row optimising METRIC")
    results.add_argument("--maximize", action="store_true",
                         help="maximise --best's metric instead of minimising")
    results.add_argument("--pareto", nargs=2, default=None,
                         metavar=("COST", "BENEFIT"),
                         help="print the (min COST, max BENEFIT) frontier")
    results.set_defaults(fn=cmd_results)

    serve = sub.add_parser(
        "serve", help="run the HTTP simulation service"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1; use "
                            "0.0.0.0 inside containers)")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port (default 8000; 0 = ephemeral)")
    serve.add_argument("--store", default=None, metavar="STORE",
                       help="shared result store (the cross-client "
                            "compute cache) — JSONL file or *.colstore "
                            "directory; job status persists beside it "
                            "as STORE.jobs")
    add_backend_flag(serve)
    serve.add_argument("--workers", type=int, default=None,
                       help="warm-pool width (default: CPU count)")
    serve.add_argument("--serial", action="store_true",
                       help="run grid points on the executor thread "
                            "instead of a process pool")
    add_supervision_flags(
        serve,
        deadline_help="default wall-clock budget (seconds) for jobs "
                      "whose request sets no deadline_s; an expired "
                      "job fails instead of running",
        retries_help="default job retry budget for jobs whose request "
                     "sets no max_retries; transiently-failed jobs "
                     "re-enqueue with backoff up to N times",
    )
    serve.set_defaults(fn=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection smoke test (faulted sweep == clean sweep)",
    )
    chaos.add_argument("spec", nargs="?", default=None,
                       help="base ScenarioSpec JSON file (default: preset)")
    chaos.add_argument("--preset", default="fig7",
                       help="base preset when no spec file is given")
    chaos.add_argument("--set", action="append", metavar="KEY=V1,V2,...",
                       help="one grid dimension (repeatable); default: a "
                            "4x4 capacitance x frequency grid")
    chaos.add_argument("--duration", type=float, default=None)
    chaos.add_argument("--serial", action="store_true",
                       help="run points in-process (note: hangs are only "
                            "reapable under pool execution)")
    chaos.add_argument("--workers", type=int, default=None)
    chaos.add_argument("--faults", default="worker.crash:0.3,worker.hang:0.1",
                       metavar="POINT:PROB,...",
                       help="injection points to arm (see repro.faults; "
                            "default worker.crash:0.3,worker.hang:0.1)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-roll seed (same seed => identical "
                            "injections, run over run)")
    chaos.add_argument("--hang-s", type=float, default=30.0,
                       help="how long an injected hang sleeps (must "
                            "exceed --deadline so reaping triggers)")
    chaos.add_argument("--deadline", type=float, default=2.0,
                       metavar="SECONDS",
                       help="per-task deadline: hung workers are reaped "
                            "this many seconds in (default 2)")
    chaos.add_argument("--max-retries", type=int, default=10, metavar="N",
                       help="per-payload retry budget before quarantine "
                            "(default 10 — generous, so chaos converges)")
    add_kernel_flag(chaos)
    chaos.set_defaults(fn=cmd_chaos)

    obs_cmd = sub.add_parser(
        "obs", help="summarize a --trace-out trace file"
    )
    obs_cmd.add_argument("trace", metavar="TRACE.json",
                         help="Chrome trace JSON written by --trace-out "
                              "or GET /v1/trace")
    obs_cmd.add_argument("--top", type=int, default=20,
                         help="rows of the span table to print")
    obs_cmd.set_defaults(fn=cmd_obs)

    components = sub.add_parser("components", help="list spec components")
    components.set_defaults(fn=cmd_components)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Framework errors (bad spec files, unknown components, infeasible
    configurations) print as one-line errors, not tracebacks — their
    messages already name the problem and the valid choices.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. `repro spec fig7 | head`).
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
