"""Micro wind turbine model (Fig. 1a).

The paper shows the AC voltage output of a micro wind turbine during a single
'gust': an oscillation at several hertz whose amplitude swells and decays
with the gust, peaking around +/-5 V over roughly eight seconds.

The model composes two parts:

* a *gust profile* — the wind-speed envelope ``u(t)`` (m/s);
* the turbine transduction — rotor speed tracks wind speed with first-order
  lag, the generator produces an AC voltage whose amplitude and electrical
  frequency are both proportional to rotor speed (a permanent-magnet
  alternator: V ~ k_e * omega, f ~ pole_pairs * omega / 2*pi).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.harvest.base import VoltageHarvester


@dataclass(frozen=True)
class GustProfile:
    """A single wind gust: smooth rise to ``peak_speed`` then decay.

    The shape is the classic 'Mexican-hat-free' gust used in wind
    engineering: ``u(t) = base + (peak-base) * sin^2(pi * x)`` for x in
    [0, 1], where x is normalised time inside the gust.
    """

    start: float
    duration: float
    base_speed: float
    peak_speed: float

    def speed(self, t: float) -> float:
        """Wind speed (m/s) at time ``t``."""
        if self.duration <= 0.0:
            return self.base_speed
        x = (t - self.start) / self.duration
        if x < 0.0 or x > 1.0:
            return self.base_speed
        swell = math.sin(math.pi * x) ** 2
        return self.base_speed + (self.peak_speed - self.base_speed) * swell


class MicroWindTurbine(VoltageHarvester):
    """Permanent-magnet micro wind turbine producing a raw AC voltage.

    Args:
        gusts: wind gust events; between gusts the wind sits at each gust's
            ``base_speed`` (the first gust's base before it, the last one's
            after it).
        cut_in_speed: below this wind speed the rotor stalls (output 0 V).
        ke: back-EMF constant — volts of amplitude per (m/s) of effective
            wind speed above cut-in.
        hz_per_mps: electrical output frequency per m/s of wind speed.
            A few m/s of wind gives the "many Hz" AC output of Fig. 1a.
        rotor_lag: first-order time constant (s) of rotor speed tracking
            the wind; gives the realistic smooth swell of the envelope.
        turbulence: multiplicative wind-speed noise intensity (0 disables).
    """

    def __init__(
        self,
        gusts: Sequence[GustProfile],
        cut_in_speed: float = 1.0,
        ke: float = 1.25,
        hz_per_mps: float = 1.0,
        rotor_lag: float = 0.35,
        turbulence: float = 0.0,
        source_resistance: float = 220.0,
        seed: Optional[int] = 7,
    ):
        super().__init__(source_resistance, seed=seed)
        if not gusts:
            raise ConfigurationError("MicroWindTurbine needs at least one gust")
        if cut_in_speed < 0.0:
            raise ConfigurationError("cut-in speed must be >= 0")
        if rotor_lag <= 0.0:
            raise ConfigurationError("rotor lag must be positive")
        self.gusts = sorted(gusts, key=lambda g: g.start)
        self.cut_in_speed = cut_in_speed
        self.ke = ke
        self.hz_per_mps = hz_per_mps
        self.rotor_lag = rotor_lag
        self.turbulence = turbulence
        self._rotor_speed = 0.0
        self._phase = 0.0
        self._last_t = 0.0

    @classmethod
    def single_gust(cls, **kwargs) -> "MicroWindTurbine":
        """The Fig. 1a scenario: calm, one ~8 s gust peaking near 5 m/s."""
        gust = GustProfile(start=1.0, duration=6.5, base_speed=0.4, peak_speed=5.0)
        return cls(gusts=[gust], **kwargs)

    def wind_speed(self, t: float) -> float:
        """Instantaneous wind speed from the gust schedule (plus turbulence)."""
        speed = self.gusts[0].base_speed
        for gust in self.gusts:
            if t >= gust.start + gust.duration:
                speed = gust.base_speed
            value = gust.speed(t)
            if value > speed:
                speed = value
        if self.turbulence > 0.0:
            speed *= 1.0 + self.turbulence * float(self._rng.standard_normal())
        return max(0.0, speed)

    def _advance(self, t: float) -> None:
        """Integrate rotor dynamics and electrical phase up to time ``t``.

        The voltage at ``t`` depends on the rotor speed history (frequency
        is the derivative of phase), so the model keeps internal state and
        integrates forward.  Queries must be (weakly) monotone in time —
        true for all simulator use.  Backward queries restart from zero.
        """
        if t < self._last_t:
            self._rotor_speed = 0.0
            self._phase = 0.0
            self._last_t = 0.0
        # Integrate with a bounded internal step for accuracy.
        step = self.rotor_lag / 10.0
        while self._last_t < t:
            dt = min(step, t - self._last_t)
            wind = self.wind_speed(self._last_t)
            target = max(0.0, wind - self.cut_in_speed)
            alpha = dt / self.rotor_lag
            self._rotor_speed += alpha * (target - self._rotor_speed)
            freq = self.hz_per_mps * (self._rotor_speed + self.cut_in_speed if self._rotor_speed > 0 else 0.0)
            self._phase += 2.0 * math.pi * freq * dt
            self._last_t += dt

    def open_circuit_voltage(self, t: float) -> float:
        self._advance(t)
        amplitude = self.ke * self._rotor_speed
        return amplitude * math.sin(self._phase)

    def reset(self) -> None:
        super().reset()
        self._rotor_speed = 0.0
        self._phase = 0.0
        self._last_t = 0.0
