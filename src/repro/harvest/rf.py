"""RF energy harvesting (the WISPCam substrate, ref [4]).

A rectenna harvesting from an RFID reader: received power follows free-space
path loss from the reader's EIRP, the reader interrogates in sessions (on/off
bursts), and the rectenna has a sensitivity floor and saturation.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester
from repro.spec.registry import register


@register("rf", kind="harvester")
class RFHarvester(PowerHarvester):
    """Rectenna harvesting from a duty-cycled RFID reader.

    Args:
        eirp: reader effective isotropic radiated power (W), e.g. 4.0 for
            a US-regulation UHF reader.
        distance: tag-to-reader distance (m).
        frequency: carrier frequency (Hz), default 915 MHz UHF.
        rectifier_efficiency: RF-to-DC conversion efficiency in (0, 1].
        sensitivity: minimum received RF power (W) below which the
            rectifier produces nothing.
        session_period / session_duty: the reader transmits for
            ``session_duty`` of every ``session_period`` seconds.
        distance_jitter: relative RMS jitter on distance (models a person
            moving near the tag); resampled every session.
    """

    def __init__(
        self,
        eirp: float = 4.0,
        distance: float = 3.0,
        frequency: float = 915e6,
        rectifier_efficiency: float = 0.3,
        sensitivity: float = 1e-6,
        session_period: float = 2.0,
        session_duty: float = 0.8,
        distance_jitter: float = 0.0,
        seed: Optional[int] = 17,
    ):
        super().__init__(seed)
        if eirp <= 0.0 or distance <= 0.0 or frequency <= 0.0:
            raise ConfigurationError("eirp, distance, frequency must be positive")
        if not 0.0 < rectifier_efficiency <= 1.0:
            raise ConfigurationError("rectifier efficiency must be in (0, 1]")
        if not 0.0 < session_duty <= 1.0:
            raise ConfigurationError("session duty must be in (0, 1]")
        self.eirp = eirp
        self.distance = distance
        self.frequency = frequency
        self.rectifier_efficiency = rectifier_efficiency
        self.sensitivity = sensitivity
        self.session_period = session_period
        self.session_duty = session_duty
        self.distance_jitter = distance_jitter
        self._session_index = -1
        self._session_distance = distance

    def _wavelength(self) -> float:
        return 299792458.0 / self.frequency

    def received_rf_power(self, t: float) -> float:
        """Friis free-space received power (W) while the reader transmits."""
        index = int(t / self.session_period)
        if index != self._session_index:
            self._session_index = index
            jitter = 1.0
            if self.distance_jitter > 0.0:
                jitter = max(
                    0.1, 1.0 + self.distance_jitter * float(self._rng.standard_normal())
                )
            self._session_distance = self.distance * jitter
        phase = (t % self.session_period) / self.session_period
        if phase >= self.session_duty:
            return 0.0
        lam = self._wavelength()
        gain = (lam / (4.0 * math.pi * self._session_distance)) ** 2
        return self.eirp * gain

    def power(self, t: float) -> float:
        rf = self.received_rf_power(t)
        if rf < self.sensitivity:
            return 0.0
        return self.rectifier_efficiency * rf

    def reset(self) -> None:
        super().reset()
        self._session_index = -1
        self._session_distance = self.distance
