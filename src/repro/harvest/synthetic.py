"""Synthetic / bench sources.

The paper validates hibernus "powered from multiple sources including
controlled sources (signal generator at DC-20 Hz)" — these classes are those
controlled sources.  Fig. 7 drives the system directly from a half-wave
rectified sine; :class:`SignalGenerator` with ``rectified=True`` reproduces
exactly that supply.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester, VoltageHarvester
from repro.spec.registry import register


@register("sine-voltage", kind="harvester")
class SineVoltageHarvester(VoltageHarvester):
    """Pure sinusoidal voltage source: ``V(t) = A * sin(2*pi*f*t + phase)``."""

    def __init__(
        self,
        amplitude: float,
        frequency: float,
        source_resistance: float = 100.0,
        phase: float = 0.0,
    ):
        super().__init__(source_resistance)
        if amplitude < 0.0:
            raise ConfigurationError(f"amplitude must be >= 0, got {amplitude!r}")
        if frequency < 0.0:
            raise ConfigurationError(f"frequency must be >= 0, got {frequency!r}")
        self.amplitude = amplitude
        self.frequency = frequency
        self.phase = phase

    def open_circuit_voltage(self, t: float) -> float:
        return self.amplitude * math.sin(2.0 * math.pi * self.frequency * t + self.phase)

    def open_circuit_voltage_array(self, times: np.ndarray) -> np.ndarray:
        omega = 2.0 * math.pi * self.frequency
        return self.amplitude * np.sin(omega * times + self.phase)

    def chunk_safe(self) -> bool:
        return True


@register("signal-generator", kind="harvester")
class SignalGenerator(VoltageHarvester):
    """Bench signal generator, DC to tens of Hz (§III validation source).

    Args:
        amplitude: peak output voltage in volts.
        frequency: output frequency in hertz. 0 selects DC at ``amplitude``.
        rectified: if True the output is half-wave rectified in the
            generator itself (``max(0, sin)``), matching the Fig. 7 supply.
        source_resistance: output impedance in ohms.
    """

    def __init__(
        self,
        amplitude: float,
        frequency: float,
        rectified: bool = False,
        source_resistance: float = 50.0,
    ):
        super().__init__(source_resistance)
        if amplitude < 0.0:
            raise ConfigurationError(f"amplitude must be >= 0, got {amplitude!r}")
        if frequency < 0.0:
            raise ConfigurationError(f"frequency must be >= 0, got {frequency!r}")
        self.amplitude = amplitude
        self.frequency = frequency
        self.rectified = rectified

    def open_circuit_voltage(self, t: float) -> float:
        if self.frequency == 0.0:
            return self.amplitude
        raw = self.amplitude * math.sin(2.0 * math.pi * self.frequency * t)
        if self.rectified:
            return max(0.0, raw)
        return raw

    def open_circuit_voltage_array(self, times: np.ndarray) -> np.ndarray:
        if self.frequency == 0.0:
            return np.full(len(times), self.amplitude, dtype=float)
        omega = 2.0 * math.pi * self.frequency
        raw = self.amplitude * np.sin(omega * times)
        if self.rectified:
            return np.maximum(0.0, raw)
        return raw

    def chunk_safe(self) -> bool:
        return True


@register("half-wave-sine-power", kind="harvester")
class HalfWaveRectifiedSinePower(PowerHarvester):
    """Half-wave rectified sine expressed directly as available power.

    A convenience for power-domain experiments (Fig. 8 drives the DFS
    governor from the half-wave rectified output of a wind turbine): the
    power available follows ``P_peak * max(0, sin(2*pi*f*t))^2`` since power
    scales with the square of the source voltage into a matched load.
    """

    def __init__(self, peak_power: float, frequency: float):
        super().__init__(seed=None)
        if peak_power < 0.0:
            raise ConfigurationError(f"peak power must be >= 0, got {peak_power!r}")
        if frequency <= 0.0:
            raise ConfigurationError(f"frequency must be > 0, got {frequency!r}")
        self.peak_power = peak_power
        self.frequency = frequency

    def power(self, t: float) -> float:
        s = math.sin(2.0 * math.pi * self.frequency * t)
        if s <= 0.0:
            return 0.0
        return self.peak_power * s * s

    def power_array(self, times: np.ndarray) -> np.ndarray:
        s = np.sin((2.0 * math.pi * self.frequency) * times)
        return np.where(s <= 0.0, 0.0, self.peak_power * s * s)

    def chunk_safe(self) -> bool:
        return True


@register("square-wave-power", kind="harvester")
class SquareWavePowerHarvester(PowerHarvester):
    """On/off power source with a fixed period and duty cycle.

    This is the canonical 'intermittent supply' abstraction used throughout
    the transient-computing literature to sweep interruption frequency —
    it drives the Eq. 5 crossover bench.
    """

    def __init__(self, on_power: float, period: float, duty: float = 0.5, t_offset: float = 0.0):
        super().__init__(seed=None)
        if on_power < 0.0:
            raise ConfigurationError(f"on power must be >= 0, got {on_power!r}")
        if period <= 0.0:
            raise ConfigurationError(f"period must be > 0, got {period!r}")
        if not 0.0 < duty <= 1.0:
            raise ConfigurationError(f"duty must be in (0, 1], got {duty!r}")
        self.on_power = on_power
        self.period = period
        self.duty = duty
        self.t_offset = t_offset

    def power(self, t: float) -> float:
        phase = math.fmod(t + self.t_offset, self.period) / self.period
        if phase < 0.0:
            phase += 1.0
        return self.on_power if phase < self.duty else 0.0

    def power_array(self, times: np.ndarray) -> np.ndarray:
        phase = np.fmod(times + self.t_offset, self.period) / self.period
        phase = np.where(phase < 0.0, phase + 1.0, phase)
        return np.where(phase < self.duty, self.on_power, 0.0)

    def chunk_safe(self) -> bool:
        return True


@register("trapezoid-supply", kind="harvester")
class TrapezoidSupply(VoltageHarvester):
    """Periodic trapezoid supply: the Eq. (5) crossover bench waveform.

    Each period ramps down from ``v_high`` to ``v_low`` at ``ramp_down``
    V/s, dwells at ``v_low`` for ``dwell_low`` seconds, ramps back up at
    ``ramp_up`` V/s, and holds ``v_high`` for the rest of the period.
    With ``v_low`` below a platform's brownout voltage this produces one
    supply interruption per period — the canonical interruption-frequency
    sweep axis.
    """

    def __init__(
        self,
        frequency: float = 10.0,
        v_high: float = 3.2,
        v_low: float = 1.6,
        ramp_down: float = 230.0,
        ramp_up: float = 4000.0,
        dwell_low: float = 2e-3,
        source_resistance: float = 10.0,
    ):
        super().__init__(source_resistance)
        if frequency <= 0.0:
            raise ConfigurationError(f"frequency must be > 0, got {frequency!r}")
        if not 0.0 <= v_low < v_high:
            raise ConfigurationError("need 0 <= v_low < v_high")
        if ramp_down <= 0.0 or ramp_up <= 0.0 or dwell_low < 0.0:
            raise ConfigurationError("ramps must be positive, dwell non-negative")
        period = 1.0 / frequency
        swing = v_high - v_low
        if swing / ramp_down + dwell_low + swing / ramp_up > period:
            raise ConfigurationError(
                "trapezoid does not fit in one period; raise the ramp rates, "
                "shorten dwell_low, or lower the frequency"
            )
        self.frequency = frequency
        self.v_high = v_high
        self.v_low = v_low
        self.ramp_down = ramp_down
        self.ramp_up = ramp_up
        self.dwell_low = dwell_low

    def open_circuit_voltage(self, t: float) -> float:
        period = 1.0 / self.frequency
        phase = math.fmod(t, period)
        if phase < 0.0:
            phase += period
        t_down = (self.v_high - self.v_low) / self.ramp_down
        if phase < t_down:
            return self.v_high - self.ramp_down * phase
        phase -= t_down
        if phase < self.dwell_low:
            return self.v_low
        phase -= self.dwell_low
        t_up = (self.v_high - self.v_low) / self.ramp_up
        if phase < t_up:
            return self.v_low + self.ramp_up * phase
        return self.v_high

    def open_circuit_voltage_array(self, times: np.ndarray) -> np.ndarray:
        period = 1.0 / self.frequency
        phase = np.fmod(times, period)
        phase = np.where(phase < 0.0, phase + period, phase)
        t_down = (self.v_high - self.v_low) / self.ramp_down
        t_up = (self.v_high - self.v_low) / self.ramp_up
        after_down = phase - t_down
        after_dwell = after_down - self.dwell_low
        return np.select(
            [phase < t_down, after_down < self.dwell_low, after_dwell < t_up],
            [
                self.v_high - self.ramp_down * phase,
                np.full(len(times), self.v_low, dtype=float),
                self.v_low + self.ramp_up * after_dwell,
            ],
            default=self.v_high,
        )

    def chunk_safe(self) -> bool:
        return True


@register("gated-power", kind="harvester")
class GatedPowerHarvester(PowerHarvester):
    """Wraps a power harvester with random on/off gating.

    Models supplies that disappear unpredictably (occlusion of a PV cell,
    RF reader leaving range).  Gate durations are exponentially distributed
    with separate means for the on and off states; the realisation is
    pre-computed lazily so :meth:`power` stays O(1) amortised.
    """

    def __init__(
        self,
        inner: PowerHarvester,
        mean_on: float,
        mean_off: float,
        seed: Optional[int] = 0,
    ):
        super().__init__(seed=seed)
        if mean_on <= 0.0 or mean_off <= 0.0:
            raise ConfigurationError("mean_on and mean_off must be positive")
        self._inner = inner
        self._mean_on = mean_on
        self._mean_off = mean_off
        self._edges = [0.0]
        self._state_on = [True]

    def _extend_to(self, t: float) -> None:
        while self._edges[-1] <= t:
            on = self._state_on[-1]
            mean = self._mean_on if on else self._mean_off
            self._edges.append(self._edges[-1] + float(self._rng.exponential(mean)))
            self._state_on.append(not on)

    def _gate(self, t: float) -> bool:
        self._extend_to(t)
        # Find the interval containing t: edges[i] <= t < edges[i+1].
        lo, hi = 0, len(self._edges) - 1
        while lo < hi - 1:
            mid = (lo + hi) // 2
            if self._edges[mid] <= t:
                lo = mid
            else:
                hi = mid
        return self._state_on[lo]

    def power(self, t: float) -> float:
        if not self._gate(t):
            return 0.0
        return self._inner.power(t)

    def power_array(self, times: np.ndarray) -> np.ndarray:
        if len(times) == 0:
            return np.zeros(0, dtype=float)
        self._extend_to(float(times[-1]))
        edges = np.asarray(self._edges, dtype=float)
        on = np.asarray(self._state_on, dtype=bool)
        gate = on[np.searchsorted(edges, times, side="right") - 1]
        return np.where(gate, self._inner.power_array(times), 0.0)

    def chunk_safe(self) -> bool:
        # The gate realisation is lazily extended but cached: re-querying
        # the same times is idempotent.  Safety reduces to the inner source.
        return self._inner.chunk_safe()

    def reset(self) -> None:
        super().reset()
        self._inner.reset()
        self._edges = [0.0]
        self._state_on = [True]
