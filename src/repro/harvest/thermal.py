"""Thermoelectric (TEG) harvester.

Standard matched-load thermoelectric model: open-circuit voltage is
``S * dT`` (Seebeck coefficient times temperature gradient) and the maximum
transferable power is ``V_oc^2 / (4 * R_internal)``.  The gradient follows a
configurable profile (e.g. body-worn: high when worn, zero on the desk).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester
from repro.spec.registry import register


@register("thermal", kind="harvester")
class ThermoelectricHarvester(PowerHarvester):
    """TEG with a time-varying temperature gradient.

    Args:
        seebeck: module Seebeck coefficient (V/K), tens of mV/K for
            commercial multi-couple modules.
        internal_resistance: module electrical resistance (ohm).
        gradient_profile: callable ``t -> dT`` in kelvin. Defaults to a
            constant 5 K gradient.
        converter_efficiency: DC-DC boost efficiency applied on top of the
            matched-load transfer (TEG outputs are tens of mV and always
            need boosting).
    """

    def __init__(
        self,
        seebeck: float = 0.05,
        internal_resistance: float = 5.0,
        gradient_profile: Optional[Callable[[float], float]] = None,
        converter_efficiency: float = 0.6,
        seed: Optional[int] = None,
    ):
        super().__init__(seed)
        if seebeck <= 0.0 or internal_resistance <= 0.0:
            raise ConfigurationError("seebeck and resistance must be positive")
        if not 0.0 < converter_efficiency <= 1.0:
            raise ConfigurationError("converter efficiency must be in (0, 1]")
        self.seebeck = seebeck
        self.internal_resistance = internal_resistance
        self.gradient_profile = gradient_profile or (lambda t: 5.0)
        self.converter_efficiency = converter_efficiency

    def open_circuit_voltage(self, t: float) -> float:
        """Seebeck open-circuit voltage at time ``t``."""
        return self.seebeck * max(0.0, self.gradient_profile(t))

    def power(self, t: float) -> float:
        v_oc = self.open_circuit_voltage(t)
        matched = v_oc * v_oc / (4.0 * self.internal_resistance)
        return self.converter_efficiency * matched
