"""Harvester base classes and simple combinators."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.spec.registry import register


class Harvester:
    """Common base: reproducible randomness + reset semantics."""

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def chunk_safe(self) -> bool:
        """True when output sampling is pure (idempotent per time point).

        The fast kernel precomputes source values for steps it may then
        discard at an event boundary and re-evaluate per-step; that is
        only sound when repeated evaluation at the same time returns the
        same value without consuming state (e.g. per-call RNG draws).
        Closed-form sources override this to True; the conservative
        default keeps stateful harvesters on per-step execution.
        """
        return False

    def reset(self) -> None:
        """Restore the harvester to its initial (identically seeded) state."""
        self._rng = np.random.default_rng(self._seed)

    @property
    def rng(self) -> np.random.Generator:
        """The harvester's private random generator."""
        return self._rng


class PowerHarvester(Harvester):
    """A source characterised by instantaneous available power ``P_h(t)``.

    Subclasses implement :meth:`power`.  Values are watts and must be
    non-negative; the conditioning chain decides how much of this power can
    actually be pushed into the rail at the rail's present voltage.
    """

    def power(self, t: float) -> float:
        """Available harvested power (W) at simulation time ``t``."""
        raise NotImplementedError

    def power_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`power` over a chunk of sample times.

        The default loops over :meth:`power` in time order.  The fast
        kernel only consumes this when :meth:`~Harvester.chunk_safe` is
        True — a discarded chunk re-evaluates its boundary step, which is
        only sound for pure sampling; closed-form sources override this
        with true numpy implementations.
        """
        return np.array([self.power(float(t)) for t in times], dtype=float)

    def mean_power(self, duration: float, dt: float) -> float:
        """Average of :meth:`power` sampled every ``dt`` over ``duration``."""
        if duration <= 0 or dt <= 0:
            raise ConfigurationError("duration and dt must be positive")
        samples = np.arange(0.0, duration, dt)
        return float(np.mean([self.power(float(t)) for t in samples]))


class VoltageHarvester(Harvester):
    """A source characterised by open-circuit voltage and source resistance.

    The paper's wind-turbine traces (Fig. 1a) and the signal-generator
    validation (§III) are voltage sources; they reach the rail through a
    rectifier (:mod:`repro.power.rectifier`).
    """

    def __init__(self, source_resistance: float, seed: Optional[int] = None):
        super().__init__(seed)
        if source_resistance <= 0.0:
            raise ConfigurationError(
                f"source resistance must be positive, got {source_resistance!r}"
            )
        self.source_resistance = source_resistance

    def open_circuit_voltage(self, t: float) -> float:
        """Open-circuit output voltage (V) at time ``t``; may be negative."""
        raise NotImplementedError

    def open_circuit_voltage_array(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`open_circuit_voltage` over a chunk of times.

        Default: a time-ordered loop over the scalar method.  Consumed by
        the fast kernel only when :meth:`~Harvester.chunk_safe` is True;
        closed-form sources override with numpy expressions.
        """
        return np.array(
            [self.open_circuit_voltage(float(t)) for t in times], dtype=float
        )


@register("constant-power", kind="harvester")
class ConstantPowerHarvester(PowerHarvester):
    """A flat power source — the degenerate 'battery-like' case."""

    def __init__(self, power: float):
        super().__init__(seed=None)
        if power < 0.0:
            raise ConfigurationError(f"power must be non-negative, got {power!r}")
        self._power = power

    def power(self, t: float) -> float:
        return self._power

    def power_array(self, times: np.ndarray) -> np.ndarray:
        return np.full(len(times), self._power, dtype=float)

    def chunk_safe(self) -> bool:
        return True


class ScaledHarvester(PowerHarvester):
    """Scales another power harvester by a constant gain.

    Useful for spatial variation studies: the same temporal profile at a
    sunnier or shadier placement.
    """

    def __init__(self, inner: PowerHarvester, gain: float):
        super().__init__(seed=None)
        if gain < 0.0:
            raise ConfigurationError(f"gain must be non-negative, got {gain!r}")
        self._inner = inner
        self._gain = gain

    def power(self, t: float) -> float:
        return self._gain * self._inner.power(t)

    def power_array(self, times: np.ndarray) -> np.ndarray:
        return self._gain * self._inner.power_array(times)

    def chunk_safe(self) -> bool:
        return self._inner.chunk_safe()

    def reset(self) -> None:
        self._inner.reset()


class SummedHarvester(PowerHarvester):
    """Sum of several power harvesters (multi-source energy harvesting)."""

    def __init__(self, harvesters: Sequence[PowerHarvester]):
        super().__init__(seed=None)
        if not harvesters:
            raise ConfigurationError("SummedHarvester needs at least one source")
        self._harvesters = list(harvesters)

    def power(self, t: float) -> float:
        return sum(h.power(t) for h in self._harvesters)

    def power_array(self, times: np.ndarray) -> np.ndarray:
        # Same accumulation order as the scalar sum(): 0 + p_0 + p_1 + ...
        total = np.zeros(len(times), dtype=float)
        for harvester in self._harvesters:
            total = total + harvester.power_array(times)
        return total

    def chunk_safe(self) -> bool:
        return all(h.chunk_safe() for h in self._harvesters)

    def reset(self) -> None:
        for harvester in self._harvesters:
            harvester.reset()
