"""Photovoltaic harvester models (Fig. 1b).

Fig. 1b plots the available current from an *indoor* photovoltaic cell over
two days: a ~280 uA floor (overnight artificial/ambient light in the lab)
with broad daytime humps peaking around 420-430 uA.  The model composes an
illuminance profile (indoor or outdoor) with a linear small-cell response
plus weather/occupancy noise.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.harvest.base import Harvester, PowerHarvester
from repro.units import days, hours


class OutdoorIrradianceProfile(Harvester):
    """Outdoor solar irradiance: clamped-cosine diurnal arc with cloud noise.

    Irradiance is normalised: 1.0 is clear-sky solar noon.  Cloudiness is an
    Ornstein-Uhlenbeck process sampled on a fixed internal grid so queries
    are deterministic for a given seed.
    """

    def __init__(
        self,
        sunrise_hour: float = 6.0,
        sunset_hour: float = 18.0,
        cloud_intensity: float = 0.2,
        cloud_timescale: float = hours(1.0),
        seed: Optional[int] = 11,
    ):
        super().__init__(seed)
        if not 0.0 <= sunrise_hour < sunset_hour <= 24.0:
            raise ConfigurationError("need 0 <= sunrise < sunset <= 24")
        if not 0.0 <= cloud_intensity < 1.0:
            raise ConfigurationError("cloud intensity must be in [0, 1)")
        self.sunrise_hour = sunrise_hour
        self.sunset_hour = sunset_hour
        self.cloud_intensity = cloud_intensity
        self.cloud_timescale = cloud_timescale
        self._cloud_grid_dt = cloud_timescale / 4.0
        self._cloud_samples = [0.0]

    def _cloud_factor(self, t: float) -> float:
        """OU cloudiness in [0, 1]; 0 = clear."""
        if self.cloud_intensity == 0.0:
            return 0.0
        index = int(t / self._cloud_grid_dt)
        while len(self._cloud_samples) <= index + 1:
            prev = self._cloud_samples[-1]
            theta = self._cloud_grid_dt / self.cloud_timescale
            noise = float(self._rng.standard_normal()) * math.sqrt(2.0 * theta)
            nxt = prev + theta * (0.0 - prev) + noise * self.cloud_intensity
            self._cloud_samples.append(nxt)
        frac = t / self._cloud_grid_dt - index
        value = (1 - frac) * self._cloud_samples[index] + frac * self._cloud_samples[index + 1]
        return min(1.0, max(0.0, abs(value)))

    def irradiance(self, t: float) -> float:
        """Normalised irradiance at simulation time ``t`` (t=0 is midnight)."""
        hour = (t % days(1)) / 3600.0
        if hour <= self.sunrise_hour or hour >= self.sunset_hour:
            return 0.0
        span = self.sunset_hour - self.sunrise_hour
        x = (hour - self.sunrise_hour) / span
        clear = math.sin(math.pi * x)
        return clear * (1.0 - self._cloud_factor(t))

    def reset(self) -> None:
        super().reset()
        self._cloud_samples = [0.0]


class IndoorLightingProfile(Harvester):
    """Indoor illuminance: office lighting schedule + daylight through windows.

    Produces a normalised illuminance with a night floor (emergency/ambient
    lighting), a step up during occupied hours, and a daylight contribution
    that follows the outdoor arc — matching the broad daytime humps with a
    nonzero floor visible in Fig. 1b.
    """

    def __init__(
        self,
        night_level: float = 0.62,
        occupied_level: float = 0.85,
        daylight_gain: float = 0.15,
        occupied_start_hour: float = 8.0,
        occupied_end_hour: float = 19.0,
        flicker: float = 0.01,
        seed: Optional[int] = 13,
    ):
        super().__init__(seed)
        if not 0.0 <= night_level <= occupied_level:
            raise ConfigurationError("need 0 <= night_level <= occupied_level")
        self.night_level = night_level
        self.occupied_level = occupied_level
        self.daylight_gain = daylight_gain
        self.occupied_start_hour = occupied_start_hour
        self.occupied_end_hour = occupied_end_hour
        self.flicker = flicker
        self._daylight = OutdoorIrradianceProfile(
            cloud_intensity=0.1, seed=None if seed is None else seed + 1
        )

    def illuminance(self, t: float) -> float:
        """Normalised illuminance at time ``t`` (t=0 is midnight)."""
        hour = (t % days(1)) / 3600.0
        level = self.night_level
        if self.occupied_start_hour <= hour < self.occupied_end_hour:
            # Smooth ramp at the schedule edges (people trickle in/out).
            ramp_in = min(1.0, (hour - self.occupied_start_hour) / 0.75)
            ramp_out = min(1.0, (self.occupied_end_hour - hour) / 0.75)
            level += (self.occupied_level - self.night_level) * min(ramp_in, ramp_out)
        level += self.daylight_gain * self._daylight.irradiance(t)
        if self.flicker > 0.0:
            level *= 1.0 + self.flicker * float(self._rng.standard_normal())
        return max(0.0, level)

    def reset(self) -> None:
        super().reset()
        self._daylight.reset()


class PhotovoltaicHarvester(PowerHarvester):
    """A small PV cell operated near its maximum power point.

    The cell is linear in illuminance over the small indoor range: harvested
    current is ``i = i_full * illuminance`` and the available power is
    ``p = v_mpp * i``.  :meth:`current` exposes the Fig. 1b quantity
    directly (the figure's y-axis is harvested current in microamps).

    Args:
        profile: an illuminance/irradiance source with a ``illuminance`` or
            ``irradiance`` method returning a normalised level.
        full_scale_current: cell current (A) at normalised level 1.0.
        v_mpp: maximum-power-point voltage (V) of the cell.
    """

    def __init__(
        self,
        profile,
        full_scale_current: float = 500e-6,
        v_mpp: float = 2.4,
    ):
        super().__init__(seed=None)
        if full_scale_current <= 0.0:
            raise ConfigurationError("full-scale current must be positive")
        if v_mpp <= 0.0:
            raise ConfigurationError("v_mpp must be positive")
        self._profile = profile
        self.full_scale_current = full_scale_current
        self.v_mpp = v_mpp

    @classmethod
    def indoor_fig1b(cls, seed: Optional[int] = 13) -> "PhotovoltaicHarvester":
        """The Fig. 1b cell: ~280 uA night floor, ~430 uA daytime peak."""
        return cls(IndoorLightingProfile(seed=seed), full_scale_current=430e-6)

    @classmethod
    def outdoor(cls, seed: Optional[int] = 11, **kwargs) -> "PhotovoltaicHarvester":
        """An outdoor cell with a zero overnight floor."""
        return cls(OutdoorIrradianceProfile(seed=seed), **kwargs)

    def _level(self, t: float) -> float:
        if hasattr(self._profile, "illuminance"):
            return self._profile.illuminance(t)
        return self._profile.irradiance(t)

    def current(self, t: float) -> float:
        """Harvested current (A) at time ``t`` — the Fig. 1b y-axis."""
        return self.full_scale_current * self._level(t)

    def power(self, t: float) -> float:
        return self.v_mpp * self.current(t)

    def reset(self) -> None:
        self._profile.reset()
