"""Kinetic / vibration harvesters.

Two flavours the paper's validation mentions ('kinetic'):

* :class:`ImpactKineticHarvester` — impulsive excitation (footsteps, door
  slams): each impact rings the transducer, producing an exponentially
  decaying AC burst.
* :class:`VibrationHarvester` — continuous narrowband vibration (machinery):
  a resonant cantilever whose output depends on how close the ambient
  vibration frequency sits to its resonance.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester, VoltageHarvester
from repro.spec.registry import register


@register("impact-kinetic", kind="harvester")
class ImpactKineticHarvester(VoltageHarvester):
    """Impact-excited transducer: decaying sinusoid per impact event.

    Impacts arrive as a Poisson process with ``impact_rate`` events/s; each
    has amplitude drawn uniformly in ``[0.5, 1.0] * peak_voltage`` and rings
    at ``ring_frequency`` with time constant ``ring_decay``.
    """

    def __init__(
        self,
        impact_rate: float = 1.5,
        peak_voltage: float = 3.5,
        ring_frequency: float = 45.0,
        ring_decay: float = 0.12,
        source_resistance: float = 500.0,
        seed: Optional[int] = 23,
    ):
        super().__init__(source_resistance, seed=seed)
        if impact_rate <= 0.0:
            raise ConfigurationError("impact rate must be positive")
        if peak_voltage < 0.0 or ring_frequency <= 0.0 or ring_decay <= 0.0:
            raise ConfigurationError("invalid ring parameters")
        self.impact_rate = impact_rate
        self.peak_voltage = peak_voltage
        self.ring_frequency = ring_frequency
        self.ring_decay = ring_decay
        self._impact_times: List[float] = []
        self._impact_amps: List[float] = []
        self._horizon = 0.0

    def _extend_to(self, t: float) -> None:
        while self._horizon <= t:
            gap = float(self._rng.exponential(1.0 / self.impact_rate))
            self._horizon += gap
            self._impact_times.append(self._horizon)
            self._impact_amps.append(
                self.peak_voltage * float(self._rng.uniform(0.5, 1.0))
            )

    def open_circuit_voltage(self, t: float) -> float:
        self._extend_to(t)
        v = 0.0
        # Only impacts within ~8 decay constants matter.
        window = 8.0 * self.ring_decay
        for t_i, amp in zip(self._impact_times, self._impact_amps):
            if t_i > t:
                break
            age = t - t_i
            if age > window:
                continue
            v += (
                amp
                * math.exp(-age / self.ring_decay)
                * math.sin(2.0 * math.pi * self.ring_frequency * age)
            )
        return v

    def reset(self) -> None:
        super().reset()
        self._impact_times.clear()
        self._impact_amps.clear()
        self._horizon = 0.0


@register("vibration", kind="harvester")
class VibrationHarvester(PowerHarvester):
    """Resonant cantilever on continuous machine vibration.

    Output power follows a Lorentzian in the detuning between ambient
    vibration frequency and the cantilever's resonance, scaled by the
    squared acceleration amplitude — the standard linear-resonator result.
    """

    def __init__(
        self,
        resonance_frequency: float = 50.0,
        quality_factor: float = 40.0,
        peak_power: float = 2e-3,
        vibration_frequency: float = 50.0,
        acceleration_rms: float = 1.0,
        amplitude_noise: float = 0.0,
        seed: Optional[int] = 29,
    ):
        super().__init__(seed)
        if resonance_frequency <= 0.0 or vibration_frequency <= 0.0:
            raise ConfigurationError("frequencies must be positive")
        if quality_factor <= 0.0 or peak_power < 0.0:
            raise ConfigurationError("invalid resonator parameters")
        self.resonance_frequency = resonance_frequency
        self.quality_factor = quality_factor
        self.peak_power = peak_power
        self.vibration_frequency = vibration_frequency
        self.acceleration_rms = acceleration_rms
        self.amplitude_noise = amplitude_noise

    def _lorentzian(self) -> float:
        f0 = self.resonance_frequency
        f = self.vibration_frequency
        half_width = f0 / (2.0 * self.quality_factor)
        detune = f - f0
        return half_width**2 / (detune**2 + half_width**2)

    def power(self, t: float) -> float:
        p = self.peak_power * self._lorentzian() * self.acceleration_rms**2
        if self.amplitude_noise > 0.0:
            p *= max(0.0, 1.0 + self.amplitude_noise * float(self._rng.standard_normal()))
        return p
