"""Trace recording and playback.

The paper points at a public dataset (DOI 10.5258/SOTON/404058) of harvester
traces.  We cannot fetch it offline, so :func:`record_power` /
:func:`record_voltage` produce equivalent trace files from the parametric
models, and :class:`TraceHarvester` plays any such trace back — which is how
a user would feed *real* logged data into the framework.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester, VoltageHarvester


class TraceHarvester(PowerHarvester):
    """Plays back a sampled power trace, with optional looping.

    Between samples the power is linearly interpolated; beyond the end the
    trace either loops (default) or holds zero.
    """

    def __init__(
        self,
        times: Sequence[float],
        powers: Sequence[float],
        loop: bool = True,
    ):
        super().__init__(seed=None)
        self._times = np.asarray(times, dtype=float)
        self._powers = np.asarray(powers, dtype=float)
        if self._times.size != self._powers.size:
            raise ConfigurationError("times and powers must have equal length")
        if self._times.size < 2:
            raise ConfigurationError("a trace needs at least two samples")
        if np.any(np.diff(self._times) <= 0):
            raise ConfigurationError("trace times must be strictly increasing")
        if np.any(self._powers < 0):
            raise ConfigurationError("trace powers must be non-negative")
        self.loop = loop

    @property
    def duration(self) -> float:
        """Length of one playback pass in seconds."""
        return float(self._times[-1] - self._times[0])

    @classmethod
    def from_csv(cls, path: Union[str, Path], loop: bool = True) -> "TraceHarvester":
        """Load a two-column (time, power) CSV file with a header row."""
        times, powers = [], []
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None:
                raise ConfigurationError(f"empty trace file: {path}")
            for row in reader:
                if len(row) < 2:
                    continue
                times.append(float(row[0]))
                powers.append(float(row[1]))
        return cls(times, powers, loop=loop)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as a (time, power) CSV with a header row."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time_s", "power_w"])
            for t, p in zip(self._times, self._powers):
                writer.writerow([f"{t:.9g}", f"{p:.9g}"])

    def power(self, t: float) -> float:
        t0 = float(self._times[0])
        rel = t - t0
        if self.loop:
            rel = rel % self.duration
        elif rel > self.duration or rel < 0.0:
            return 0.0
        return float(np.interp(t0 + rel, self._times, self._powers))


def record_power(
    harvester: PowerHarvester, duration: float, dt: float
) -> TraceHarvester:
    """Sample a power harvester into a playback trace."""
    if duration <= 0.0 or dt <= 0.0:
        raise ConfigurationError("duration and dt must be positive")
    times = np.arange(0.0, duration + 0.5 * dt, dt)
    powers = np.array([harvester.power(float(t)) for t in times])
    return TraceHarvester(times, np.maximum(powers, 0.0))


def record_voltage(
    harvester: VoltageHarvester, duration: float, dt: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Sample a voltage harvester's open-circuit output.

    Returns (times, voltages) arrays — voltage traces can be bipolar so they
    do not fit :class:`TraceHarvester`; they are consumed by the waveform
    analysis in the Fig. 1a bench.
    """
    if duration <= 0.0 or dt <= 0.0:
        raise ConfigurationError("duration and dt must be positive")
    times = np.arange(0.0, duration + 0.5 * dt, dt)
    volts = np.array([harvester.open_circuit_voltage(float(t)) for t in times])
    return times, volts
