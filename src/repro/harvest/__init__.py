"""Energy harvester models.

Two electrical flavours exist:

* :class:`~repro.harvest.base.PowerHarvester` — sources best described by an
  available power ``P_h(t)`` (photovoltaic, RF rectenna, thermal).
* :class:`~repro.harvest.base.VoltageHarvester` — sources best described by
  an open-circuit voltage and a source resistance (micro wind turbine,
  kinetic transducers, bench signal generators).  These feed the rail
  through a rectifier from :mod:`repro.power`.

All stochastic models carry their own seeded RNG so runs are reproducible
and :meth:`reset` restores the exact same realisation.
"""

from repro.harvest.base import (
    ConstantPowerHarvester,
    Harvester,
    PowerHarvester,
    ScaledHarvester,
    SummedHarvester,
    VoltageHarvester,
)
from repro.harvest.synthetic import (
    GatedPowerHarvester,
    HalfWaveRectifiedSinePower,
    SignalGenerator,
    SineVoltageHarvester,
    SquareWavePowerHarvester,
    TrapezoidSupply,
)
from repro.harvest.wind import GustProfile, MicroWindTurbine
from repro.harvest.solar import (
    IndoorLightingProfile,
    OutdoorIrradianceProfile,
    PhotovoltaicHarvester,
)
from repro.harvest.rf import RFHarvester
from repro.harvest.kinetic import ImpactKineticHarvester, VibrationHarvester
from repro.harvest.thermal import ThermoelectricHarvester
from repro.harvest.traces import TraceHarvester, record_power, record_voltage
from repro.harvest.environment import (
    DayCondition,
    EnvironmentHarvester,
    WeatherSequence,
    required_storage,
    worst_window_energy,
)
from repro.spec.registry import register

# Classmethod factories for profile-carrying harvesters: the registry wants
# flat keyword arguments, which these provide.
register("pv-indoor", kind="harvester")(PhotovoltaicHarvester.indoor_fig1b)
register("pv-outdoor", kind="harvester")(PhotovoltaicHarvester.outdoor)
register("wind-single-gust", kind="harvester")(MicroWindTurbine.single_gust)

__all__ = [
    "Harvester",
    "PowerHarvester",
    "VoltageHarvester",
    "ConstantPowerHarvester",
    "ScaledHarvester",
    "SummedHarvester",
    "SineVoltageHarvester",
    "HalfWaveRectifiedSinePower",
    "SquareWavePowerHarvester",
    "TrapezoidSupply",
    "GatedPowerHarvester",
    "SignalGenerator",
    "MicroWindTurbine",
    "GustProfile",
    "PhotovoltaicHarvester",
    "IndoorLightingProfile",
    "OutdoorIrradianceProfile",
    "RFHarvester",
    "ImpactKineticHarvester",
    "VibrationHarvester",
    "ThermoelectricHarvester",
    "TraceHarvester",
    "record_power",
    "record_voltage",
    "DayCondition",
    "WeatherSequence",
    "EnvironmentHarvester",
    "worst_window_energy",
    "required_storage",
]
