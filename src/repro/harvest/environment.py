"""Energy-environment composition: multi-day, multi-condition scenarios.

The paper's framing is that the *energy environment* is a first-class
design input.  This module lets scenarios be described as environments —
sequences of daily weather, occupancy patterns, deployment placements —
and compiled into harvester behaviour, rather than hand-tuning source
parameters per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harvest.base import PowerHarvester
from repro.units import days


@dataclass(frozen=True)
class DayCondition:
    """Weather/usage for one day of a scenario.

    Attributes:
        label: human-readable name ('sunny', 'overcast'...).
        harvest_scale: multiplier on the base source's output this day.
    """

    label: str
    harvest_scale: float

    def __post_init__(self) -> None:
        if self.harvest_scale < 0.0:
            raise ConfigurationError("harvest scale must be non-negative")


#: Common conditions, roughly calibrated to PV yield fractions.
SUNNY = DayCondition("sunny", 1.0)
PARTLY_CLOUDY = DayCondition("partly cloudy", 0.7)
OVERCAST = DayCondition("overcast", 0.35)
STORMY = DayCondition("stormy", 0.15)


class WeatherSequence:
    """A repeating sequence of day conditions."""

    def __init__(self, conditions: Sequence[DayCondition]):
        if not conditions:
            raise ConfigurationError("need at least one day condition")
        self.conditions = list(conditions)

    @classmethod
    def from_labels(cls, labels: Sequence[str]) -> "WeatherSequence":
        """Build from labels like ['sunny', 'overcast', ...]."""
        table = {
            c.label: c for c in (SUNNY, PARTLY_CLOUDY, OVERCAST, STORMY)
        }
        missing = [label for label in labels if label not in table]
        if missing:
            raise ConfigurationError(f"unknown conditions: {missing}")
        return cls([table[label] for label in labels])

    def condition_at(self, t: float) -> DayCondition:
        """The condition in force at simulation time ``t``."""
        index = int(t / days(1)) % len(self.conditions)
        return self.conditions[index]

    def scale_at(self, t: float) -> float:
        """Harvest multiplier at time ``t``."""
        return self.condition_at(t).harvest_scale

    def mean_scale(self) -> float:
        """Average multiplier across the sequence (sizing calculations)."""
        return sum(c.harvest_scale for c in self.conditions) / len(self.conditions)


class EnvironmentHarvester(PowerHarvester):
    """A base harvester modulated by a weather sequence and a placement.

    Args:
        base: the clear-condition source.
        weather: day-by-day multipliers.
        placement_gain: spatial variation — the same device deployed at a
            sunnier or shadier spot (the paper's 'spatial variation').
    """

    def __init__(
        self,
        base: PowerHarvester,
        weather: WeatherSequence,
        placement_gain: float = 1.0,
    ):
        super().__init__(seed=None)
        if placement_gain < 0.0:
            raise ConfigurationError("placement gain must be non-negative")
        self.base = base
        self.weather = weather
        self.placement_gain = placement_gain

    def power(self, t: float) -> float:
        return self.base.power(t) * self.weather.scale_at(t) * self.placement_gain

    def reset(self) -> None:
        self.base.reset()


def worst_window_energy(
    harvester: PowerHarvester,
    horizon: float,
    window: float,
    dt: float = 300.0,
) -> float:
    """Minimum energy harvested over any ``window`` inside ``horizon``.

    The sizing quantity for expression (2): storage plus worst-window
    harvest must cover the load's needs over the same window.
    """
    if window <= 0.0 or horizon < window:
        raise ConfigurationError("need 0 < window <= horizon")
    steps = int(horizon / dt)
    powers = [harvester.power(i * dt) for i in range(steps + 1)]
    per_step = [p * dt for p in powers]
    window_steps = max(1, int(window / dt))
    worst: Optional[float] = None
    rolling = sum(per_step[:window_steps])
    worst = rolling
    for i in range(window_steps, len(per_step)):
        rolling += per_step[i] - per_step[i - window_steps]
        worst = min(worst, rolling)
    return max(0.0, worst)


def required_storage(
    harvester: PowerHarvester,
    load_power: float,
    horizon: float,
    window: float = days(1),
) -> float:
    """Storage (J) needed so a constant ``load_power`` survives the worst
    harvest window — the energy-neutral sizing rule of §II.A."""
    if load_power <= 0.0:
        raise ConfigurationError("load power must be positive")
    harvested = worst_window_energy(harvester, horizon, window)
    needed = load_power * window
    return max(0.0, needed - harvested)
