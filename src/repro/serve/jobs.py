"""Job records and their persistence for the simulation service.

A *job* is one accepted API request — a single run, a sweep grid, or a
budgeted exploration — tracked from submission to completion.  Job ids
are **deterministic**: the content hash of ``(kind, request)``, so
resubmitting the identical request addresses the identical job (the
service turns that into idempotent submission, the HTTP analogue of the
result store's hash dedupe).

Persistence mirrors the result store's durability model but is
event-sourced: every status transition appends one JSONL snapshot line,
the loader keeps the *last* snapshot per job, and a torn final line
(process killed mid-append) is dropped and compacted away.  A service
restarting over an existing job file therefore sees exactly the jobs
the previous process accepted — and marks any still ``queued`` or
``running`` as ``interrupted``, because their executor died with the
process (their *computed points* are safe in the result store; a
resubmission recomputes only the gap).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ResultStoreError
from repro.results.run_result import content_hash

#: The job lifecycle.  ``queued -> running -> done|failed``;
#: ``interrupted`` marks jobs whose executor died (service shutdown or
#: crash) — terminal for this process, but resubmission re-enqueues.
JOB_STATUSES = ("queued", "running", "done", "failed", "interrupted")

#: Statuses that will never change again within this service process.
TERMINAL_STATUSES = ("done", "failed", "interrupted")

#: Request kinds the service executes (also the job-id namespace).
JOB_KINDS = ("run", "sweep", "exploration")

#: Job record layout version; bump when the persisted shape changes.
JOB_SCHEMA = 1


def job_id_for(kind: str, request: Mapping[str, Any]) -> str:
    """The deterministic id of a job: hash of its kind and request."""
    return "job-" + content_hash({"kind": kind, "request": dict(request)})[:16]


@dataclass
class JobRecord:
    """One job's full observable state (what ``GET /v1/jobs/{id}`` returns).

    Attributes:
        job_id: deterministic id (see :func:`job_id_for`).
        kind: ``run`` / ``sweep`` / ``exploration``.
        status: one of :data:`JOB_STATUSES`.
        request: the accepted request payload, verbatim.
        created_s / started_s / finished_s: wall-clock timestamps
            (``time.time()``); None until the transition happens.
        points_total: grid/budget size once known (0 until running).
        points_computed / points_cached / points_errors: progress
            counters fanned out from :class:`~repro.spec.runner.BatchProgress`.
        batches: progress batches observed so far.
        deadline_s: total wall-clock budget from submission; a job
            whose budget expires before (or while waiting for) the
            executor fails with a deadline error instead of running.
            None means no deadline.
        max_retries: how many times a transiently-failed execution
            re-enqueues (with backoff) before the failure is terminal.
        attempts: completed execution attempts so far (0 until the
            first one fails and the job is re-enqueued).
        error: the one-line failure message for ``failed`` jobs.
        result: the kind-specific completion summary (spec hashes, best
            point, ...); None until ``done``.
    """

    job_id: str
    kind: str
    status: str = "queued"
    request: Dict[str, Any] = field(default_factory=dict)
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    points_total: int = 0
    points_computed: int = 0
    points_cached: int = 0
    points_errors: int = 0
    batches: int = 0
    deadline_s: Optional[float] = None
    max_retries: int = 0
    attempts: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    def deadline_remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds of wall budget left (None when no deadline is set)."""
        if self.deadline_s is None:
            return None
        now = time.time() if now is None else now
        return self.created_s + self.deadline_s - now

    @property
    def terminal(self) -> bool:
        """True once the status will no longer change in this process."""
        return self.status in TERMINAL_STATUSES

    def to_record(self) -> Dict[str, Any]:
        """The plain-dict persisted/API form (one JSONL snapshot)."""
        record = asdict(self)
        record["schema"] = JOB_SCHEMA
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "JobRecord":
        """Rebuild from :meth:`to_record` output."""
        payload = dict(record)
        schema = payload.pop("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise ResultStoreError(
                f"job record schema {schema!r} is not supported "
                f"(expected {JOB_SCHEMA})"
            )
        for key in ("job_id", "kind", "status"):
            if key not in payload:
                raise ResultStoreError(f"job record is missing {key!r}")
        if payload["status"] not in JOB_STATUSES:
            raise ResultStoreError(
                f"job record has unknown status {payload['status']!r}"
            )
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in payload.items() if k in known})


class JobStore:
    """Append-only JSONL persistence for job snapshots, last-wins.

    Thread-safe (submissions land from HTTP handler threads while the
    executor thread updates progress).  Follows the result store's
    recovery contract: a torn final line is dropped and the file
    compacted; corruption anywhere earlier raises, because silently
    skipping snapshots would misreport job history.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = os.fspath(path) if path is not None else None
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        if self.path is not None and os.path.exists(self.path):
            self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as stream:
            lines = stream.readlines()
        loaded: Dict[str, JobRecord] = {}
        bad_tail = False
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = JobRecord.from_record(json.loads(line))
            except (json.JSONDecodeError, ResultStoreError, TypeError) as error:
                if lineno == len(lines):
                    bad_tail = True
                    break
                raise ResultStoreError(
                    f"{self.path}:{lineno}: corrupt job record: {error}"
                ) from error
            loaded[record.job_id] = record
        self._records = loaded
        if bad_tail:
            self._rewrite_locked()

    def _rewrite_locked(self) -> None:
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as stream:
            for record in self._records.values():
                stream.write(json.dumps(record.to_record()) + "\n")
        os.replace(tmp_path, self.path)

    def save(self, record: JobRecord) -> None:
        """Persist one snapshot (and update the in-memory last-wins map)."""
        with self._lock:
            self._records[record.job_id] = record
            if self.path is None:
                return
            with open(self.path, "a", encoding="utf-8") as stream:
                stream.write(json.dumps(record.to_record()) + "\n")
                stream.flush()
                os.fsync(stream.fileno())

    def compact(self) -> None:
        """Rewrite the file to one (latest) snapshot per job."""
        with self._lock:
            if self.path is not None:
                self._rewrite_locked()

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def records(self) -> List[JobRecord]:
        """Every job's latest snapshot, in first-seen order."""
        with self._lock:
            return list(self._records.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._records

    def mark_stale_interrupted(self) -> List[JobRecord]:
        """Mark jobs a dead process left ``queued``/``running`` as
        ``interrupted``; returns the records it changed.

        Called once at service startup: those jobs' executors no longer
        exist, so leaving them non-terminal would report progress that
        can never arrive.
        """
        changed = []
        for record in self.records():
            if record.status in ("queued", "running"):
                record.status = "interrupted"
                record.error = (
                    "service restarted while the job was in flight; "
                    "resubmit to recompute only the missing points"
                )
                record.finished_s = time.time()
                self.save(record)
                changed.append(record)
        return changed
