"""The HTTP surface of the simulation service (stdlib only).

Built on :class:`http.server.ThreadingHTTPServer`: one daemon thread per
connection for the cheap request/response endpoints, while the heavy
lifting stays on the service's single executor thread and its warm
worker pool.  Routes::

    POST /v1/runs            submit a single-run job
    POST /v1/sweeps          submit a sweep-grid job
    POST /v1/explorations    submit a budgeted-exploration job
    GET  /v1/jobs            list job records
    GET  /v1/jobs/{id}       one job's status + progress counters
    GET  /v1/jobs/{id}/events   chunked stream of progress lines
    GET  /v1/results         store queries (best / pareto / series / rows)
    GET  /healthz            liveness (is the process up?)
    GET  /readyz             readiness (can it execute jobs at full
                             capacity?  503 + failing checks when not;
                             the body also reports the degradation
                             ladder's current rungs)
    GET  /metrics            jobs, cache and pool statistics (JSON by
                             default; ``?format=prometheus`` serves the
                             text exposition format)
    GET  /v1/trace           the live span buffer as Chrome trace JSON

Error contract (the API-boundary satellite): any
:class:`~repro.errors.ReproError` raised while handling a request —
bad spec JSON, unknown component, malformed grid, invalid axis — maps
to **HTTP 400 with the same one-line message** the CLI prints on its
exit-2 path, as ``{"error": "..."}``.  Tracebacks never cross the wire;
a genuinely unexpected failure is a terse 500 with the exception type.

``GET /v1/jobs/{id}/events`` streams with ``Transfer-Encoding:
chunked``: one UTF-8 line per lifecycle transition or
:class:`~repro.spec.runner.BatchProgress` batch, flushed as produced,
ending when the job reaches a terminal status.  ``?since=N`` skips the
first N lines (reconnect support); ``?follow=0`` returns only what has
already happened.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlparse

from repro import obs
from repro.errors import ReproError, SpecError
from repro.serve.service import SimulationService

#: Largest accepted request body; a spec + grid is kilobytes, so
#: anything bigger is a client error, not a workload.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Default keep-alive interval for event streams (override per request
#: with ``?heartbeat=SECONDS``): quiet follows emit a marker line this
#: often so dead sockets surface as broken pipes, not parked threads.
_STREAM_HEARTBEAT_S = 15.0

#: POST collection -> job kind.
_COLLECTIONS = {
    "runs": "run",
    "sweeps": "sweep",
    "explorations": "exploration",
}

#: Prometheus text exposition content type (format version 0.0.4).
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _coarse_endpoint(path: str) -> str:
    """A low-cardinality endpoint label for request metrics.

    Job ids (and any other per-resource path segment) collapse to
    placeholders so the label set stays bounded no matter how many jobs
    a service sees: ``/v1/jobs/abc123/events`` -> ``/v1/jobs/{id}/events``.
    """
    parts = path.strip("/").split("/")
    if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "jobs":
        parts[2] = "{id}"
    return "/" + "/".join(parts) if parts != [""] else "/"


class ServeHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that owns a :class:`SimulationService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SimulationService):
        super().__init__(address, ServeHandler)
        self.service = service


class ServeHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`SimulationService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default; the job event streams are the observability
        # surface.  Subclass to re-enable stdlib request logging.
        pass

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        payload = (json.dumps(body, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise SpecError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise SpecError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise SpecError(f"request body is not valid JSON: {error}")

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        return parsed.path.rstrip("/") or "/", dict(parse_qsl(parsed.query))

    # -- request handling ------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._timed("POST", self._handle_post)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._timed("GET", self._handle_get)

    def _timed(self, method: str, handler: Any) -> None:
        """Run one request handler under per-endpoint latency metrics.

        Endpoint labels are coarse (:func:`_coarse_endpoint`), so the
        per-(method, endpoint) histogram family stays bounded.  The
        measured time covers the whole handler — for event streams that
        includes the follow, which is the honest request latency.
        """
        path, _ = self._route()
        endpoint = _coarse_endpoint(path)
        t0 = time.monotonic()
        try:
            handler()
        finally:
            obs.counter(
                "repro_http_requests_total",
                method=method, endpoint=endpoint,
            ).inc()
            obs.histogram(
                "repro_http_request_seconds",
                method=method, endpoint=endpoint,
            ).observe(time.monotonic() - t0)

    def _handle_post(self) -> None:
        path, _params = self._route()
        self.service.requests_served += 1
        try:
            parts = path.strip("/").split("/")
            if len(parts) == 2 and parts[0] == "v1" and \
                    parts[1] in _COLLECTIONS:
                record = self.service.submit(
                    _COLLECTIONS[parts[1]], self._read_body()
                )
                self._send_json(202, record.to_record())
                return
            self._send_error_json(404, f"no such endpoint: POST {path}")
        except ReproError as error:
            # The CLI's one-line exit-2 contract, over HTTP: client
            # errors are 400s carrying the message, never tracebacks.
            self._send_error_json(400, str(error))
        except BrokenPipeError:
            pass
        except Exception as error:
            self._send_error_json(500, f"internal error: "
                                       f"{type(error).__name__}")

    def _handle_get(self) -> None:
        path, params = self._route()
        self.service.requests_served += 1
        try:
            if path == "/healthz":
                self._send_json(200, self.service.healthz())
            elif path == "/readyz":
                body = self.service.readyz()
                self._send_json(200 if body["ready"] else 503, body)
            elif path == "/metrics":
                if params.get("format") == "prometheus":
                    self._send_text(
                        200,
                        self.service.metrics_prometheus(),
                        _PROMETHEUS_CONTENT_TYPE,
                    )
                else:
                    self._send_json(200, self.service.metrics())
            elif path == "/v1/trace":
                self._send_json(200, self.service.trace())
            elif path == "/v1/jobs":
                self._send_json(200, {
                    "jobs": [
                        r.to_record() for r in self.service.queue.records()
                    ],
                })
            elif path.startswith("/v1/jobs/"):
                self._job_route(path, params)
            elif path == "/v1/results":
                self._send_json(200, self.service.results_query(params))
            else:
                self._send_error_json(404, f"no such endpoint: GET {path}")
        except ReproError as error:
            self._send_error_json(400, str(error))
        except BrokenPipeError:
            pass
        except Exception as error:
            self._send_error_json(500, f"internal error: "
                                       f"{type(error).__name__}")

    def _job_route(self, path: str, params: Dict[str, str]) -> None:
        parts = path.strip("/").split("/")
        job_id = parts[2]
        record = self.service.queue.get(job_id)
        if record is None:
            self._send_error_json(404, f"no such job: {job_id}")
            return
        if len(parts) == 3:
            self._send_json(200, record.to_record())
            return
        if len(parts) == 4 and parts[3] == "events":
            self._stream_events(job_id, params)
            return
        self._send_error_json(404, f"no such endpoint: GET {path}")

    def _stream_events(self, job_id: str, params: Dict[str, str]) -> None:
        try:
            since = int(params.get("since", 0))
        except ValueError:
            raise SpecError("'since' must be an integer event index")
        follow = params.get("follow", "1").lower() not in ("0", "false", "no")
        try:
            timeout = float(params.get("timeout", 300.0))
        except ValueError:
            raise SpecError("'timeout' must be a number of seconds")
        try:
            heartbeat = float(params.get("heartbeat", _STREAM_HEARTBEAT_S))
        except ValueError:
            raise SpecError("'heartbeat' must be a number of seconds")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            # Heartbeat lines double as liveness probes: writing one to
            # a vanished client raises BrokenPipeError here, freeing the
            # thread instead of parking it until `timeout`.
            for line in self.service.queue.events(
                job_id, since=since, follow=follow, timeout=timeout,
                heartbeat=heartbeat,
            ):
                self._write_chunk(line + "\n")
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-stream; nothing to clean up — the
            # job keeps running and the event log keeps accumulating.
            self.close_connection = True

    def _write_chunk(self, text: str) -> None:
        data = text.encode("utf-8")
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()


def create_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    service: Optional[SimulationService] = None,
    **service_kwargs: Any,
) -> ServeHTTPServer:
    """Bind the API to ``host:port`` over a started service.

    Pass an existing :class:`SimulationService` to share it, or service
    keyword arguments (``store_path``, ``max_workers``, ``parallel``) to
    construct one.  ``port=0`` binds an ephemeral port (tests); read it
    back from ``server.server_address``.
    """
    if service is None:
        service = SimulationService(**service_kwargs)
    service.start()
    return ServeHTTPServer((host, port), service)


def serve_forever(server: ServeHTTPServer) -> None:
    """Run until SIGTERM/SIGINT, then shut down gracefully.

    Signals route through :func:`repro.spec.runner.install_signal_handlers`,
    whose hooks mark in-flight jobs ``interrupted`` and reap the warm
    pool before the process exits — the no-leaked-workers contract.
    """
    from repro.spec.runner import install_signal_handlers

    install_signal_handlers()
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.service.close()
        server.server_close()
