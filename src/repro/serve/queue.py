"""The service's job queue: FIFO execution with streamable progress.

:class:`JobQueue` owns the job lifecycle between the HTTP boundary and
the execution engine.  Submissions are **idempotent** (deterministic job
ids — see :mod:`repro.serve.jobs`): resubmitting a finished or in-flight
request returns the existing job; resubmitting a ``failed`` or
``interrupted`` one re-enqueues it.

Jobs execute **one at a time, in submission order**, on a single
executor thread.  That is a deliberate design point, not a limitation:

* *dedupe* — concurrent clients submitting overlapping grids against
  the shared result store each compute only the points no earlier job
  has computed, because every job sees the store state its predecessors
  left (two truly simultaneous sweeps could otherwise both compute the
  overlap);
* *fairness* — FIFO over whole jobs; within a job the warm-worker pool
  provides the parallelism, so a small job queued behind a large one
  waits bounded time instead of starving under interleaved scheduling;
* *safety* — the JSONL result store is written from one thread only.

Every job carries an append-only **event log** (one line per lifecycle
transition or :class:`~repro.spec.runner.BatchProgress` batch); readers
(``GET /v1/jobs/{id}/events``) follow it with a condition variable, so
streaming costs no polling.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro import obs
from repro.serve.jobs import JobRecord, JobStore, job_id_for

#: How long an executor thread sleeps between stop-flag checks while
#: the queue is empty.
_IDLE_WAIT_S = 0.1

#: Upper bound on one event-follower condition wait: the stream
#: re-checks shutdown and its deadline at least this often, so a
#: follower never outlives the queue by more than a beat.
_FOLLOW_POLL_S = 0.25

#: The keep-alive marker :meth:`JobQueue.events` yields when a
#: ``heartbeat`` interval passes with no real event.  Starts with a
#: colon so stream consumers can filter it like an SSE comment.
HEARTBEAT_LINE = ": heartbeat"


class JobQueue:
    """FIFO job execution over a :class:`JobStore`, with event streams.

    Args:
        store: persistence for job snapshots (in-memory when pathless).
        execute: the callback that actually runs one job (the service's
            execution engine).  It is responsible for driving the
            record through ``running`` to a terminal status via
            :meth:`transition` / :meth:`emit`; an escaped exception
            marks the job ``failed`` defensively.
    """

    def __init__(
        self,
        store: Optional[JobStore] = None,
        execute: Optional[Callable[[JobRecord], None]] = None,
    ):
        self.store = store if store is not None else JobStore()
        self._execute = execute
        self._cond = threading.Condition()
        self._pending: "deque[str]" = deque()
        #: Jobs re-enqueued with a backoff delay: job_id -> monotonic
        #: due time.  The executor promotes due entries before it picks
        #: the next pending job.
        self._delayed: Dict[str, float] = {}
        self._events: Dict[str, List[str]] = {}
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        #: The job currently on the executor thread, if any.
        self._active: Optional[str] = None
        #: Last status seen per job, so :meth:`transition` counts real
        #: status changes rather than every persisted snapshot.
        self._last_status: Dict[str, str] = {}
        # A restarted service inherits the previous process's job file:
        # anything still in flight there is dead by definition.
        for record in self.store.mark_stale_interrupted():
            self._events[record.job_id] = [
                f"[{record.job_id}] interrupted: {record.error}"
            ]

    # -- submission ------------------------------------------------------

    def submit(
        self,
        kind: str,
        request: Mapping[str, Any],
        deadline_s: Optional[float] = None,
        max_retries: int = 0,
    ) -> Tuple[JobRecord, bool]:
        """Enqueue (or re-address) a job; returns ``(record, enqueued)``.

        ``enqueued`` is False when the deterministic id matched a job
        that is already queued, running, or done — the idempotent path.
        ``failed``/``interrupted`` jobs re-enqueue with reset counters.
        ``deadline_s``/``max_retries`` set the fresh record's
        supervision fields (ignored on the idempotent path — the
        original submission's policy stands).
        """
        job_id = job_id_for(kind, request)
        with self._cond:
            if self._stopping:
                from repro.errors import ReproError

                raise ReproError("service is shutting down")
            existing = self.store.get(job_id)
            if existing is not None and existing.status in (
                "queued", "running", "done",
            ):
                obs.counter(
                    "repro_jobs_resubmit_hits_total", kind=kind
                ).inc()
                return existing, False
            record = JobRecord(
                job_id=job_id,
                kind=kind,
                request=dict(request),
                deadline_s=deadline_s,
                max_retries=max_retries,
            )
            self._events[job_id] = []
            self.store.save(record)
            self._append_event(
                record, f"queued ({kind}, position {len(self._pending) + 1})"
            )
            self._pending.append(job_id)
            obs.counter("repro_jobs_submitted_total", kind=kind).inc()
            obs.gauge("repro_jobs_queue_depth").set(len(self._pending))
            self._cond.notify_all()
        return record, True

    # -- state transitions (called by the execution engine) --------------

    def transition(self, record: JobRecord) -> None:
        """Persist a record snapshot and wake event-stream readers.

        A *status change* (as opposed to a progress-counter update
        persisted under the same status) also bumps the
        ``repro_jobs_transitions_total{status=...}`` counter.
        """
        self.store.save(record)
        with self._cond:
            if self._last_status.get(record.job_id) != record.status:
                self._last_status[record.job_id] = record.status
                obs.counter(
                    "repro_jobs_transitions_total", status=record.status
                ).inc()
            self._cond.notify_all()

    def emit(self, record: JobRecord, line: str) -> None:
        """Append one event line to the job's stream."""
        with self._cond:
            self._append_event(record, line)
            self._cond.notify_all()

    def requeue(self, record: JobRecord, delay_s: float = 0.0) -> None:
        """Put a job back in line after ``delay_s`` seconds (job retry).

        Called by the execution engine when an attempt failed
        transiently and the record's retry budget allows another go:
        the record goes back to ``queued`` (persisted), and the
        executor picks it up again once the backoff delay has passed.
        """
        record.status = "queued"
        record.started_s = None
        self.store.save(record)
        with self._cond:
            self._last_status[record.job_id] = "queued"
            if delay_s > 0:
                self._delayed[record.job_id] = time.monotonic() + delay_s
            elif record.job_id not in self._pending:
                self._pending.append(record.job_id)
            obs.counter("repro_jobs_retries_total", kind=record.kind).inc()
            self._cond.notify_all()

    def _promote_due_locked(self) -> float:
        """Move due delayed jobs into the pending deque (under the
        condition lock); returns seconds until the next one is due
        (``_IDLE_WAIT_S`` when none are scheduled)."""
        now = time.monotonic()
        wait = _IDLE_WAIT_S
        for job_id, due in sorted(self._delayed.items(), key=lambda kv: kv[1]):
            if due <= now:
                del self._delayed[job_id]
                if job_id not in self._pending:
                    self._pending.append(job_id)
            else:
                wait = min(wait, due - now)
                break
        return wait

    def _append_event(self, record: JobRecord, line: str) -> None:
        self._events.setdefault(record.job_id, []).append(
            f"[{record.job_id}] {line}"
        )

    # -- lookup ----------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self.store.get(job_id)

    def records(self) -> List[JobRecord]:
        return self.store.records()

    def counts(self) -> Dict[str, int]:
        """Jobs per status (every status present, zero or not)."""
        from repro.serve.jobs import JOB_STATUSES

        counts = {status: 0 for status in JOB_STATUSES}
        for record in self.records():
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def stats(self) -> Dict[str, Any]:
        """One consistent snapshot of queue state and progress counters.

        The whole read happens under the queue condition lock — the same
        lock :meth:`submit`, :meth:`transition` and the service's
        progress hook mutate under — so the returned status counts,
        queue depth, and summed point counters always describe a single
        instant (a job mid-update can never show, say, its ``computed``
        increment without the matching ``batches`` one).  This is the
        consistency guarantee ``GET /metrics`` documents.
        """
        with self._cond:
            records = self.records()
            counts = self.counts()
            computed = sum(r.points_computed for r in records)
            cached = sum(r.points_cached for r in records)
            return {
                "jobs": counts,
                "queue_depth": len(self._pending),
                "delayed": len(self._delayed),
                "active": self._active,
                "points": {
                    "computed": computed,
                    "cached": cached,
                    "errors": sum(r.points_errors for r in records),
                },
            }

    def events(
        self,
        job_id: str,
        since: int = 0,
        follow: bool = True,
        timeout: float = 300.0,
        heartbeat: Optional[float] = None,
    ) -> Iterator[str]:
        """Yield a job's event lines from index ``since``.

        With ``follow`` (the default) the iterator blocks for new lines
        until the job reaches a terminal status, ``timeout`` seconds
        pass without one, or the queue starts shutting down — the body
        of the streaming endpoint.  Every wait is bounded (short
        condition waits against a monotonic deadline), so a follower of
        a quiet job can never pin a server thread across SIGTERM.

        ``heartbeat`` (seconds) additionally yields
        :data:`HEARTBEAT_LINE` whenever that long passes without a real
        event — the HTTP layer writes it through to the socket, turning
        silently-vanished clients into prompt broken pipes instead of
        threads parked until ``timeout``.
        """
        index = max(0, since)
        deadline = time.monotonic() + timeout
        last_line_s = time.monotonic()
        while True:
            fresh: List[str] = []
            send_heartbeat = False
            with self._cond:
                lines = self._events.get(job_id, [])
                fresh = lines[index:]
                index = len(lines)
                record = self.store.get(job_id)
                done = record is None or record.terminal
                if not fresh and not done and follow:
                    if self._stopping or time.monotonic() >= deadline:
                        return
                    if (heartbeat is not None
                            and time.monotonic() - last_line_s >= heartbeat):
                        send_heartbeat = True
                    else:
                        # Wake early for shutdown checks even if nothing
                        # notifies; notify_all() still wakes us sooner.
                        self._cond.wait(_FOLLOW_POLL_S)
                        continue
            if send_heartbeat:
                last_line_s = time.monotonic()
                yield HEARTBEAT_LINE
                continue
            for line in fresh:
                last_line_s = time.monotonic()
                yield line
            if done or not follow:
                return

    # -- the executor thread ---------------------------------------------

    def start(self) -> None:
        """Start the executor thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stopping = False
            self._thread = threading.Thread(
                target=self._work, name="repro-serve-executor", daemon=True
            )
            self._thread.start()

    def _work(self) -> None:
        while True:
            with self._cond:
                wait = self._promote_due_locked()
                while not self._pending and not self._stopping:
                    self._cond.wait(wait)
                    wait = self._promote_due_locked()
                if self._stopping:
                    return
                job_id = self._pending.popleft()
                self._active = job_id
                obs.gauge("repro_jobs_queue_depth").set(len(self._pending))
            record = self.store.get(job_id)
            if record is not None:
                obs.histogram("repro_jobs_queue_wait_seconds").observe(
                    max(0.0, time.time() - record.created_s)
                )
            try:
                if record is not None and self._execute is not None:
                    self._execute(record)
            except Exception as error:  # the engine should have caught it
                if record is not None:
                    import time as _time

                    record.status = "failed"
                    record.error = f"{type(error).__name__}: {error}"
                    record.finished_s = _time.time()
                    self.emit(record, f"failed: {record.error}")
                    self.transition(record)
            finally:
                with self._cond:
                    self._active = None
                    self._cond.notify_all()

    def stop(self, timeout: float = 10.0) -> List[JobRecord]:
        """Stop executing and mark in-flight jobs ``interrupted``.

        The executor thread is asked to stop, given ``timeout`` seconds
        to finish the active job, and every job still non-terminal —
        queued, or running past the grace period — is marked
        ``interrupted`` and persisted, so a killed service never leaves
        jobs ``running`` forever.  Returns the interrupted records.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout)
        interrupted = []
        import time as _time

        for record in self.records():
            if record.status in ("queued", "running"):
                record.status = "interrupted"
                record.error = "service shut down while the job was in flight"
                record.finished_s = _time.time()
                self.store.save(record)
                with self._cond:
                    self._append_event(record, "interrupted: service shutdown")
                    self._cond.notify_all()
                interrupted.append(record)
        return interrupted
