"""A pure-stdlib client for the simulation service.

Thin ``urllib`` wrapper used by the example client, the load-test
benchmark and the test suite — and copy-paste-able into any environment
that has Python and no dependencies::

    from repro.serve.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8000")
    job = client.submit_sweep({
        "preset": "fig7",
        "grid": {"capacitance": [22e-6, 47e-6], "frequency": [4.7, 9.4]},
    })
    for line in client.events(job["job_id"]):
        print(line)
    print(client.results(best="energy_total"))

Server-side framework errors surface as :class:`ServiceError` carrying
the server's one-line message and HTTP status — the same text the CLI
would have printed locally.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

from repro.errors import ReproError


class ServiceError(ReproError):
    """A request the service rejected (or could not be delivered).

    Attributes:
        status: the HTTP status code, or None for transport failures.
    """

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to a ``repro serve`` instance over HTTP.

    Connection failures (``URLError``: refused, reset, DNS) retry with
    capped exponential backoff + jitter before surfacing as
    :class:`ServiceError` — safe for every method here, because GETs
    are idempotent and submissions are content-hash idempotent (a
    retried POST re-addresses the same job).  HTTP *responses* (4xx,
    5xx) never retry: the server spoke, the answer stands.

    Args:
        base_url: e.g. ``http://127.0.0.1:8000`` (trailing slash ok).
        timeout: per-request socket timeout in seconds (streaming
            endpoints pass their own).
        retries: connection-error retry budget per request (0 restores
            the old fail-on-first-error behavior).
        backoff_s: base backoff; attempt ``k`` waits
            ``min(backoff_cap_s, backoff_s * 2**k)`` plus jitter.
    """

    #: Upper bound on one connection-retry backoff sleep.
    backoff_cap_s = 2.0

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.2,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ):
        url = self.base_url + path
        if params:
            url += "?" + urlencode(params)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(dict(body)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(self.retries + 1):
            request = Request(url, data=data, headers=headers, method=method)
            try:
                return urlopen(request, timeout=timeout or self.timeout)
            except HTTPError as error:
                detail = error.read().decode("utf-8", "replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except json.JSONDecodeError:
                    pass
                raise ServiceError(detail.strip() or f"HTTP {error.code}",
                                   status=error.code) from None
            except URLError as error:
                if attempt >= self.retries:
                    raise ServiceError(
                        f"cannot reach {self.base_url}: {error.reason}"
                        + (f" (after {attempt + 1} attempts)"
                           if attempt else "")
                    ) from None
                delay = min(self.backoff_cap_s, self.backoff_s * 2 ** attempt)
                time.sleep(delay * (1.0 + 0.25 * random.random()))

    def _json(self, *args: Any, **kwargs: Any) -> Dict[str, Any]:
        with self._request(*args, **kwargs) as response:
            return json.loads(response.read())

    # -- submission ------------------------------------------------------

    def submit_run(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """POST /v1/runs; returns the job record."""
        return self._json("POST", "/v1/runs", body=request)

    def submit_sweep(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """POST /v1/sweeps; returns the job record."""
        return self._json("POST", "/v1/sweeps", body=request)

    def submit_exploration(
        self, request: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """POST /v1/explorations; returns the job record."""
        return self._json("POST", "/v1/explorations", body=request)

    # -- status + results ------------------------------------------------

    def job(self, job_id: str) -> Dict[str, Any]:
        """GET /v1/jobs/{id}: the job's current record."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """GET /v1/jobs: every job record."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def wait(
        self, job_id: str, timeout: float = 120.0, poll_s: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed", "interrupted"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['status']!r} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_s)

    def events(
        self,
        job_id: str,
        since: int = 0,
        follow: bool = True,
        timeout: float = 300.0,
    ) -> Iterator[str]:
        """GET /v1/jobs/{id}/events: yield progress lines as they land.

        ``http.client`` decodes the chunked framing transparently, so
        each yielded value is one complete event line.
        """
        params = {"since": since, "follow": int(follow), "timeout": timeout}
        with self._request(
            "GET", f"/v1/jobs/{job_id}/events", params=params,
            timeout=timeout + 10.0,
        ) as response:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line:
                    yield line

    def results(self, **params: Any) -> Dict[str, Any]:
        """GET /v1/results with the given query parameters.

        ``client.results(best="energy_total")``,
        ``client.results(pareto="energy_total,availability")``,
        ``client.results(series="frequency,energy_total", name=...)``.
        """
        return self._json("GET", "/v1/results", params=params or None)

    def metrics(self) -> Dict[str, Any]:
        """GET /metrics."""
        return self._json("GET", "/metrics")

    def healthz(self) -> Dict[str, Any]:
        """GET /healthz."""
        return self._json("GET", "/healthz")
