"""The simulation service: validated requests in, store-backed jobs out.

:class:`SimulationService` is the engine behind the HTTP API (and
directly usable in-process, which is how the tests and benchmarks drive
it).  It owns the long-lived resources one process shares across every
client:

* one :class:`~repro.results.store.ResultStore` — the compute cache.
  Every job runs with ``resume=True`` against it, so overlapping
  requests from independent clients compute each grid point exactly
  once and all later requests are cache hits;
* one :class:`~repro.spec.runner.WarmPool` — the worker processes.
  Jobs ship their base spec per batch (see ``WarmPool.run``), so the
  same warm workers serve every scenario the service sees;
* one :class:`~repro.serve.queue.JobQueue` — FIFO execution with
  persisted status and streamable progress.

Validation happens **at submission** on the caller's thread: a bad spec
dict, unknown component, malformed grid or invalid axis raises the same
:class:`~repro.errors.ReproError` subclasses the CLI turns into one-line
exit-2 messages — the HTTP layer maps them to 400 responses.  Execution
failures (an infeasible corner mid-sweep) never fail the *job*; they pin
error rows exactly as sweeps always have.
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Dict, List, Mapping, Optional

from repro import degrade, obs
from repro.analysis.crossover import series_from_store
from repro.analysis.pareto import pareto_from_store
from repro.errors import ReproError, SpecError
from repro.explore import (
    ExplorationDriver,
    Objective,
    SearchSpace,
    available_optimizers,
)
from repro.results.store import ResultStore
from repro.serve.jobs import JobRecord, JobStore
from repro.serve.queue import JobQueue
from repro.spec import ScenarioSpec, SweepRunner, preset, preset_names
from repro.spec.runner import (
    BatchProgress,
    SupervisionPolicy,
    WarmPool,
    pool_gate_status,
    register_shutdown_hook,
    unregister_shutdown_hook,
)

#: Job-retry backoff: ``min(cap, base * 2**(attempt-1))`` seconds plus
#: up to 25% jitter, clamped to the job's remaining deadline budget.
_JOB_RETRY_BASE_S = 0.25
_JOB_RETRY_CAP_S = 5.0

#: Event cap for the service's always-on trace window: ``GET /v1/trace``
#: returns the most recent window of spans, old events evicted beyond it.
SERVICE_TRACE_EVENT_LIMIT = 100_000


def _require_mapping(payload: Any, what: str) -> Dict[str, Any]:
    if not isinstance(payload, Mapping):
        raise SpecError(f"{what} must be a JSON object, got "
                        f"{type(payload).__name__}")
    return dict(payload)


class SimulationService:
    """Everything ``repro serve`` does, minus the HTTP framing.

    Args:
        store_path: the shared result store (None: in-memory — the
            cache then lives and dies with the process).  A
            ``.colstore`` suffix selects the sharded columnar backend;
            anything else is JSONL.
        store_backend: override backend selection (``"jsonl"`` or
            ``"columnar"``) regardless of the path suffix.
        jobs_path: job-status persistence; defaults to
            ``<store_path>.jobs`` when a store path is given.
        max_workers: warm-pool width (defaults to the CPU count).
        parallel: fan grid points across the pool; ``False`` runs every
            point on the executor thread (sandboxes, deterministic tests).
        default_deadline_s: wall-clock budget applied to jobs whose
            request does not set ``deadline_s`` (None: no deadline).
        default_max_retries: job-retry budget applied to jobs whose
            request does not set ``max_retries``.
    """

    def __init__(
        self,
        store_path: Optional[str] = None,
        jobs_path: Optional[str] = None,
        max_workers: Optional[int] = None,
        parallel: bool = True,
        store_backend: Optional[str] = None,
        default_deadline_s: Optional[float] = None,
        default_max_retries: int = 0,
    ):
        if jobs_path is None and store_path is not None:
            jobs_path = f"{store_path}.jobs"
        self.default_deadline_s = default_deadline_s
        self.default_max_retries = default_max_retries
        self.store = ResultStore(store_path, backend=store_backend)
        self.parallel = parallel
        self.max_workers = max_workers
        self.pool = WarmPool(max_workers=max_workers) if parallel else None
        self.queue = JobQueue(JobStore(jobs_path), execute=self._execute_job)
        self.started_s = time.time()
        self.requests_served = 0
        self._closed = False
        # The process-teardown contract: SIGTERM/SIGINT/atexit reach
        # close(), which marks in-flight jobs interrupted and reaps the
        # worker pool — a killed service never leaks either.
        self._shutdown_hook = register_shutdown_hook(self.close)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "SimulationService":
        """Start executing queued jobs; returns self for chaining.

        Also turns on the bounded span-trace window backing
        ``GET /v1/trace`` (unless tracing was already enabled by the
        embedding process, whose window is then left alone).
        """
        self._owns_tracing = not obs.tracing_enabled()
        if self._owns_tracing:
            obs.enable_tracing(limit=SERVICE_TRACE_EVENT_LIMIT)
        self.queue.start()
        return self

    def close(self) -> None:
        """Stop the executor, mark in-flight jobs interrupted, reap the
        pool, and compact the job file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if getattr(self, "_owns_tracing", False):
            obs.disable_tracing()
        unregister_shutdown_hook(self._shutdown_hook)
        self.queue.stop()
        if self.pool is not None:
            self.pool.close()
        self.queue.store.compact()

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request validation + submission ---------------------------------

    def submit(self, kind: str, payload: Any) -> JobRecord:
        """Validate and enqueue one request; raises ``ReproError`` on a
        malformed request (the HTTP 400 path)."""
        payload = _require_mapping(payload, f"{kind} request")
        if kind == "run":
            self._validate_run(payload)
        elif kind == "sweep":
            self._validate_sweep(payload)
        elif kind == "exploration":
            self._validate_exploration(payload)
        else:
            raise SpecError(
                f"unknown job kind {kind!r}; expected run, sweep, "
                "or exploration"
            )
        deadline_s, max_retries = self._supervision(payload)
        record, _ = self.queue.submit(
            kind, payload, deadline_s=deadline_s, max_retries=max_retries
        )
        return record

    def _supervision(
        self, payload: Mapping[str, Any]
    ) -> "tuple[Optional[float], int]":
        """The job's validated ``(deadline_s, max_retries)``, falling
        back to the service defaults for unset keys."""
        deadline_s = payload.get("deadline_s", self.default_deadline_s)
        if deadline_s is not None:
            if isinstance(deadline_s, bool) or not isinstance(
                deadline_s, (int, float)
            ) or deadline_s <= 0:
                raise SpecError(
                    "'deadline_s' must be a positive number of seconds"
                )
            deadline_s = float(deadline_s)
        max_retries = payload.get("max_retries", self.default_max_retries)
        if isinstance(max_retries, bool) or not isinstance(max_retries, int) \
                or max_retries < 0:
            raise SpecError("'max_retries' must be a non-negative integer")
        return deadline_s, max_retries

    def _base_spec(self, payload: Mapping[str, Any]) -> ScenarioSpec:
        """The request's base scenario: a full spec dict or a preset."""
        if ("spec" in payload) == ("preset" in payload):
            raise SpecError(
                "request needs exactly one of 'spec' (a ScenarioSpec "
                "object) or 'preset' (one of: "
                + ", ".join(preset_names()) + ")"
            )
        if "spec" in payload:
            base = ScenarioSpec.from_dict(
                _require_mapping(payload["spec"], "'spec'")
            )
        else:
            base = preset(payload["preset"])
        overrides = payload.get("overrides")
        if overrides is not None:
            base = base.with_overrides(
                _require_mapping(overrides, "'overrides'")
            )
        return base

    def _traces(self, payload: Mapping[str, Any]) -> List[str]:
        traces = payload.get("traces", [])
        if not isinstance(traces, (list, tuple)) or not all(
            isinstance(name, str) for name in traces
        ):
            raise SpecError("'traces' must be a list of probe names")
        return list(traces)

    def _batch_size(self, payload: Mapping[str, Any]) -> int:
        """The job's batched-kernel width: 0 = auto, 1 = per-point."""
        size = payload.get("batch_size", 0)
        if not isinstance(size, int) or isinstance(size, bool) or size < 0:
            raise SpecError("'batch_size' must be a non-negative integer "
                            "(0 = auto, 1 = per-point execution)")
        return size

    def _validate_run(self, payload: Mapping[str, Any]) -> None:
        self._base_spec(payload)
        self._traces(payload)
        self._supervision(payload)

    def _sweep_runner(self, payload: Mapping[str, Any]) -> SweepRunner:
        base = self._base_spec(payload)
        grid = _require_mapping(payload.get("grid"), "'grid'")
        if not grid:
            raise SpecError("'grid' must map at least one override key "
                            "to a list of values")
        # SweepRunner validates keys/values eagerly (unknown knobs,
        # empty value lists, ambiguous keys) — exactly the errors the
        # API must reject at submission time.
        return SweepRunner(base, grid, max_workers=self.max_workers)

    def _validate_sweep(self, payload: Mapping[str, Any]) -> None:
        self._sweep_runner(payload)
        self._traces(payload)
        self._batch_size(payload)
        self._supervision(payload)

    def _explore_driver(
        self,
        payload: Mapping[str, Any],
        record: Optional[JobRecord] = None,
    ) -> ExplorationDriver:
        base = self._base_spec(payload)
        space_payload = _require_mapping(payload.get("space"), "'space'")
        if "axes" not in space_payload:
            # API shorthand: {"capacitance": {"kind": "log", ...}} maps
            # each key to a named axis (the canonical {"axes": [...]}
            # form is accepted verbatim).
            space_payload = {"axes": [
                dict(_require_mapping(axis, f"axis {name!r}"), name=name)
                for name, axis in space_payload.items()
            ]}
        if not space_payload.get("axes"):
            raise SpecError("'space' must define at least one axis")
        space = SearchSpace.from_dict(space_payload)
        objectives = payload.get("objectives", ["completion_time"])
        if isinstance(objectives, str):
            objectives = [objectives]
        if not isinstance(objectives, (list, tuple)) or not objectives:
            raise SpecError("'objectives' must be a non-empty list of "
                            "'metric[:min|max]' strings")
        require = payload.get("require")
        parsed = [
            Objective.parse(text, require=require) if isinstance(text, str)
            else Objective.from_dict(_require_mapping(text, "objective"))
            for text in objectives
        ]
        optimizer = payload.get("optimizer", "successive-halving")
        if optimizer not in available_optimizers():
            raise SpecError(
                f"unknown optimizer {optimizer!r}; available: "
                + ", ".join(available_optimizers())
            )
        budget = payload.get("budget")
        if not isinstance(budget, int) or isinstance(budget, bool) \
                or budget <= 0:
            raise SpecError("'budget' must be a positive integer "
                            "(total evaluation count)")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SpecError("'seed' must be an integer")
        return ExplorationDriver(
            base,
            space,
            parsed,
            optimizer=optimizer,
            optimizer_params=dict(payload.get("optimizer_params") or {}),
            store=self.store if record is not None else None,
            resume=True,
            parallel=self.parallel,
            max_workers=self.max_workers,
            seed=seed,
            progress=self._progress_hook(record) if record else None,
            pool=self.pool,
            batch_size=self._batch_size(payload),
        )

    def _validate_exploration(self, payload: Mapping[str, Any]) -> None:
        self._explore_driver(payload)
        self._supervision(payload)

    # -- execution (runs on the queue's executor thread) -----------------

    def _progress_hook(self, record: JobRecord):
        def hook(event: BatchProgress) -> None:
            # Counter mutation happens under the queue condition lock
            # (reentrant), the same lock JobQueue.stats() snapshots
            # under — /metrics can never observe a half-applied batch.
            with self.queue._cond:
                record.batches = event.batch
                record.points_computed += event.computed
                record.points_cached += event.cached
                record.points_errors += event.errors
                record.points_total = max(record.points_total, event.total)
            self.queue.emit(record, event.describe())
            self.queue.transition(record)

        return hook

    def _job_policy(self, record: JobRecord) -> Optional[SupervisionPolicy]:
        """The task-level supervision this job runs under (None: the
        exact historical unsupervised path).

        The job's remaining wall budget becomes the per-attempt task
        deadline (so a hung worker is reaped before the job's clock
        runs out) and the job's ``max_retries`` doubles as the
        per-payload retry budget for transient worker crashes.
        """
        remaining = record.deadline_remaining()
        if remaining is None and record.max_retries <= 0:
            return None
        return SupervisionPolicy(
            deadline_s=max(0.001, remaining) if remaining is not None
            else None,
            max_retries=record.max_retries,
        )

    def _fail_deadline(self, record: JobRecord) -> None:
        record.status = "failed"
        record.error = (
            f"deadline of {record.deadline_s:g}s exceeded before execution"
        )
        record.finished_s = time.time()
        obs.counter(
            "repro_jobs_deadline_exceeded_total", kind=record.kind
        ).inc()
        obs.instant("job.deadline_exceeded", job_id=record.job_id)
        self.queue.emit(record, f"failed: {record.error}")
        self.queue.transition(record)

    def _execute_job(self, record: JobRecord) -> None:
        remaining = record.deadline_remaining()
        if remaining is not None and remaining <= 0:
            # The budget ran out while the job waited in the queue
            # (or between retry attempts): fail without running.
            self._fail_deadline(record)
            return
        record.status = "running"
        record.started_s = time.time()
        self.queue.emit(record, f"running ({record.kind})")
        self.queue.transition(record)
        policy = self._job_policy(record)
        retry_delay: Optional[float] = None
        with obs.span("job.run", kind=record.kind) as jspan:
            if self.pool is not None:
                # Jobs execute one at a time, so the shared pool can
                # carry this job's policy for paths that do not thread
                # it explicitly (exploration drivers).
                self.pool.policy = policy
            try:
                if record.kind == "run":
                    record.result = self._run_job(record, policy)
                elif record.kind == "sweep":
                    record.result = self._sweep_job(record, policy)
                else:
                    record.result = self._exploration_job(record)
                record.status = "done"
                record.finished_s = time.time()
                self.queue.emit(
                    record,
                    f"done: {record.points_computed} computed, "
                    f"{record.points_cached} cached, "
                    f"{record.points_errors} error(s)",
                )
            except Exception as error:
                # Defensive: submission already validated the request, so
                # this is an unexpected engine failure, not a client error
                # — possibly transient, which is what the job's retry
                # budget is for.
                record.attempts += 1
                record.error = f"{type(error).__name__}: {error}"
                remaining = record.deadline_remaining()
                if record.attempts <= record.max_retries and (
                    remaining is None or remaining > 0
                ):
                    retry_delay = min(
                        _JOB_RETRY_CAP_S,
                        _JOB_RETRY_BASE_S * 2 ** (record.attempts - 1),
                    ) * (1.0 + 0.25 * random.random())
                    if remaining is not None:
                        retry_delay = min(retry_delay, remaining)
                else:
                    record.status = "failed"
                    record.finished_s = time.time()
                    self.queue.emit(record, f"failed: {record.error}")
            finally:
                if self.pool is not None:
                    self.pool.policy = None
            jspan.annotate(
                status="retrying" if retry_delay is not None
                else record.status
            )
        if retry_delay is not None:
            self.queue.emit(
                record,
                f"attempt {record.attempts} failed ({record.error}); "
                f"retrying in {retry_delay:.2f}s",
            )
            self.queue.requeue(record, retry_delay)
            return
        obs.histogram(
            "repro_jobs_run_seconds", kind=record.kind
        ).observe(max(0.0, record.finished_s - record.started_s))
        self.queue.transition(record)

    def _run_job(
        self,
        record: JobRecord,
        policy: Optional[SupervisionPolicy] = None,
    ) -> Dict[str, Any]:
        # A single run is a one-point sweep: same store dedupe, same
        # resume semantics, same worker path.
        base = self._base_spec(record.request)
        runner = SweepRunner(base, {}, max_workers=self.max_workers)
        record.points_total = 1
        sweep = runner.run(
            parallel=self.parallel,
            store=self.store,
            resume=True,
            capture_traces=self._traces(record.request),
            progress=self._progress_hook(record),
            pool=self.pool,
            policy=policy,
        )
        point = sweep.points[0]
        return {
            "spec_hash": point.spec_hash,
            "name": point.name,
            "metrics": dict(point.metrics),
        }

    def _sweep_job(
        self,
        record: JobRecord,
        policy: Optional[SupervisionPolicy] = None,
    ) -> Dict[str, Any]:
        runner = self._sweep_runner(record.request)
        record.points_total = len(runner)
        sweep = runner.run(
            parallel=self.parallel,
            store=self.store,
            resume=True,
            capture_traces=self._traces(record.request),
            progress=self._progress_hook(record),
            pool=self.pool,
            batch_size=self._batch_size(record.request),
            policy=policy,
        )
        return {
            "points": len(sweep),
            "computed": sweep.computed,
            "cached": sweep.cached,
            "errors": sum(1 for p in sweep if p.error is not None),
            "grid_keys": list(sweep.grid_keys),
            "spec_hashes": list(runner.hashes),
        }

    def _exploration_job(self, record: JobRecord) -> Dict[str, Any]:
        driver = self._explore_driver(record.request, record)
        outcome = driver.run(budget=record.request["budget"])
        best = None
        if outcome.best is not None:
            objective = driver.objectives[0]
            best = {
                "overrides": dict(outcome.best.candidate.overrides),
                "objective": objective.describe(),
                "value": objective.value(outcome.best.result),
                "spec_hash": outcome.best.result.spec_hash,
            }
        return {
            "evaluations": len(outcome),
            "computed": outcome.computed,
            "computed_full": outcome.computed_full,
            "cached": outcome.cached,
            "errors": outcome.errors,
            "batches": outcome.batches,
            "best": best,
            "frontier": [
                dict(e.candidate.overrides) for e in outcome.frontier
            ],
        }

    # -- queries (served on HTTP handler threads) ------------------------

    def _store_view(self) -> ResultStore:
        """A consistent point-in-time snapshot of the shared store.

        ``ResultStore.results()`` materialises the row list atomically
        (single C-level dict-view copy under the GIL), so reads never
        race the executor thread's inserts; queries then run against a
        detached in-memory view.
        """
        view = ResultStore()
        for result in self.store.results():
            view._results[result.spec_hash] = result
        return view

    def results_query(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """The ``GET /v1/results`` body for one query-parameter set.

        Supported parameters: ``best=<metric>`` (+``maximize``),
        ``pareto=<cost>,<benefit>``, ``series=<x>,<y>`` (+``name``
        filter), ``limit=<n>`` raw rows.  Defaults to a store summary.
        """
        view = self._store_view()
        body: Dict[str, Any] = {
            "rows": len(view),
            "failed": sum(1 for r in view if not r.ok),
            "columns": view.columns(),
        }
        name = params.get("name")
        if params.get("best"):
            metric = params["best"]
            best = view.best(
                metric, minimize=not _truthy(params.get("maximize"))
            )
            body["best"] = {
                "metric": metric,
                "maximize": _truthy(params.get("maximize")),
                "name": best.name,
                "overrides": dict(best.overrides),
                "value": best[metric],
                "spec_hash": best.spec_hash,
            }
        if params.get("pareto"):
            cost, benefit = _pair(params["pareto"], "pareto")
            frontier = pareto_from_store(view, cost, benefit)
            body["pareto"] = [
                {
                    "name": r.name,
                    "overrides": dict(r.overrides),
                    cost: r[cost],
                    benefit: r[benefit],
                }
                for r in frontier
            ]
        if params.get("series"):
            x, y = _pair(params["series"], "series")
            filters = {"name": name} if name else {}
            xs, ys, _rows = series_from_store(view, x, y, **filters)
            body["series"] = {"x": x, "y": y, "xs": xs, "ys": ys}
        if params.get("limit"):
            try:
                limit = int(params["limit"])
            except (TypeError, ValueError):
                raise SpecError("'limit' must be an integer")
            rows = view.results()
            if name:
                rows = [r for r in rows if r.name == name]
            body["results"] = [
                {
                    "spec_hash": r.spec_hash,
                    "name": r.name,
                    "overrides": dict(r.overrides),
                    "metrics": dict(r.metrics),
                }
                for r in rows[:limit]
            ]
        return body

    def metrics(self) -> Dict[str, Any]:
        """The ``GET /metrics`` body: queue, cache and pool statistics.

        Consistency guarantee: the queue/job counters come from one
        :meth:`JobQueue.stats` snapshot taken under the queue condition
        lock — the same lock every submit, status transition, and
        progress-hook counter update holds — so the reported job counts
        and point totals describe a single instant and can never show a
        half-applied progress batch.  The store/pool/instrument sections
        are each internally consistent reads taken immediately after.
        """
        queue_stats = self.queue.stats()
        points = queue_stats["points"]
        computed = points["computed"]
        cached = points["cached"]
        satisfied = computed + cached
        return {
            "uptime_s": round(time.time() - self.started_s, 3),
            "requests_served": self.requests_served,
            "cpus": os.cpu_count() or 1,
            "jobs": queue_stats["jobs"],
            "queue_depth": queue_stats["queue_depth"],
            "points": {
                "computed": computed,
                "cache_hits": cached,
                "errors": points["errors"],
                "cache_hit_ratio": (
                    round(cached / satisfied, 4) if satisfied else None
                ),
            },
            "store": {
                "rows": len(self.store),
                "path": self.store.path,
            },
            "pool": {
                "parallel": self.parallel,
                "max_workers": (
                    self.pool.max_workers if self.pool is not None
                    else 1
                ),
                "live": (
                    self.pool is not None and self.pool._pool is not None
                ),
                "broken": (
                    self.pool._broken if self.pool is not None else False
                ),
                # The pool-vs-serial perf gate's posture on this host
                # (previously visible only in CI job summaries).
                "gate": pool_gate_status(),
            },
            # The process-wide instrument registry: kernel/pool/store/
            # HTTP counters and histograms (see repro.obs).
            "instruments": obs.registry.snapshot(),
        }

    def metrics_prometheus(self) -> str:
        """``GET /metrics?format=prometheus``: text exposition (0.0.4).

        Service-level state (uptime, job counts, queue depth, store
        rows, pool posture) is folded into gauges right before the
        render, so one scrape carries both the event-driven instruments
        and the point-in-time service view.
        """
        stats = self.queue.stats()
        gauge = obs.registry.gauge
        gauge("repro_service_uptime_seconds").set(
            time.time() - self.started_s
        )
        gauge("repro_service_requests_served").set(self.requests_served)
        gauge("repro_service_cpus").set(os.cpu_count() or 1)
        for status, count in stats["jobs"].items():
            gauge("repro_jobs", status=status).set(count)
        gauge("repro_jobs_queue_depth").set(stats["queue_depth"])
        gauge("repro_store_rows").set(len(self.store))
        gate = pool_gate_status()
        gauge("repro_pool_gate_enforced").set(1 if gate["enforced"] else 0)
        gauge("repro_pool_max_workers").set(
            self.pool.max_workers if self.pool is not None else 1
        )
        return obs.registry.render_prometheus()

    def trace(self) -> Dict[str, Any]:
        """The ``GET /v1/trace`` body: the live Chrome-trace window.

        Returns (without draining) the most recent
        :data:`SERVICE_TRACE_EVENT_LIMIT` span events plus a metrics
        snapshot under ``otherData.metrics`` — load it in
        ``about:tracing``/Perfetto, or feed it to ``repro obs``.
        """
        return obs.chrome_trace(metrics=obs.registry.snapshot())

    def healthz(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body: **liveness** (cheap: no store
        traversal).  "The process is up and answering" — nothing more.
        Readiness (can it actually take and execute work?) is the
        separate :meth:`readyz` probe."""
        return {
            "status": "shutting-down" if self._closed else "ok",
            "jobs": self.queue.counts(),
        }

    def readyz(self) -> Dict[str, Any]:
        """The ``GET /readyz`` body: **readiness**.

        Ready means the service can accept and execute jobs at full
        capacity: it is not shutting down, the executor thread is
        alive, and (when parallel) the warm pool is not broken.  The
        body also carries the degradation ladder's current rungs (see
        :mod:`repro.degrade`), so an operator sees "running, but on
        the numpy kernel / serial executor" without profiling.
        """
        executor = self.queue._thread
        checks = {
            "accepting": not self._closed,
            "executor": executor is not None and executor.is_alive(),
            "pool": (
                not self.parallel
                or (self.pool is not None and not self.pool._broken)
            ),
        }
        return {
            "ready": all(checks.values()),
            "checks": checks,
            "degrade": degrade.snapshot(),
        }


def _truthy(value: Any) -> bool:
    return str(value).lower() in ("1", "true", "yes", "on")


def _pair(value: Any, what: str) -> "tuple[str, str]":
    parts = [p.strip() for p in str(value).split(",") if p.strip()]
    if len(parts) != 2:
        raise SpecError(f"'{what}' wants two comma-separated columns, "
                        f"got {value!r}")
    return parts[0], parts[1]
