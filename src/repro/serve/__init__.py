"""Simulation-as-a-service: an HTTP API + job queue over the framework.

The serve layer turns the one-shot CLI stack into a long-running
service: clients POST ScenarioSpec / sweep-grid / SearchSpace JSON,
jobs execute FIFO on one persistent warm-worker pool, every result
lands in one shared hash-deduped :class:`~repro.results.ResultStore`
(overlapping requests from independent clients compute each point
exactly once), and progress streams back per job.

Layers, bottom up:

* :mod:`repro.serve.jobs` — deterministic job ids, persisted
  :class:`JobRecord` snapshots (:class:`JobStore`);
* :mod:`repro.serve.queue` — :class:`JobQueue`: idempotent submission,
  FIFO executor thread, streamable per-job event logs;
* :mod:`repro.serve.service` — :class:`SimulationService`: request
  validation, execution on the shared pool/store, metrics and result
  queries;
* :mod:`repro.serve.api` — the stdlib HTTP surface
  (:func:`create_server` / :func:`serve_forever`);
* :mod:`repro.serve.client` — a pure-stdlib :class:`ServiceClient`.

Entry point: ``python -m repro.cli serve --port 8000 --store runs.jsonl``
(see the ``serve`` CLI subcommand and the committed docker-compose
deployment).
"""

from repro.serve.api import ServeHTTPServer, create_server, serve_forever
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.jobs import (
    JOB_KINDS,
    JOB_STATUSES,
    JobRecord,
    JobStore,
    job_id_for,
)
from repro.serve.queue import JobQueue
from repro.serve.service import SimulationService

__all__ = [
    "JOB_KINDS",
    "JOB_STATUSES",
    "JobQueue",
    "JobRecord",
    "JobStore",
    "ServeHTTPServer",
    "ServiceClient",
    "ServiceError",
    "SimulationService",
    "create_server",
    "job_id_for",
    "serve_forever",
]
