"""The simulation-layer metric extractor: trace-derived columns.

Component layers contribute their own extractors next to the code that
owns the counters (:mod:`repro.transient.base`, :mod:`repro.power.rail`,
:mod:`repro.storage.base`, :mod:`repro.mcu.engine`,
:mod:`repro.neutral.power_neutral`); the columns every run has — the
clock and the oscilloscope channel — live here.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.results.metrics import register_metric


@register_metric("trace", columns=("t_end", "vcc_min", "vcc_max"), order=0)
def _trace_metrics(run: Any, spec: Optional[Any]) -> Dict[str, Any]:
    """Run length and rail-voltage envelope from the standard probes."""
    vcc = run.vcc()
    return {
        "t_end": run.t_end,
        "vcc_min": float(vcc.minimum()),
        "vcc_max": float(vcc.maximum()),
    }
