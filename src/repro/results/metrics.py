"""The metric-extractor registry behind the unified results pipeline.

Mirrors the component registry (:mod:`repro.spec.registry`): each layer
of the framework registers the columns it knows how to extract from a
finished run, instead of the sweep runner hard-coding one summary shape::

    @register_metric("platform", columns=("completed", "brownouts"),
                     order=10)
    def _platform_metrics(run, spec):
        ...

An extractor is a callable ``(run, spec) -> dict`` mapping a subset of
its declared columns to values; undeclared keys are rejected, missing
declared keys come back as ``None`` (the "not applicable" marker — e.g.
platform columns on a platform-less scenario).  ``run`` is the
:class:`~repro.core.system.SystemRunResult`; ``spec`` is the
:class:`~repro.spec.specs.ScenarioSpec` that produced it, or None for
imperatively wired systems (e.g. the strategy-comparison harness).

Column order is deterministic by construction — extractors sort by their
registered ``order`` (then name), never by import order — so every
process of a sharded sweep agrees on the table layout.

Like the component registry, this module depends only on
:mod:`repro.errors`, so any layer can import :func:`register_metric`
without creating a cycle; :func:`ensure_extractors` imports the
contributing modules on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SpecError

#: The pipeline-level column: worker failures land here, never in an
#: extractor.  Always last.
ERROR_COLUMN = "error"

MetricExtractor = Callable[..., Dict[str, Any]]


@dataclass(frozen=True)
class _Entry:
    name: str
    columns: Tuple[str, ...]
    order: int
    fn: MetricExtractor


_EXTRACTORS: Dict[str, _Entry] = {}

_extractors_loaded = False


def register_metric(
    name: str, *, columns: Tuple[str, ...], order: int = 100
) -> Callable[[MetricExtractor], MetricExtractor]:
    """Decorator registering an extractor contributing ``columns``.

    Args:
        name: the extractor's key (one per contributing layer/aspect).
        columns: the column names this extractor may emit.
        order: sort rank for column layout; lower comes first.  Ties
            break by name, so layout never depends on import order.
    """
    if not name or not columns:
        raise SpecError("a metric extractor needs a name and columns")
    if ERROR_COLUMN in columns:
        raise SpecError(
            f"column {ERROR_COLUMN!r} is reserved for the results pipeline"
        )

    def decorator(fn: MetricExtractor) -> MetricExtractor:
        existing = _EXTRACTORS.get(name)
        if existing is not None and existing.fn is not fn:
            raise SpecError(f"metric extractor {name!r} is already registered")
        claimed = {
            column: entry.name
            for entry in _EXTRACTORS.values()
            if entry.name != name
            for column in entry.columns
        }
        for column in columns:
            if column in claimed:
                raise SpecError(
                    f"metric column {column!r} is already contributed by "
                    f"extractor {claimed[column]!r}"
                )
        _EXTRACTORS[name] = _Entry(name, tuple(columns), order, fn)
        return fn

    return decorator


def ensure_extractors() -> None:
    """Import the contributing layers so their registrations run.

    Deferred for the same reason the component catalog is: the layers
    import :func:`register_metric` from here at module load.
    """
    global _extractors_loaded
    if _extractors_loaded:
        return
    # Each import triggers that layer's @register_metric decorators.
    import repro.results.extractors  # noqa: F401  (trace columns)
    import repro.transient.base  # noqa: F401      (platform columns)
    import repro.mcu.engine  # noqa: F401          (engine columns)
    import repro.power.rail  # noqa: F401          (rail columns)
    import repro.storage.base  # noqa: F401        (storage columns)
    import repro.neutral.power_neutral  # noqa: F401  (governor columns)

    _extractors_loaded = True


def _entries() -> List[_Entry]:
    ensure_extractors()
    return sorted(_EXTRACTORS.values(), key=lambda e: (e.order, e.name))


def extractor_names() -> List[str]:
    """Registered extractor names in column-layout order."""
    return [entry.name for entry in _entries()]


def metric_columns() -> List[str]:
    """Every contributed column, in deterministic layout order."""
    return [column for entry in _entries() for column in entry.columns]


def result_columns() -> List[str]:
    """The full results-pipeline column set: metrics plus ``error``."""
    return metric_columns() + [ERROR_COLUMN]


def empty_metrics() -> Dict[str, Any]:
    """An all-``None`` metrics mapping (the failed-point summary shape)."""
    metrics: Dict[str, Any] = {column: None for column in metric_columns()}
    metrics[ERROR_COLUMN] = None
    return metrics


def extract_metrics(run: Any, spec: Optional[Any] = None) -> Dict[str, Any]:
    """Run every registered extractor over a finished run.

    Returns one mapping covering :func:`result_columns`: columns an
    extractor does not emit (or that do not apply to this system) are
    None, and ``error`` is None — a pipeline that got this far ran.
    """
    metrics = empty_metrics()
    for entry in _entries():
        emitted = entry.fn(run, spec)
        if emitted is None:
            continue
        unknown = sorted(set(emitted) - set(entry.columns))
        if unknown:
            raise SpecError(
                f"metric extractor {entry.name!r} emitted undeclared "
                f"column(s) {unknown}; declared: {sorted(entry.columns)}"
            )
        metrics.update(emitted)
    return metrics
