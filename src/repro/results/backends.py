"""Pluggable persistence backends for :class:`~repro.results.store.ResultStore`.

The store separates *semantics* (hash-dedupe, overwrite, batching,
queries — `store.py`) from *persistence* (this module).  A backend
implements the :class:`StoreBackend` contract:

* ``load()`` — read every durable row, recovering a torn tail (the
  signature of a writer killed mid-flush) by dropping it and compacting;
  corruption anywhere earlier raises, because silently skipping interior
  rows would misreport a sweep as complete.
* ``append(row)`` / ``append_many(rows)`` — durable appends (one fsync
  per call), never touching rows already on disk.
* ``rewrite(rows)`` — atomically compact the file(s) to exactly
  ``rows`` *plus* any durable rows written by another process since our
  load; the preserved strangers are returned so the caller can fold
  them into its in-memory index.  This read-reconcile-replace under the
  file lock is what makes a live ``repro serve`` appending while a CLI
  ``repro results --merge`` compacts lose nothing.

Every mutating operation (and every load) holds an advisory
``fcntl.flock`` on a ``.lock`` sidecar, so concurrent processes
serialize whole operations instead of interleaving bytes.  The lock
file sits *next to* the data (not on it) because ``rewrite`` replaces
the data file via ``os.replace`` — a lock on the replaced inode would
silently stop excluding anyone who opens the new one.

Two durable backends ship:

* :class:`JsonlBackend` — one JSON record per line.  Human-greppable,
  append-cheap, portable; a torn tail costs at most the final *line*.
  The right default for interactive sweeps and small stores.
* :class:`ColumnarBackend` — a ``.colstore`` directory of append-only
  shards, each one fixed-schema data file (``shard-NNNNNN.dat``,
  self-framing record batches of contiguous numpy column blocks) plus a
  JSONL string-table sidecar (``shard-NNNNNN.strings.jsonl``) holding
  the shard schema and every interned string (names, categorical
  values, error messages, spec/trace payloads).  A new shard starts
  whenever a batch brings columns the current schema lacks.  Reads map
  the data file with :func:`numpy.memmap` and decode whole columns at
  C speed; shard-to-store merges move column blocks wholesale (hash
  dedupe via ``np.isin``) without materialising Python rows — the
  fleet-scale ingest path.  A torn tail costs at most the final
  *batch*.
"""

from __future__ import annotations

import json
import os
import struct
from operator import itemgetter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro import faults

try:  # advisory locking is POSIX-only; elsewhere operations are unlocked
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.errors import ReproError, ResultStoreError
from repro.results.run_result import RunResult, is_worker_crash_error

PathLike = Union[str, "os.PathLike[str]"]

#: Path suffix that selects the columnar backend when ``backend="auto"``.
COLUMNAR_SUFFIX = ".colstore"

#: Frame marker opening every columnar record batch.
_BATCH_MAGIC = b"RPB1"
_BATCH_HEADER = struct.Struct("<4sIH")  # magic, n_rows, n_cols

# Per-column presence codes (one byte per column per batch).
_ABSENT_COL = 0   # no row of the batch has the key
_DENSE_COL = 1    # every row has a non-None value
_NONE_COL = 2     # every row has the key, every value is None
_MIXED_COL = 3    # two bitmaps (key-present, value-not-None) + data

# Per-column value kinds (one byte per column per batch).
_KIND_F8 = 0
_KIND_I8 = 1
_KIND_BOOL = 2
_KIND_STR = 3     # int32 index into the shard string table (-1 = None)
_KIND_HASH = 4    # fixed 64-byte ASCII field

_KIND_DTYPES = {
    _KIND_F8: np.dtype("<f8"),
    _KIND_I8: np.dtype("<i8"),
    _KIND_BOOL: np.dtype("u1"),
    _KIND_STR: np.dtype("<i4"),
    _KIND_HASH: np.dtype("S64"),
}

#: Implicit columns present in every columnar shard, before the
#: ``o:<override>`` and ``m:<metric>`` value columns.
_SPECIAL_COLUMNS = ("#hash", "#name", "#spec", "#traces", "#overflow")

_ABSENT = object()  # sentinel: the row's dict lacks the key entirely


class _FileLock:
    """A reentrant advisory lock on a sidecar file (no-op without fcntl)."""

    def __init__(self, path: str):
        self._path = path
        self._fd: Optional[int] = None
        self._depth = 0

    def __enter__(self) -> "_FileLock":
        self._depth += 1
        if self._depth == 1 and fcntl is not None:
            if self._fd is None:
                try:
                    os.makedirs(
                        os.path.dirname(self._path) or ".", exist_ok=True
                    )
                    self._fd = os.open(
                        self._path, os.O_CREAT | os.O_RDWR, 0o644
                    )
                except OSError:
                    # Read-only media: proceed unlocked rather than
                    # refusing to read at all.
                    return self
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc: Any) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fd is not None and fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


class StoreBackend:
    """The persistence contract behind :class:`ResultStore`.

    Subclasses own durability and cross-process exclusion; the store
    owns dedupe, overwrite policy and queries.  ``name`` identifies the
    backend in CLI flags and diagnostics; ``ephemeral`` marks the
    in-memory backend (batching and compaction become no-ops).
    """

    name = "abstract"
    ephemeral = False

    def __init__(self, path: Optional[str]):
        self.path = path

    def load(self) -> List[RunResult]:
        raise NotImplementedError

    def append(self, result: RunResult) -> None:
        raise NotImplementedError

    def append_many(self, results: Sequence[RunResult]) -> None:
        raise NotImplementedError

    def rewrite(self, results: Sequence[RunResult]) -> List[RunResult]:
        """Compact to ``results`` + concurrent strangers; return the latter."""
        raise NotImplementedError


class MemoryBackend(StoreBackend):
    """No persistence: the store lives and dies with the process."""

    name = "memory"
    ephemeral = True

    def __init__(self) -> None:
        super().__init__(None)

    def load(self) -> List[RunResult]:
        return []

    def append(self, result: RunResult) -> None:
        pass

    def append_many(self, results: Sequence[RunResult]) -> None:
        pass

    def rewrite(self, results: Sequence[RunResult]) -> List[RunResult]:
        return []


class JsonlBackend(StoreBackend):
    """One JSON record per line; the original ResultStore format."""

    name = "jsonl"

    def __init__(self, path: str):
        super().__init__(path)
        self._lock = _FileLock(f"{path}.lock")

    # -- reading ---------------------------------------------------------

    def _read(self) -> Tuple[List[RunResult], bool]:
        """Parse every line; returns (rows, had_torn_tail)."""
        with open(self.path, "r", encoding="utf-8") as stream:
            lines = stream.readlines()
        records: List[RunResult] = []
        bad_tail = False
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                result = RunResult.from_record(payload)
            except (json.JSONDecodeError, ReproError) as error:
                if lineno == len(lines):
                    # A torn final line: the writer died mid-append.
                    # Recoverable by construction — drop it and compact.
                    bad_tail = True
                    break
                raise ResultStoreError(
                    f"{self.path}:{lineno}: corrupt result record: {error}"
                ) from error
            records.append(result)
        return records, bad_tail

    def load(self) -> List[RunResult]:
        if not os.path.exists(self.path):
            return []
        with self._lock:
            records, bad_tail = self._read()
            if bad_tail:
                self._replace_with(records)
        return records

    # -- writing ---------------------------------------------------------

    def _replace_with(self, results: Sequence[RunResult]) -> None:
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as stream:
            for result in results:
                stream.write(json.dumps(result.to_record()) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_path, self.path)

    def append(self, result: RunResult) -> None:
        self.append_many([result])

    def append_many(self, results: Sequence[RunResult]) -> None:
        if not results:
            return
        lines = [json.dumps(r.to_record()) + "\n" for r in results]
        fault_key = f"{results[0].spec_hash}|{len(results)}"
        faults.maybe_delay(fault_key)
        faults.inject(
            "store.append_fail", fault_key,
            f"injected append failure on {self.path}",
        )
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as stream:
                if faults.fire("store.torn_write", fault_key):
                    # Simulate death mid-append: a prefix of the encoded
                    # bytes reaches disk (whole leading records plus a
                    # torn final line), then the "process" dies.  load()
                    # recovers by dropping the torn tail and compacting.
                    payload = "".join(lines)
                    stream.write(payload[: max(1, len(payload) // 2)])
                    stream.flush()
                    os.fsync(stream.fileno())
                    raise faults.FaultInjected(
                        f"injected torn write on {self.path}"
                    )
                stream.writelines(lines)
                stream.flush()
                os.fsync(stream.fileno())

    def rewrite(self, results: Sequence[RunResult]) -> List[RunResult]:
        with self._lock:
            preserved: List[RunResult] = []
            if os.path.exists(self.path):
                known = {r.spec_hash for r in results}
                disk, _bad_tail = self._read()
                # Transient worker-crash rows are never worth
                # preserving: carrying them through a compaction would
                # resurrect exactly the rows the load-time cleanup
                # exists to drop.
                preserved = [
                    r for r in disk
                    if r.spec_hash not in known
                    and not is_worker_crash_error(r.error)
                ]
            self._replace_with(list(results) + preserved)
        return preserved


# ---------------------------------------------------------------------------
# Columnar backend
# ---------------------------------------------------------------------------


class _DecodedBatch:
    """One record batch, decoded to numpy columns (no Python rows yet)."""

    __slots__ = ("n", "codes", "kinds", "values", "present", "notnone")

    def __init__(self, n: int):
        self.n = n
        self.codes: Dict[str, int] = {}
        self.kinds: Dict[str, int] = {}
        self.values: Dict[str, np.ndarray] = {}
        self.present: Dict[str, np.ndarray] = {}
        self.notnone: Dict[str, np.ndarray] = {}


class _Shard:
    """Mutable writer state for one (data, sidecar) file pair."""

    __slots__ = ("dat", "sidecar", "columns", "table", "intern", "sidecar_size")

    def __init__(self, dat: str, sidecar: str, columns: List[str]):
        self.dat = dat
        self.sidecar = sidecar
        self.columns = columns
        self.table: List[str] = []
        self.intern: Dict[str, int] = {}
        self.sidecar_size = 0


def _category(value: Any) -> Optional[int]:
    """The column kind a value fits, or None for out-of-model types."""
    if isinstance(value, bool):
        return _KIND_BOOL
    if isinstance(value, float):
        return _KIND_F8
    if isinstance(value, int):
        return _KIND_I8
    if isinstance(value, str):
        return _KIND_STR
    return None


class ColumnarBackend(StoreBackend):
    """Sharded append-only columnar storage under a ``.colstore`` dir.

    Durability model: each flush appends one self-framing record batch —
    the string-table sidecar is extended and fsynced *before* the data
    file, so a complete batch never references a missing string.  A
    crash mid-flush tears at most the final batch (JSONL tears at most
    the final line); load truncates it and drops a torn sidecar line.
    Interior damage — a bad frame marker, a string index past the
    table — raises :class:`ResultStoreError`.
    """

    name = "columnar"

    def __init__(self, path: str):
        super().__init__(os.fspath(path))
        self._lock = _FileLock(os.path.join(self.path, ".lock"))
        self._active: Optional[_Shard] = None

    # -- shard discovery and sidecars ------------------------------------

    def _shard_paths(self) -> List[Tuple[str, str]]:
        if not os.path.isdir(self.path):
            return []
        pairs = []
        for entry in sorted(os.listdir(self.path)):
            if entry.startswith("shard-") and entry.endswith(".dat"):
                stem = entry[: -len(".dat")]
                pairs.append((
                    os.path.join(self.path, entry),
                    os.path.join(self.path, f"{stem}.strings.jsonl"),
                ))
        return pairs

    def _read_sidecar(
        self, sidecar: str, *, compact_tail: bool
    ) -> Tuple[List[str], List[str], int]:
        """Returns (columns, table, durable_size); drops a torn tail."""
        if not os.path.exists(sidecar):
            raise ResultStoreError(
                f"{sidecar}: missing string-table sidecar for its data file"
            )
        with open(sidecar, "rb") as stream:
            raw = stream.read()
        lines = raw.split(b"\n")
        torn = lines.pop() if lines and lines[-1] != b"" else None
        if torn is None and lines:
            lines.pop()  # the empty piece after the final newline
        entries: List[Any] = []
        for lineno, line in enumerate(lines, start=1):
            try:
                entries.append(json.loads(line))
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise ResultStoreError(
                    f"{sidecar}:{lineno}: corrupt string-table entry: {error}"
                ) from error
        if not entries or not isinstance(entries[0], dict) \
                or "columns" not in entries[0]:
            raise ResultStoreError(f"{sidecar}: missing shard schema header")
        table = entries[1:]
        if any(not isinstance(s, str) for s in table):
            raise ResultStoreError(f"{sidecar}: non-string table entry")
        durable = len(raw) - (len(torn) if torn is not None else 0)
        if torn is not None and compact_tail:
            with open(sidecar, "r+b") as stream:
                stream.truncate(durable)
                stream.flush()
                os.fsync(stream.fileno())
        return list(entries[0]["columns"]), table, durable

    def _create_shard(self, columns: List[str]) -> _Shard:
        os.makedirs(self.path, exist_ok=True)
        index = 0
        for dat, _sidecar in self._shard_paths():
            stem = os.path.basename(dat)[len("shard-"):-len(".dat")]
            try:
                index = max(index, int(stem) + 1)
            except ValueError:
                pass
        stem = f"shard-{index:06d}"
        dat = os.path.join(self.path, f"{stem}.dat")
        sidecar = os.path.join(self.path, f"{stem}.strings.jsonl")
        header = json.dumps({"format": "repro-colstore", "version": 1,
                             "columns": columns}) + "\n"
        with open(sidecar, "w", encoding="utf-8") as stream:
            stream.write(header)
            stream.flush()
            os.fsync(stream.fileno())
        with open(dat, "wb") as stream:
            stream.flush()
            os.fsync(stream.fileno())
        shard = _Shard(dat, sidecar, columns)
        shard.sidecar_size = len(header.encode("utf-8"))
        return shard

    def _sync_active(self) -> Optional[_Shard]:
        """Point the writer at the newest shard, re-reading its table if
        another process extended it since we last looked."""
        pairs = self._shard_paths()
        if not pairs:
            self._active = None
            return None
        dat, sidecar = pairs[-1]
        shard = self._active
        size = os.path.getsize(sidecar) if os.path.exists(sidecar) else -1
        if shard is None or shard.dat != dat or shard.sidecar_size != size:
            columns, table, durable = self._read_sidecar(
                sidecar, compact_tail=True
            )
            shard = _Shard(dat, sidecar, columns)
            shard.table = table
            shard.intern = {s: i for i, s in enumerate(table)}
            shard.sidecar_size = durable
            self._active = shard
        return shard

    def _intern(self, shard: _Shard, value: str,
                fresh: List[str]) -> int:
        index = shard.intern.get(value)
        if index is None:
            index = len(shard.table)
            shard.table.append(value)
            shard.intern[value] = index
            fresh.append(value)
        return index

    # -- encoding --------------------------------------------------------

    def _batch_columns(self, results: Sequence[RunResult]) -> List[str]:
        columns = list(_SPECIAL_COLUMNS)
        seen: Set[str] = set(columns)
        for result in results:
            for key in result.overrides:
                name = f"o:{key}"
                if name not in seen:
                    seen.add(name)
                    columns.append(name)
            for key in result.metrics:
                name = f"m:{key}"
                if name not in seen:
                    seen.add(name)
                    columns.append(name)
        return columns

    def _encode_value_column(
        self,
        dicts: List[Dict[str, Any]],
        key: str,
        shard: _Shard,
        fresh: List[str],
        overflow_rows: Set[int],
    ) -> Tuple[int, int, Optional[np.ndarray], Optional[np.ndarray],
               Optional[np.ndarray]]:
        """Encode one override/metric column of the batch.

        Returns (code, kind, values, present, notnone); values are a
        numpy array for codes 1/3, presence masks are bool arrays for
        code 3.  Rows whose value fits no column kind are added to
        ``overflow_rows`` (the caller reroutes the whole row through the
        string table) and encoded as None here.
        """
        n = len(dicts)
        try:
            vals = list(map(itemgetter(key), dicts))
            sparse = False
        except KeyError:
            vals = [d.get(key, _ABSENT) for d in dicts]
            sparse = True
        types = set(map(type, vals))
        types.discard(type(None))
        if sparse:
            types.discard(type(_ABSENT))
        if not types:
            if sparse:
                present = np.fromiter(
                    (v is not _ABSENT for v in vals), np.bool_, count=n
                )
                return (_MIXED_COL, _KIND_F8, np.zeros(n),
                        present, np.zeros(n, np.bool_))
            return _NONE_COL, _KIND_F8, None, None, None

        if types == {float} or types == {int, float}:
            kind = _KIND_F8
        elif types == {int}:
            kind = _KIND_I8
        elif types == {bool}:
            kind = _KIND_BOOL
        elif types == {str}:
            kind = _KIND_STR
        else:
            # Heterogeneous or out-of-model values: keep the rows, but
            # each offending row round-trips via its overflow record.
            kind = None
            for value in vals:
                if value is None or value is _ABSENT:
                    continue
                kind = _category(value)
                if kind is not None:
                    break
            if kind is None:
                kind = _KIND_STR
            cleaned = list(vals)
            for i, value in enumerate(vals):
                if value is None or value is _ABSENT:
                    continue
                fits = _category(value)
                if fits is None or not (
                    fits == kind
                    or (kind == _KIND_F8 and fits in (_KIND_F8, _KIND_I8))
                ):
                    overflow_rows.add(i)
                    cleaned[i] = None
            vals = cleaned

        none_count = vals.count(None) + (vals.count(_ABSENT) if sparse else 0)
        if none_count == 0:
            if kind == _KIND_STR:
                data = np.fromiter(
                    (self._intern(shard, v, fresh) for v in vals),
                    np.int32, count=n,
                )
            elif kind == _KIND_BOOL:
                data = np.asarray(vals, np.bool_)
            elif kind == _KIND_I8:
                try:
                    data = np.asarray(vals, np.int64)
                except OverflowError:
                    for i, value in enumerate(vals):
                        if not (-2**63 <= value < 2**63):
                            overflow_rows.add(i)
                    data = np.asarray(
                        [0 if not (-2**63 <= v < 2**63) else v for v in vals],
                        np.int64,
                    )
            else:
                data = np.asarray(vals, np.float64)
            return _DENSE_COL, kind, data, None, None

        # Mixed presence: slow row loop, but rare (error rows inside an
        # otherwise-clean batch, overrides present on a subset).
        present = np.fromiter((v is not _ABSENT for v in vals),
                              np.bool_, count=n)
        notnone = np.fromiter(
            (v is not _ABSENT and v is not None for v in vals),
            np.bool_, count=n,
        )
        if kind == _KIND_STR:
            data = np.fromiter(
                (self._intern(shard, v, fresh)
                 if (v is not None and v is not _ABSENT) else -1
                 for v in vals),
                np.int32, count=n,
            )
        else:
            dtype = {_KIND_F8: np.float64, _KIND_I8: np.int64,
                     _KIND_BOOL: np.bool_}[kind]
            zero = False if kind == _KIND_BOOL else 0
            data = np.asarray(
                [zero if (v is None or v is _ABSENT) else v for v in vals],
                dtype,
            )
        return _MIXED_COL, kind, data, present, notnone

    def _encode_batch(
        self, shard: _Shard, results: Sequence[RunResult], fresh: List[str]
    ) -> bytes:
        n = len(results)
        columns = shard.columns
        overrides = [r.overrides for r in results]
        metrics = [r.metrics for r in results]
        overflow_rows: Set[int] = set()

        encoded: Dict[str, Tuple] = {}
        for name in columns:
            if name.startswith("o:"):
                encoded[name] = self._encode_value_column(
                    overrides, name[2:], shard, fresh, overflow_rows
                )
            elif name.startswith("m:"):
                encoded[name] = self._encode_value_column(
                    metrics, name[2:], shard, fresh, overflow_rows
                )

        hashes = [r.spec_hash for r in results]
        if max(map(len, hashes)) > 64 or not all(
            h.isascii() for h in hashes
        ):
            raise ResultStoreError(
                "columnar stores need ASCII spec hashes of at most 64 "
                "bytes (the pipeline's sha256 hex keys always fit)"
            )
        encoded["#hash"] = (
            _DENSE_COL, _KIND_HASH, np.array(hashes, dtype="S64"), None, None,
        )
        encoded["#name"] = (
            _DENSE_COL, _KIND_STR,
            np.fromiter((self._intern(shard, r.name, fresh) for r in results),
                        np.int32, count=n),
            None, None,
        )

        def _payload_ids(payloads: List[Optional[str]]) -> Tuple:
            if not any(p is not None for p in payloads):
                return _NONE_COL, _KIND_STR, None, None, None
            data = np.fromiter(
                (self._intern(shard, p, fresh) if p is not None else -1
                 for p in payloads),
                np.int32, count=n,
            )
            return _DENSE_COL, _KIND_STR, data, None, None

        specs = [
            json.dumps(r.spec.to_dict())
            if (r.spec is not None and hasattr(r.spec, "to_dict")) else None
            for r in results
        ]
        traces = [
            json.dumps(r.traces) if r.traces else None for r in results
        ]
        overflow = [
            json.dumps(results[i].to_record()) if i in overflow_rows else None
            for i in range(n)
        ]
        encoded["#spec"] = _payload_ids(specs)
        encoded["#traces"] = _payload_ids(traces)
        encoded["#overflow"] = _payload_ids(overflow)

        codes = np.zeros(len(columns), np.uint8)
        kinds = np.zeros(len(columns), np.uint8)
        blocks: List[bytes] = []
        for i, name in enumerate(columns):
            code, kind, data, present, notnone = encoded.get(
                name, (_ABSENT_COL, _KIND_F8, None, None, None)
            )
            codes[i] = code
            kinds[i] = kind
            if code == _MIXED_COL:
                blocks.append(np.packbits(present).tobytes())
                blocks.append(np.packbits(notnone).tobytes())
            if code in (_DENSE_COL, _MIXED_COL):
                blocks.append(
                    np.ascontiguousarray(
                        data, dtype=_KIND_DTYPES[kind]
                    ).tobytes()
                )
        header = _BATCH_HEADER.pack(_BATCH_MAGIC, n, len(columns))
        return b"".join([header, codes.tobytes(), kinds.tobytes()] + blocks)

    def _flush(self, results: Sequence[RunResult]) -> None:
        """Append one record batch durably (sidecar first, then data)."""
        if not results:
            return
        fault_key = f"{results[0].spec_hash}|{len(results)}"
        faults.maybe_delay(fault_key)
        faults.inject(
            "store.append_fail", fault_key,
            f"injected append failure on {self.path}",
        )
        with self._lock:
            needed = self._batch_columns(results)
            shard = self._sync_active()
            if shard is None or any(c not in shard.columns for c in needed):
                merged = list(shard.columns) if shard is not None else []
                merged += [c for c in needed if c not in merged]
                shard = self._create_shard(merged)
                self._active = shard
            fresh: List[str] = []
            frame = self._encode_batch(shard, results, fresh)
            if fresh:
                payload = "".join(json.dumps(s) + "\n" for s in fresh)
                with open(shard.sidecar, "a", encoding="utf-8") as stream:
                    stream.write(payload)
                    stream.flush()
                    os.fsync(stream.fileno())
                shard.sidecar_size += len(payload.encode("utf-8"))
            with open(shard.dat, "ab") as stream:
                if faults.fire("store.torn_write", fault_key):
                    # Simulate death between the sidecar fsync (already
                    # durable above) and the data append: only a prefix
                    # of the frame lands, which decode recognises as a
                    # torn final batch and compacts away on reopen.
                    stream.write(frame[: max(1, len(frame) // 2)])
                    stream.flush()
                    os.fsync(stream.fileno())
                    raise faults.FaultInjected(
                        f"injected torn write on {shard.dat}"
                    )
                stream.write(frame)
                stream.flush()
                os.fsync(stream.fileno())

    # -- decoding --------------------------------------------------------

    def _decode_batches(
        self, dat: str, columns: List[str], table: List[str],
        *, compact_tail: bool,
    ) -> List[_DecodedBatch]:
        size = os.path.getsize(dat)
        if size == 0:
            return []
        buf = np.memmap(dat, dtype=np.uint8, mode="r")
        raw = memoryview(buf)
        batches: List[_DecodedBatch] = []
        offset = 0
        good = 0
        torn = False
        n_cols = len(columns)
        while offset < size:
            if offset + _BATCH_HEADER.size + 2 * n_cols > size:
                torn = True
                break
            magic, n, cols = _BATCH_HEADER.unpack_from(raw, offset)
            if magic != _BATCH_MAGIC or cols != n_cols:
                if good == 0 and offset == 0:
                    raise ResultStoreError(
                        f"{dat}: not a colstore data file (bad frame marker)"
                    )
                raise ResultStoreError(
                    f"{dat}: corrupt record batch at byte {offset}"
                )
            pos = offset + _BATCH_HEADER.size
            codes = np.frombuffer(raw, np.uint8, n_cols, pos)
            kinds = np.frombuffer(raw, np.uint8, n_cols, pos + n_cols)
            pos += 2 * n_cols
            batch = _DecodedBatch(n)
            bitmap_bytes = (n + 7) // 8
            try:
                for i, name in enumerate(columns):
                    code, kind = int(codes[i]), int(kinds[i])
                    batch.codes[name] = code
                    batch.kinds[name] = kind
                    if code == _MIXED_COL:
                        if pos + 2 * bitmap_bytes > size:
                            raise _Torn()
                        batch.present[name] = np.unpackbits(
                            np.frombuffer(raw, np.uint8, bitmap_bytes, pos),
                            count=n,
                        ).astype(bool)
                        batch.notnone[name] = np.unpackbits(
                            np.frombuffer(
                                raw, np.uint8, bitmap_bytes,
                                pos + bitmap_bytes,
                            ),
                            count=n,
                        ).astype(bool)
                        pos += 2 * bitmap_bytes
                    if code in (_DENSE_COL, _MIXED_COL):
                        dtype = _KIND_DTYPES[kind]
                        nbytes = n * dtype.itemsize
                        if pos + nbytes > size:
                            raise _Torn()
                        batch.values[name] = np.frombuffer(
                            raw, dtype, n, pos
                        )
                        pos += nbytes
            except _Torn:
                torn = True
                break
            for name in columns:
                if batch.kinds.get(name) == _KIND_STR \
                        and name in batch.values:
                    ids = batch.values[name]
                    if ids.size and int(ids.max()) >= len(table):
                        raise ResultStoreError(
                            f"{dat}: string index past the sidecar table "
                            f"at byte {offset}"
                        )
            batches.append(batch)
            good = pos
            offset = pos
        if torn:
            # Copy every decoded column out of the memmap before
            # truncating the file underneath it.
            for batch in batches:
                batch.values = {k: np.array(v)
                                for k, v in batch.values.items()}
            del raw, buf
            if compact_tail:
                with open(dat, "r+b") as stream:
                    stream.truncate(good)
                    stream.flush()
                    os.fsync(stream.fileno())
        return batches

    def _materialize(
        self, columns: List[str], table: List[str], batch: _DecodedBatch
    ) -> List[RunResult]:
        n = batch.n
        spec_cache: Dict[int, Any] = {}

        def str_list(name: str) -> List[Optional[str]]:
            ids = batch.values[name].tolist()
            return [table[i] if i >= 0 else None for i in ids]

        def payload_ids(name: str) -> List[int]:
            if batch.codes.get(name, _NONE_COL) != _DENSE_COL:
                return [-1] * n
            return batch.values[name].tolist()

        hashes = [h.decode("ascii") for h in batch.values["#hash"].tolist()]
        names = str_list("#name")
        spec_ids = payload_ids("#spec")
        trace_ids = payload_ids("#traces")
        overflow_ids = payload_ids("#overflow")

        okeys: List[str] = []
        mkeys: List[str] = []
        olists: List[List[Any]] = []
        mlists: List[List[Any]] = []
        any_mixed = False
        for name in columns:
            if not (name.startswith("o:") or name.startswith("m:")):
                continue
            code = batch.codes.get(name, _ABSENT_COL)
            if code == _ABSENT_COL:
                continue
            kind = batch.kinds[name]
            if code == _NONE_COL:
                values: List[Any] = [None] * n
            else:
                if kind == _KIND_STR:
                    values = str_list(name)
                elif kind == _KIND_BOOL:
                    values = batch.values[name].astype(np.bool_).tolist()
                else:
                    values = batch.values[name].tolist()
                if code == _MIXED_COL:
                    any_mixed = True
                    present = batch.present[name]
                    notnone = batch.notnone[name]
                    for i in range(n):
                        if not present[i]:
                            values[i] = _ABSENT
                        elif not notnone[i]:
                            values[i] = None
            if name.startswith("o:"):
                okeys.append(name[2:])
                olists.append(values)
            else:
                mkeys.append(name[2:])
                mlists.append(values)

        orows = zip(*olists) if olists else iter(() for _ in range(n))
        mrows = zip(*mlists) if mlists else iter(() for _ in range(n))
        results: List[RunResult] = []
        for i, (otup, mtup) in enumerate(zip(orows, mrows)):
            oid = overflow_ids[i]
            if oid >= 0:
                results.append(RunResult.from_record(json.loads(table[oid])))
                continue
            if any_mixed:
                ov = {k: v for k, v in zip(okeys, otup) if v is not _ABSENT}
                mv = {k: v for k, v in zip(mkeys, mtup) if v is not _ABSENT}
            else:
                ov = dict(zip(okeys, otup))
                mv = dict(zip(mkeys, mtup))
            spec = None
            sid = spec_ids[i]
            if sid >= 0:
                if sid in spec_cache:
                    spec = spec_cache[sid]
                else:
                    spec = _parse_spec(table[sid])
                    spec_cache[sid] = spec
            tid = trace_ids[i]
            traces = json.loads(table[tid]) if tid >= 0 else None
            results.append(RunResult(
                spec_hash=hashes[i], name=names[i], overrides=ov,
                metrics=mv, traces=traces, spec=spec,
            ))
        return results

    # -- the StoreBackend contract ---------------------------------------

    def load(self) -> List[RunResult]:
        if not os.path.isdir(self.path):
            return []
        results: List[RunResult] = []
        with self._lock:
            for dat, sidecar in self._shard_paths():
                columns, table, _size = self._read_sidecar(
                    sidecar, compact_tail=True
                )
                for batch in self._decode_batches(
                    dat, columns, table, compact_tail=True
                ):
                    results.extend(self._materialize(columns, table, batch))
        return results

    def append(self, result: RunResult) -> None:
        self._flush([result])

    def append_many(self, results: Sequence[RunResult]) -> None:
        self._flush(results)

    def rewrite(self, results: Sequence[RunResult]) -> List[RunResult]:
        with self._lock:
            preserved: List[RunResult] = []
            if os.path.isdir(self.path):
                known = {r.spec_hash for r in results}
                seen: Set[str] = set()
                for row in self.load():
                    # As in the JSONL backend: compaction never
                    # preserves transient worker-crash rows.
                    if row.spec_hash not in known \
                            and row.spec_hash not in seen \
                            and not is_worker_crash_error(row.error):
                        seen.add(row.spec_hash)
                        preserved.append(row)
                for dat, sidecar in self._shard_paths():
                    os.unlink(dat)
                    os.unlink(sidecar)
            self._active = None
            rows = list(results) + preserved
            if rows or os.path.isdir(self.path):
                os.makedirs(self.path, exist_ok=True)
                self._flush(rows)
        return preserved

    # -- vectorized shard-merge ingest -----------------------------------

    def can_bulk_merge(self, shards: Sequence[str]) -> bool:
        return all(
            os.fspath(s).endswith(COLUMNAR_SUFFIX) and os.path.isdir(s)
            for s in shards
        )

    def bulk_merge(self, shards: Sequence[str]) -> int:
        """Fold columnar shard stores in by moving column blocks.

        Hash dedupe (against rows already here and across/within
        shards, first writer wins) runs over the fixed-width hash
        column as a hash-set membership sweep — sorted set operations
        (``np.isin``) lose to a plain set here because S64 comparisons
        pay a memcmp per element per sort level.  Surviving rows are
        copied column-by-column with ``np.compress`` and appended as
        new record batches; no row is ever materialized into Python —
        dedupe seeds from this store's own hash columns — which is what
        makes fleet-scale ingest an order of magnitude faster than
        row-wise JSONL merging.  Returns the number of rows absorbed;
        the caller reloads lazily when queried.
        """
        absorbed = 0
        with self._lock:
            seen: set = set()
            # Seed dedupe from our own hash columns — and compact any
            # torn tail first, because new frames append at file end.
            for dat, sidecar in self._shard_paths():
                columns, table, _size = self._read_sidecar(
                    sidecar, compact_tail=True
                )
                for batch in self._decode_batches(
                    dat, columns, table, compact_tail=True
                ):
                    seen.update(batch.values["#hash"].tolist())
            for shard_path in shards:
                other = ColumnarBackend(os.fspath(shard_path))
                with other._lock:
                    for dat, sidecar in other._shard_paths():
                        columns, table, _size = other._read_sidecar(
                            sidecar, compact_tail=False
                        )
                        batches = other._decode_batches(
                            dat, columns, table, compact_tail=False
                        )
                        for batch in batches:
                            hashes = batch.values["#hash"].tolist()
                            bmask = np.empty(batch.n, dtype=bool)
                            add = seen.add
                            for i, h in enumerate(hashes):
                                if h in seen:
                                    bmask[i] = False
                                else:
                                    bmask[i] = True
                                    add(h)
                            if not bmask.any():
                                continue
                            if bmask.all():
                                kept = batch
                            else:
                                kept = self._compress_batch(batch, bmask)
                            self._append_decoded(columns, table, kept)
                            absorbed += kept.n
        return absorbed

    @staticmethod
    def _compress_batch(batch: _DecodedBatch,
                        mask: np.ndarray) -> _DecodedBatch:
        kept = _DecodedBatch(int(mask.sum()))
        kept.codes = dict(batch.codes)
        kept.kinds = dict(batch.kinds)
        kept.values = {k: np.compress(mask, v)
                       for k, v in batch.values.items()}
        kept.present = {k: np.compress(mask, v)
                        for k, v in batch.present.items()}
        kept.notnone = {k: np.compress(mask, v)
                        for k, v in batch.notnone.items()}
        return kept

    def _append_decoded(
        self, columns: List[str], table: List[str], batch: _DecodedBatch
    ) -> None:
        """Write an already-decoded batch into this store; remaps string
        ids from the source shard's table into ours."""
        shard = self._sync_active()
        if shard is None or any(c not in shard.columns for c in columns):
            merged = list(shard.columns) if shard is not None else []
            merged += [c for c in columns if c not in merged]
            shard = self._create_shard(merged)
            self._active = shard
        fresh: List[str] = []
        remap: Optional[np.ndarray] = None
        used = set()
        for name in columns:
            if batch.kinds.get(name) == _KIND_STR and name in batch.values:
                used.update(
                    int(i) for i in np.unique(batch.values[name]) if i >= 0
                )
        if used:
            remap = np.full(max(used) + 1, -1, np.int32)
            for i in sorted(used):
                remap[i] = self._intern(shard, table[i], fresh)

        codes = np.zeros(len(shard.columns), np.uint8)
        kinds = np.zeros(len(shard.columns), np.uint8)
        blocks: List[bytes] = []
        for i, name in enumerate(shard.columns):
            code = batch.codes.get(name, _ABSENT_COL)
            kind = batch.kinds.get(name, _KIND_F8)
            codes[i] = code
            kinds[i] = kind
            if code == _MIXED_COL:
                blocks.append(np.packbits(batch.present[name]).tobytes())
                blocks.append(np.packbits(batch.notnone[name]).tobytes())
            if code in (_DENSE_COL, _MIXED_COL):
                data = batch.values[name]
                if kind == _KIND_STR and remap is not None:
                    data = np.where(
                        data >= 0, remap[np.maximum(data, 0)],
                        np.int32(-1),
                    ).astype(np.int32)
                blocks.append(np.ascontiguousarray(
                    data, dtype=_KIND_DTYPES[kind]
                ).tobytes())
        header = _BATCH_HEADER.pack(_BATCH_MAGIC, batch.n, len(shard.columns))
        frame = b"".join([header, codes.tobytes(), kinds.tobytes()] + blocks)
        if fresh:
            payload = "".join(json.dumps(s) + "\n" for s in fresh)
            with open(shard.sidecar, "a", encoding="utf-8") as stream:
                stream.write(payload)
                stream.flush()
                os.fsync(stream.fileno())
            shard.sidecar_size += len(payload.encode("utf-8"))
        with open(shard.dat, "ab") as stream:
            stream.write(frame)
            stream.flush()
            os.fsync(stream.fileno())


class _Torn(Exception):
    """Internal: the final record batch ends before its blocks do."""


def _parse_spec(payload: str) -> Optional[Any]:
    """Revalidate an embedded spec payload; degrade to None like
    :meth:`RunResult.from_record` does."""
    from repro.errors import SpecError
    from repro.spec.specs import ScenarioSpec

    try:
        return ScenarioSpec.from_dict(json.loads(payload))
    except (SpecError, json.JSONDecodeError):
        return None


#: backend= choices accepted by ResultStore and the CLI.
BACKEND_CHOICES = ("auto", "jsonl", "columnar")


def make_backend(
    path: Optional[PathLike], backend: Optional[str] = None
) -> StoreBackend:
    """Resolve (path, backend name) to a StoreBackend instance.

    ``backend=None``/``"auto"`` selects by path: a ``.colstore`` suffix
    means columnar, anything else (including no path) keeps JSONL
    semantics.  Pass ``"jsonl"`` or ``"columnar"`` to override.
    """
    if path is None:
        return MemoryBackend()
    path = os.fspath(path)
    choice = backend or "auto"
    if choice == "auto":
        choice = "columnar" if path.endswith(COLUMNAR_SUFFIX) else "jsonl"
    if choice == "jsonl":
        return JsonlBackend(path)
    if choice == "columnar":
        return ColumnarBackend(path)
    raise ResultStoreError(
        f"unknown store backend {backend!r} (choices: {BACKEND_CHOICES})"
    )
