"""The typed, frozen result of one scenario run.

A :class:`RunResult` is the one shape every analysis tool consumes: a
spec hash (the cache/resume key), the grid-point overrides that produced
it, the metric columns contributed by :mod:`repro.results.metrics`
extractors, and — optionally — decimated traces.  It replaces the ad-hoc
scalar dicts the sweep runner used to ship between processes, and it
round-trips losslessly through plain-dict records, which is what the
JSONL :class:`~repro.results.store.ResultStore` persists.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import SpecError
from repro.results.metrics import ERROR_COLUMN, extract_metrics, result_columns

#: Record layout version; bump when the persisted shape changes.
RECORD_SCHEMA = 1

#: Error prefix marking a *worker* crash (pool/pickling/OOM) rather than
#: a scenario that deterministically failed.  Crash rows are transient:
#: they are never persisted to a store, resume recomputes them, and
#: store compaction drops any left behind by older stores.  Defined
#: here (not in the runner) so the results layer can classify rows
#: without importing the execution stack.
WORKER_FAILURE_PREFIX = "worker failed: "

#: Error prefix marking a payload quarantined after exhausting its
#: supervised retries (see ``repro.spec.runner.SupervisionPolicy``).
#: Quarantine rows are deterministic *outcomes*: they persist, resume
#: treats them as satisfied, and ranking skips them like any error row.
QUARANTINE_PREFIX = "quarantined: "


def is_worker_crash_error(error: Optional[str]) -> bool:
    """True when an error message marks a transient worker crash."""
    return error is not None and error.startswith(WORKER_FAILURE_PREFIX)


def is_quarantined_error(error: Optional[str]) -> bool:
    """True when an error message marks a quarantined poison payload."""
    return error is not None and error.startswith(QUARANTINE_PREFIX)

#: Default cap on persisted trace samples: traces are evidence, not the
#: analysis substrate, so they are decimated down to a plottable size.
MAX_TRACE_SAMPLES = 2048


def content_hash(payload: Mapping[str, Any]) -> str:
    """Deterministic sha256 over a JSON-able mapping (sorted keys)."""
    try:
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=True
        )
    except (TypeError, ValueError) as error:
        raise SpecError(f"payload is not hashable as JSON: {error}") from error
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def spec_hash(spec: Any) -> str:
    """The cache/resume key of a scenario: sha256 of its canonical dict.

    Accepts a :class:`~repro.spec.specs.ScenarioSpec` or its plain-dict
    form.  Two specs hash equal exactly when their serialized forms are
    equal — which is why reproducibility inputs (e.g. the ``seed`` field)
    must live in the spec, not beside it.
    """
    payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
    if not isinstance(payload, Mapping):
        raise SpecError(
            f"spec_hash wants a ScenarioSpec or mapping, got {type(spec).__name__}"
        )
    return content_hash(payload)


def _decimate_trace(trace: Any, max_samples: int) -> Dict[str, List[float]]:
    stride = max(1, int(np.ceil(len(trace) / max_samples))) if max_samples else 1
    return {
        "times": [float(t) for t in trace.times[::stride]],
        "values": [float(v) for v in trace.values[::stride]],
    }


@dataclass(frozen=True)
class RunResult:
    """One scenario run, summarized: the pipeline's unit of exchange.

    Attributes:
        spec_hash: canonical hash of the producing spec (or of an
            explicit key payload for imperatively wired runs) — the
            dedupe/resume key.
        name: scenario name, for grouping store queries.
        overrides: the sweep-grid overrides this point applied.
        metrics: every registry column (missing ones None) plus
            ``error`` — None unless the point failed.
        traces: optional decimated traces, ``name -> {times, values}``.
        index: position in the producing grid (-1 when standalone).
        spec: the producing :class:`ScenarioSpec` when locally known;
            reattached on load when the record carries a spec payload.
    """

    spec_hash: str
    name: str
    overrides: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    traces: Optional[Dict[str, Dict[str, List[float]]]] = None
    index: int = -1
    spec: Optional[Any] = None

    # -- typed views -----------------------------------------------------

    @property
    def error(self) -> Optional[str]:
        """The failure message, or None for a run that completed."""
        return self.metrics.get(ERROR_COLUMN)

    @property
    def ok(self) -> bool:
        """True when the point ran (its metrics are meaningful)."""
        return self.error is None

    def __getitem__(self, key: str) -> Any:
        """Column access: overrides first, then metrics, then ``name``."""
        if key in self.overrides:
            return self.overrides[key]
        if key in self.metrics:
            return self.metrics[key]
        if key == "name":
            return self.name
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def trace(self, name: str = "vcc"):
        """A captured trace as a :class:`~repro.sim.probes.Trace`."""
        if not self.traces or name not in self.traces:
            raise SpecError(
                f"run {self.name!r} captured no trace {name!r}; available: "
                f"{sorted(self.traces or [])}"
            )
        from repro.sim.probes import Trace

        payload = self.traces[name]
        return Trace(name, payload["times"], payload["values"])

    # -- construction ----------------------------------------------------

    @classmethod
    def from_system_run(
        cls,
        run: Any,
        spec: Optional[Any] = None,
        *,
        overrides: Optional[Mapping[str, Any]] = None,
        index: int = -1,
        name: Optional[str] = None,
        key_payload: Optional[Mapping[str, Any]] = None,
        capture_traces: tuple = (),
        max_trace_samples: int = MAX_TRACE_SAMPLES,
    ) -> "RunResult":
        """Summarize a finished :class:`SystemRunResult` via the registry.

        Spec-driven runs key on :func:`spec_hash`; imperatively wired
        runs pass ``key_payload`` (any JSON-able description of the
        conditions) and ``name`` instead.
        """
        if spec is not None:
            key = spec_hash(spec)
            run_name = name if name is not None else spec.name
        elif key_payload is not None:
            key = content_hash(key_payload)
            run_name = name if name is not None else "run"
        else:
            raise SpecError("RunResult needs a spec or a key_payload")
        traces = None
        if capture_traces:
            traces = {}
            for trace_name in capture_traces:
                if trace_name not in run.traces:
                    raise SpecError(
                        f"run recorded no trace {trace_name!r}; available: "
                        f"{sorted(run.traces)}"
                    )
                traces[trace_name] = _decimate_trace(
                    run.traces[trace_name], max_trace_samples
                )
        return cls(
            spec_hash=key,
            name=run_name,
            overrides=dict(overrides or {}),
            metrics=extract_metrics(run, spec),
            traces=traces,
            index=index,
            spec=spec,
        )

    @classmethod
    def failed(
        cls,
        error: str,
        *,
        spec_hash: str,
        name: str = "run",
        overrides: Optional[Mapping[str, Any]] = None,
        index: int = -1,
        spec: Optional[Any] = None,
    ) -> "RunResult":
        """An all-None summary carrying a failure message."""
        from repro.results.metrics import empty_metrics

        metrics = empty_metrics()
        metrics[ERROR_COLUMN] = error
        return cls(
            spec_hash=spec_hash,
            name=name,
            overrides=dict(overrides or {}),
            metrics=metrics,
            index=index,
            spec=spec,
        )

    # -- serialization ---------------------------------------------------

    def to_record(self) -> Dict[str, Any]:
        """The plain-dict persisted form (one JSONL line's payload)."""
        record: Dict[str, Any] = {
            "schema": RECORD_SCHEMA,
            "spec_hash": self.spec_hash,
            "name": self.name,
            "overrides": dict(self.overrides),
            "metrics": dict(self.metrics),
        }
        if self.traces:
            record["traces"] = self.traces
        if self.spec is not None and hasattr(self.spec, "to_dict"):
            record["spec"] = self.spec.to_dict()
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunResult":
        """Rebuild from :meth:`to_record` output.

        The embedded spec payload is revalidated through
        ``ScenarioSpec.from_dict``; a payload the current code no longer
        accepts degrades to ``spec=None`` rather than poisoning the load
        — the metrics row is still queryable.
        """
        for key in ("spec_hash", "name", "metrics"):
            if key not in record:
                raise SpecError(f"result record is missing {key!r}")
        schema = record.get("schema", RECORD_SCHEMA)
        if schema != RECORD_SCHEMA:
            raise SpecError(
                f"result record schema {schema!r} is not supported "
                f"(expected {RECORD_SCHEMA})"
            )
        spec = None
        if "spec" in record:
            from repro.spec.specs import ScenarioSpec

            try:
                spec = ScenarioSpec.from_dict(record["spec"])
            except SpecError:
                spec = None
        return cls(
            spec_hash=record["spec_hash"],
            name=record["name"],
            overrides=dict(record.get("overrides", {})),
            metrics=dict(record["metrics"]),
            traces=record.get("traces"),
            spec=spec,
        )

    def with_context(self, *, index: int, spec: Any = None) -> "RunResult":
        """A copy re-anchored to a local grid position (resume path)."""
        return dataclasses.replace(
            self, index=index, spec=spec if spec is not None else self.spec
        )

    def columns(self) -> List[str]:
        """Override keys then the full registry column set."""
        return list(self.overrides) + result_columns()
