"""Persistent, mergeable storage for :class:`RunResult` rows.

A :class:`ResultStore` is the query surface of the results pipeline:
spec-hash keyed in memory, persisted through a pluggable
:class:`~repro.results.backends.StoreBackend` so results survive process
exit and interrupted sweeps resume instead of recomputing.  Two durable
backends ship (see :mod:`repro.results.backends`): append-only JSONL
(one record per line — the portable default) and a sharded columnar
format (``.colstore`` directories of numpy column blocks — the
fleet-scale analytics store).  Shards written by separate processes or
machines merge by hash — the sweep grid is the unit of distribution.

Durability model: records are flushed per append (or once per
:meth:`batch`), and a load tolerates a torn tail — the signature of a
process killed mid-write — by dropping it and compacting; corruption
anywhere earlier raises, because silently skipping interior rows would
misreport a sweep as complete.  Every load, append and rewrite holds an
advisory file lock, and compaction re-reads the file under that lock,
so concurrent writers (a live ``repro serve`` plus a CLI merge) never
lose durable rows.
"""

from __future__ import annotations

import math
import os
import time
import warnings
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro import obs
from repro.errors import ResultStoreError
from repro.results.backends import (
    BACKEND_CHOICES,
    ColumnarBackend,
    StoreBackend,
    make_backend,
)
from repro.results.metrics import result_columns
from repro.results.run_result import RunResult, is_worker_crash_error

__all__ = ["ResultStore", "rankable_results", "BACKEND_CHOICES"]

PathLike = Union[str, "os.PathLike[str]"]


class ResultStore:
    """Columnar queries over run results, with pluggable persistence.

    Args:
        path: the backing file (JSONL) or directory (``.colstore``) to
            load from and append to.  None keeps the store purely in
            memory (the default for one-shot sweeps).
        backend: ``"auto"`` (default) selects by path suffix —
            ``.colstore`` means the sharded columnar backend, anything
            else JSONL; pass ``"jsonl"``/``"columnar"`` to override.

    Iteration order is insertion order (load order, then append order),
    so a store round-trips its table layout.
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        backend: Optional[str] = None,
    ):
        self._backend: StoreBackend = make_backend(path, backend)
        self.path = self._backend.path
        #: Lazily-loaded row index (hash -> RunResult); None until the
        #: first access so pure block-move operations (columnar shard
        #: merges) never materialize a million Python objects.
        self._rows: Optional[Dict[str, RunResult]] = None
        #: Buffered rows while a :meth:`batch` is open, else None.
        self._pending: Optional[List[RunResult]] = None
        #: True when an overwrite happened mid-batch: compaction is
        #: deferred to batch exit (one rewrite, not one per overwrite).
        self._dirty = False
        if self._backend.ephemeral:
            self._rows = {}

    @property
    def backend(self) -> str:
        """The persistence backend name: memory, jsonl or columnar."""
        return self._backend.name

    @property
    def _results(self) -> Dict[str, RunResult]:
        """The row index, loading from the backend on first access."""
        if self._rows is None:
            t0 = time.monotonic()
            stale_crashes = 0
            with obs.span("store.load", backend=self.backend) as lspan:
                rows: Dict[str, RunResult] = {}
                for result in self._backend.load():
                    if is_worker_crash_error(result.error):
                        # Transient worker-crash rows (left behind by
                        # older stores; the runner no longer persists
                        # them) would be skipped on every resume but
                        # grow the file forever — drop them here and
                        # compact below.
                        stale_crashes += 1
                        continue
                    rows.setdefault(result.spec_hash, result)
                self._rows = rows
                lspan.annotate(rows=len(rows))
            obs.histogram(
                "repro_store_load_seconds", backend=self.backend
            ).observe(time.monotonic() - t0)
            obs.counter(
                "repro_store_rows_loaded_total", backend=self.backend
            ).inc(len(rows))
            if stale_crashes:
                obs.counter(
                    "repro_store_crash_rows_dropped_total",
                    backend=self.backend,
                ).inc(stale_crashes)
                self._rewrite()
        return self._rows

    # -- persistence -----------------------------------------------------

    def _rewrite(self) -> None:
        """Compact the backing store to the in-memory records.

        The backend re-reads the file under its lock and preserves any
        durable rows another process appended since our load; those
        strangers fold back into the in-memory index so they are not
        recomputed later.  Stranger worker-crash rows are not folded
        back (they are transient; the next load of this store drops
        and compacts them).
        """
        t0 = time.monotonic()
        with obs.span(
            "store.compact", backend=self.backend, rows=len(self._results)
        ):
            for result in self._backend.rewrite(list(self._results.values())):
                if is_worker_crash_error(result.error):
                    continue
                self._results.setdefault(result.spec_hash, result)
        obs.counter(
            "repro_store_compactions_total", backend=self.backend
        ).inc()
        obs.histogram(
            "repro_store_compact_seconds", backend=self.backend
        ).observe(time.monotonic() - t0)
        if self._pending is not None:
            # Every in-memory record — including any buffered ones — is
            # now durably on disk; appending the buffer again on batch
            # exit would duplicate rows.
            self._pending.clear()
            self._dirty = False

    @contextmanager
    def batch(self):
        """Buffer appends; one write-and-fsync when the block exits.

        Inside the ``with`` block, :meth:`add` updates the in-memory
        index immediately (lookups and dedupe behave normally) but
        queues the rows instead of paying a write + fsync per row; on
        exit the whole buffer lands in a single append.  Overwrites
        inside a batch defer their compaction to batch exit too — one
        rewrite covers the lot, instead of a full-file rewrite per
        overwritten row (O(n²) on overwrite-heavy batches).  A crash
        mid-flush tears at most the final line (JSONL) or final record
        batch (columnar), which the loader's torn-tail recovery drops —
        earlier rows stay durable.  Nesting is flattening: inner
        batches join the outermost one.  The workhorse of
        sweep/exploration workers, whose per-point fsync used to
        dominate small-grid throughput.
        """
        if self._backend.ephemeral or self._pending is not None:
            yield self
            return
        self._pending = []
        self._dirty = False
        try:
            yield self
        finally:
            pending, self._pending = self._pending, None
            dirty, self._dirty = self._dirty, False
            if dirty:
                self._rewrite()
            elif pending:
                # The append (and its fsync) is the batch's one durable
                # write; the histogram therefore measures flush+fsync.
                t0 = time.monotonic()
                with obs.span(
                    "store.append", backend=self.backend, rows=len(pending)
                ):
                    self._backend.append_many(pending)
                obs.histogram(
                    "repro_store_append_seconds", backend=self.backend
                ).observe(time.monotonic() - t0)
                obs.counter(
                    "repro_store_rows_appended_total", backend=self.backend
                ).inc(len(pending))

    # -- mutation --------------------------------------------------------

    def add(self, result: RunResult, overwrite: bool = False) -> bool:
        """Insert one result; returns False for an already-known hash.

        ``overwrite=True`` replaces the stored row (and compacts the
        file so the stale record does not shadow-resume later; inside a
        :meth:`batch` the compaction is deferred to batch exit).
        Re-adding a record identical to the stored one is a no-op —
        deterministic re-runs over a populated store cost no I/O.
        """
        known = self._results.get(result.spec_hash)
        if known is not None:
            if not overwrite or known.to_record() == result.to_record():
                obs.counter(
                    "repro_store_dedupe_hits_total", backend=self.backend
                ).inc()
                return False
            self._results[result.spec_hash] = result
            if self._backend.ephemeral:
                return True
            if self._pending is not None:
                self._dirty = True
            else:
                self._rewrite()
        else:
            self._results[result.spec_hash] = result
            if self._pending is not None:
                self._pending.append(result)
            else:
                self._backend.append(result)
                obs.counter(
                    "repro_store_rows_appended_total", backend=self.backend
                ).inc()
        return True

    def merge(self, other: Union["ResultStore", PathLike]) -> int:
        """Fold another store (or shard path) in; returns rows absorbed.

        First-writer-wins on hash collisions — shards of one sweep hold
        identical rows for identical hashes, so order doesn't matter.
        The absorbed rows land in one batched flush, not one fsync per
        row.
        """
        if not isinstance(other, ResultStore):
            other = ResultStore(other)
        absorbed = 0
        t0 = time.monotonic()
        with obs.span("store.merge", backend=self.backend) as mspan:
            with self.batch():
                for result in other:
                    if self.add(result):
                        absorbed += 1
            mspan.annotate(absorbed=absorbed)
        obs.histogram(
            "repro_store_merge_seconds", backend=self.backend
        ).observe(time.monotonic() - t0)
        obs.counter(
            "repro_store_rows_merged_total", backend=self.backend
        ).inc(absorbed)
        return absorbed

    @classmethod
    def merge_shards(
        cls,
        shards: Iterable[PathLike],
        output: Optional[PathLike] = None,
        backend: Optional[str] = None,
    ) -> "ResultStore":
        """Combine shard stores (one per worker/machine) into one store.

        This is the fleet ingest path.  When the output store and every
        shard are columnar, rows move as whole column blocks with
        vectorized hash dedupe (``np.isin``) — no per-row Python work —
        which is an order of magnitude faster than row-wise merging at
        million-row scale (see ``benchmarks/perf/perf_store.py``).
        Mixed or JSONL shards fall back to row-wise merge with one
        batched flush per shard.
        """
        shard_paths = [os.fspath(shard) for shard in shards]
        for shard in shard_paths:
            if not os.path.exists(shard):
                raise ResultStoreError(f"shard {shard!r} not found")
        store = cls(output, backend=backend)
        if (
            isinstance(store._backend, ColumnarBackend)
            and store._backend.can_bulk_merge(shard_paths)
        ):
            with obs.span(
                "store.merge", backend=store.backend, bulk=True,
                shards=len(shard_paths),
            ):
                store._backend.bulk_merge(shard_paths)
            # The blocks moved without materializing; drop any loaded
            # index so the next query reads the merged state.
            store._rows = None
        else:
            for shard in shard_paths:
                store.merge(shard)
        return store

    # -- lookup ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self._results.values())

    def __contains__(self, spec_hash: str) -> bool:
        return spec_hash in self._results

    def get(self, spec_hash: str) -> Optional[RunResult]:
        """The stored result for a spec hash, or None."""
        return self._results.get(spec_hash)

    def results(self) -> List[RunResult]:
        """Every stored result, in insertion order."""
        return list(self._results.values())

    # -- queries ---------------------------------------------------------

    def select(
        self,
        where: Optional[Callable[[RunResult], bool]] = None,
        **equals: Any,
    ) -> List[RunResult]:
        """Rows matching a predicate and/or column equality filters.

        ``store.select(name="crossover-hibernus")`` or
        ``store.select(lambda r: r.ok and r["completed"])``.
        """
        selected = []
        for result in self:
            if where is not None and not where(result):
                continue
            if any(result.get(k, _MISSING) != v for k, v in equals.items()):
                continue
            selected.append(result)
        return selected

    def ok(self) -> List[RunResult]:
        """Rows that ran without a pipeline error."""
        return [result for result in self if result.ok]

    def values(
        self, column: str, where: Optional[Callable[[RunResult], bool]] = None
    ) -> List[Any]:
        """One column across (optionally filtered) rows, insertion order."""
        return [result.get(column) for result in self.select(where)]

    def best(self, metric: str, minimize: bool = True) -> RunResult:
        """The row optimising ``metric`` among rows that recorded it.

        Error rows, rows whose value is non-finite (NaN/inf), and
        sub-full-fidelity screening rows are skipped with a warning
        instead of corrupting the ranking — an error row still carries
        its override columns, a NaN makes ``min``/``max``
        order-dependent, and a shortened-horizon row accumulates less
        of everything (see :func:`rankable_results`).  Filter with
        :meth:`select` to rank such rows deliberately.
        """
        candidates = rankable_results(self, (metric,), describe=f"best({metric!r})")
        if not candidates:
            raise ResultStoreError(f"no stored result recorded {metric!r}")
        return (min if minimize else max)(candidates, key=lambda r: r[metric])

    # -- tabular views ---------------------------------------------------

    def override_keys(self) -> List[str]:
        """Override columns in first-seen order across the store."""
        keys: List[str] = []
        for result in self:
            for key in result.overrides:
                if key not in keys:
                    keys.append(key)
        return keys

    def columns(self) -> List[str]:
        """Table layout: override columns then the registry columns."""
        return self.override_keys() + result_columns()

    def rows(self) -> List[List[Any]]:
        """One row per result, matching :meth:`columns`."""
        columns = self.columns()
        return [[result.get(column) for column in columns] for result in self]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Each result as one flat record (overrides merged with metrics)."""
        return [dict(r.overrides, **r.metrics) for r in self]

    def table(self, floatfmt: str = "{:.4g}") -> str:
        """The store as an aligned text table (see ``repro results``)."""
        from repro.analysis.report import format_table

        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, bool):
                return "yes" if value else "no"
            if isinstance(value, float):
                return floatfmt.format(value)
            return str(value)

        return format_table(
            self.columns(), [[fmt(cell) for cell in row] for row in self.rows()]
        )


def _is_screening_row(result: RunResult) -> bool:
    """True for rows evaluated below full fidelity.

    The exploration driver stamps sub-full-fidelity evaluations with a
    ``fidelity`` override; their accumulated metrics (energy, time,
    cycles) cover a shortened horizon, so ranking them against
    full-horizon rows would systematically crown a screening artifact.
    """
    fidelity = result.overrides.get("fidelity")
    return (
        isinstance(fidelity, (int, float))
        and not isinstance(fidelity, bool)
        and fidelity < 1.0
    )


def rankable_results(
    results: Iterable[RunResult],
    columns: "tuple[str, ...]",
    *,
    describe: str,
    noun: str = "row",
) -> List[RunResult]:
    """The rows usable for ranking on ``columns``; warns about the rest.

    The one skip policy every ranking query (`best`, `--pareto`)
    shares.  Usable rows ran clean at full fidelity and recorded a
    finite value in every column.  Skipped **with a warning** (they
    could otherwise corrupt a ranking): error rows that carry any
    queried column via their overrides, non-finite (NaN/inf) or
    non-numeric values, and sub-full-fidelity screening rows.  Rows
    simply missing a column (not applicable, including error rows that
    recorded none of them) stay silent — matching the historical
    "among rows that recorded it" contract without warning about
    unrelated failures.  ``describe`` labels the warning with the
    originating query.
    """
    def rankable(value: Any) -> bool:
        return isinstance(value, (int, float)) and math.isfinite(float(value))

    candidates: List[RunResult] = []
    skipped = 0
    for result in results:
        values = [result.get(column) for column in columns]
        if not result.ok:
            if any(value is not None for value in values):
                skipped += 1
        elif any(value is None for value in values):
            continue
        elif _is_screening_row(result):
            skipped += 1
        elif all(rankable(value) for value in values):
            candidates.append(result)
        else:
            skipped += 1
    if skipped:
        warnings.warn(
            f"{describe}: skipped {skipped} {noun}(s) with errors, "
            "sub-full fidelity, or non-finite values",
            stacklevel=3,
        )
    return candidates


class _Missing:
    def __eq__(self, other: Any) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
