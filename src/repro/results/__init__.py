"""repro.results: the unified results pipeline.

Three pieces (see DESIGN.md, "Results pipeline"):

* :mod:`repro.results.metrics` — the string-keyed metric-extractor
  registry: each layer contributes result columns via
  ``@register_metric`` instead of the sweep runner hard-coding them.
* :mod:`repro.results.run_result` — the frozen, typed :class:`RunResult`
  (spec hash + overrides + metrics + optional decimated traces) every
  analysis tool consumes, and the canonical :func:`spec_hash`.
* :mod:`repro.results.store` — :class:`ResultStore`: hash-keyed columnar
  queries with pluggable persistence, partial-write recovery and shard
  merging; the substrate of resumable sweeps.
* :mod:`repro.results.backends` — the :class:`StoreBackend` protocol and
  its implementations: append-only JSONL (portable default) and the
  sharded columnar ``.colstore`` format (fleet-scale analytics).

Only the registry loads eagerly — the rest follows the lazy-init pattern
of :mod:`repro.spec` so component modules can register extractors at
class-definition time without cycles.
"""

from repro.results.metrics import (
    ERROR_COLUMN,
    empty_metrics,
    ensure_extractors,
    extract_metrics,
    extractor_names,
    metric_columns,
    register_metric,
    result_columns,
)

_LAZY = {
    "RunResult": "repro.results.run_result",
    "spec_hash": "repro.results.run_result",
    "content_hash": "repro.results.run_result",
    "RECORD_SCHEMA": "repro.results.run_result",
    "ResultStore": "repro.results.store",
    "rankable_results": "repro.results.store",
    "StoreBackend": "repro.results.backends",
    "JsonlBackend": "repro.results.backends",
    "ColumnarBackend": "repro.results.backends",
    "MemoryBackend": "repro.results.backends",
    "make_backend": "repro.results.backends",
    "BACKEND_CHOICES": "repro.results.backends",
    "COLUMNAR_SUFFIX": "repro.results.backends",
}

__all__ = [
    "ERROR_COLUMN",
    "register_metric",
    "ensure_extractors",
    "extract_metrics",
    "extractor_names",
    "metric_columns",
    "result_columns",
    "empty_metrics",
    *_LAZY,
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.results' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
