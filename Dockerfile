# The simulation service, containerised.  Stdlib-only at runtime: the
# image is the Python base plus this package — no service dependencies.
#
#   docker build -t repro-serve .
#   docker run -p 8000:8000 -v "$PWD/data:/data" repro-serve
#
# or use the committed docker-compose.yml.
FROM python:3.11-slim

WORKDIR /app
COPY pyproject.toml README.md ./
COPY src ./src
RUN pip install --no-cache-dir .

# The store volume: results (runs.jsonl) and job history
# (runs.jsonl.jobs) survive container restarts; a restarted service
# marks in-flight jobs interrupted and resumed sweeps recompute only
# missing points.
VOLUME /data

EXPOSE 8000

# PID 1 receives docker stop's SIGTERM directly (exec form, no shell):
# the service's signal handlers mark in-flight jobs interrupted and
# reap the warm worker pool before exit.
CMD ["repro", "serve", "--host", "0.0.0.0", "--port", "8000", \
     "--store", "/data/runs.jsonl"]
