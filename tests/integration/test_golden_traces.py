"""Golden-trace regression tests for the simulation kernels.

Compact reference ``vcc`` traces for the paper presets are checked in
under ``tests/data/golden/``.  Every run must reproduce them:

* the **reference kernel** exactly — bit-for-bit float equality, since
  JSON floats round-trip exactly and the kernel is deterministic;
* the **fast kernel** within ``atol=1e-9`` — its vectorized source
  evaluation (numpy sin vs libm sin) may differ by an ulp, which the
  contractive rail dynamics keep at the 1e-13 level.

Regenerate after an *intentional* physics change with::

    PYTHONPATH=src:. python tests/integration/test_golden_traces.py --regen

and say why in the commit message — these files pin the simulator's
physics, not an implementation detail.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.spec.presets import preset

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data" / "golden"

#: preset name -> (overrides, trace decimation for the stored samples).
GOLDEN_CASES = {
    "fig7": ({}, 50),
    "crossover-hibernus": ({}, 25),
    "crossover-quickrecall": ({}, 25),
}

FAST_ATOL = 1e-9


def _compute(name: str, overrides: dict, decimate: int, kernel: str) -> dict:
    spec = preset(name).with_overrides(dict(overrides, kernel=kernel))
    result = spec.run()
    vcc = result.vcc()
    return {
        "preset": name,
        "overrides": overrides,
        "decimate": decimate,
        "kernel_tolerance": FAST_ATOL,
        "t_end": result.t_end,
        "n_steps": len(vcc),
        "values": [float(v) for v in vcc.values[::decimate]],
    }


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def _load(name: str) -> dict:
    return json.loads(_golden_path(name).read_text(encoding="utf-8"))


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_reference_kernel_reproduces_golden_exactly(name):
    overrides, decimate = GOLDEN_CASES[name]
    golden = _load(name)
    fresh = _compute(name, overrides, decimate, kernel="reference")
    assert fresh["t_end"] == golden["t_end"]
    assert fresh["n_steps"] == golden["n_steps"]
    assert fresh["values"] == golden["values"], (
        "reference kernel no longer reproduces the golden vcc trace "
        f"for {name} bit-for-bit"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_fast_kernel_matches_golden_within_tolerance(name):
    overrides, decimate = GOLDEN_CASES[name]
    golden = _load(name)
    fresh = _compute(name, overrides, decimate, kernel="fast")
    # Event timing (stop-on-completion, state transitions) must agree
    # exactly; only the voltage samples carry the ulp-level tolerance.
    assert fresh["t_end"] == golden["t_end"]
    assert fresh["n_steps"] == golden["n_steps"]
    diff = np.max(np.abs(np.asarray(fresh["values"])
                         - np.asarray(golden["values"])))
    assert diff <= FAST_ATOL, (
        f"fast kernel diverged from the {name} golden trace: "
        f"max |dV| = {diff:.3e}"
    )


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, (overrides, decimate) in GOLDEN_CASES.items():
        payload = _compute(name, overrides, decimate, kernel="reference")
        path = _golden_path(name)
        path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        print(f"wrote {path} ({len(payload['values'])} samples)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
