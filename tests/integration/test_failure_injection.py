"""Failure injection: the unhappy paths of transient computing.

Single-slot snapshot stores that lose everything mid-write, supplies that
die during every snapshot, restores interrupted halfway, stack exhaustion
in the interpreter, and NVM wear accounting under snapshot storms.
"""

import pytest

from repro.errors import MachineError
from repro.mcu.assembler import assemble
from repro.mcu.engine import SyntheticEngine
from repro.mcu.machine import Machine, MachineConfig
from repro.transient.base import (
    PlatformState,
    SnapshotStore,
    TransientPlatform,
    TransientPlatformConfig,
)
from repro.transient.hibernus import Hibernus

from tests.conftest import make_counter_platform, run_intermittent


def drive(platform, profile, dt=1e-4):
    """Step a platform through a list of (duration, voltage) segments."""
    t = 0.0
    for duration, voltage in profile:
        end = t + duration
        while t < end:
            platform.advance(t, dt, voltage)
            t += dt
    return t


def test_single_slot_store_loses_snapshot_on_aborted_write():
    engine = SyntheticEngine(total_cycles=10**9)
    platform = TransientPlatform(
        engine,
        Hibernus(v_hibernate=2.5, v_restore=3.0),
        store=SnapshotStore(slots=1),
        config=TransientPlatformConfig(rail_capacitance=22e-6),
    )
    # Boot, run, snapshot completes once.
    drive(platform, [(0.001, 3.2), (0.002, 3.2)])
    platform.advance(0.01, 1e-4, 2.4)  # triggers snapshot
    t = 0.011
    while platform.state is PlatformState.SNAPSHOT:
        platform.advance(t, 1e-4, 2.4)
        t += 1e-4
    assert platform.store.has_snapshot()
    # Wake, run again, start another snapshot — then kill the supply
    # mid-write.  With one slot the committed snapshot is overwritten.
    platform.advance(t, 1e-4, 3.2)          # sleep -> restore path
    while platform.state is PlatformState.RESTORE:
        t += 1e-4
        platform.advance(t, 1e-4, 3.2)
    platform.advance(t + 1e-4, 1e-4, 2.4)   # second snapshot begins
    platform.advance(t + 2e-4, 1e-4, 2.4)   # one step of writing
    platform.advance(t + 3e-4, 1e-4, 0.5)   # supply dies mid-write
    assert not platform.store.has_snapshot()
    assert platform.metrics.snapshots_aborted == 1


def test_two_slot_store_survives_the_same_abort():
    engine = SyntheticEngine(total_cycles=10**9)
    platform = TransientPlatform(
        engine,
        Hibernus(v_hibernate=2.5, v_restore=3.0),
        store=SnapshotStore(slots=2),
        config=TransientPlatformConfig(rail_capacitance=22e-6),
    )
    drive(platform, [(0.001, 3.2), (0.002, 3.2)])
    platform.advance(0.01, 1e-4, 2.4)
    t = 0.011
    while platform.state is PlatformState.SNAPSHOT:
        platform.advance(t, 1e-4, 2.4)
        t += 1e-4
    first_progress = platform.store.latest()
    platform.advance(t, 1e-4, 3.2)
    while platform.state is PlatformState.RESTORE:
        t += 1e-4
        platform.advance(t, 1e-4, 3.2)
    platform.advance(t + 1e-4, 1e-4, 2.4)
    platform.advance(t + 2e-4, 1e-4, 2.4)
    platform.advance(t + 3e-4, 1e-4, 0.5)
    assert platform.store.has_snapshot()
    assert platform.store.latest() == first_progress


def test_repeated_abort_storm_still_makes_progress_eventually():
    """A supply that kills the first snapshots eventually lets one through;
    the platform must not wedge."""
    platform = make_counter_platform(Hibernus(), target=25000)
    # Harsh: short on-phases early (aborts), then a clean supply.
    run_intermittent(platform, duration=1.0, period=0.05, duty=0.3,
                     bleed_resistance=3000.0)
    run_intermittent_metrics = platform.metrics.snapshots_aborted
    run_intermittent(platform, duration=3.0)  # normal conditions resume
    assert platform.metrics.first_completion_time is not None or (
        platform.engine.machine.output_port.log == [25000]
    )


def test_restore_interrupted_then_retried():
    engine = SyntheticEngine(total_cycles=10**9)
    platform = TransientPlatform(
        engine,
        Hibernus(v_hibernate=2.5, v_restore=3.0),
        config=TransientPlatformConfig(rail_capacitance=22e-6),
    )
    drive(platform, [(0.001, 3.2), (0.003, 3.2)])
    platform.advance(0.01, 1e-4, 2.4)
    t = 0.011
    while platform.state is PlatformState.SNAPSHOT:
        platform.advance(t, 1e-4, 2.4)
        t += 1e-4
    saved = platform.store.latest()
    # Supply recovers; restore begins; supply dies mid-restore.
    platform.advance(t, 1e-4, 3.2)
    assert platform.state is PlatformState.RESTORE
    platform.advance(t + 1e-4, 1e-4, 0.5)
    assert platform.metrics.restores_aborted == 1
    assert platform.store.has_snapshot()  # NVM copy untouched
    # Recovery: boot again, restore retries and succeeds.
    t += 2e-4
    platform.advance(t, 1e-4, 3.2)
    while platform.state is PlatformState.RESTORE:
        t += 1e-4
        platform.advance(t, 1e-4, 3.2)
    assert platform.metrics.restores_completed == 1
    assert engine.executed == saved


def test_nvm_wear_accounting_accumulates():
    platform = make_counter_platform(Hibernus(), target=25000)
    run_intermittent(platform, duration=3.0)
    snapshots = platform.metrics.snapshots_completed + platform.metrics.snapshots_aborted
    expected_min = snapshots * platform.engine.full_state_words
    assert platform.store.words_written >= expected_min > 0


def test_stack_exhaustion_raises_machine_error():
    """Unbounded recursion must fail loudly, not scribble over data."""
    source = """
boom:
    call boom
    halt
"""
    machine = Machine(assemble(source), MachineConfig(data_space_words=32))
    with pytest.raises(MachineError, match="out of range"):
        machine.run(10**6)


def test_sleep_forever_on_dead_supply_consumes_only_off_power():
    platform = make_counter_platform(Hibernus())
    for i in range(100):
        platform.advance(i * 1e-3, 1e-3, 0.0)
    assert platform.metrics.energy["off"] > 0.0
    assert platform.metrics.energy["active"] == 0.0
    assert platform.metrics.cycles_executed == 0
