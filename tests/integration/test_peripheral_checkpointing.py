"""Peripheral-aware checkpointing: the paper's discussion-section gap.

§IV: "work to date has primarily focused on computation, and not the
plethora of peripherals that are typically present in embedded systems."

These tests make the gap measurable and then close it:

* Under Mementos, code between the last snapshot and a power failure is
  re-executed.  If that code read the ADC, the re-execution reads *new*
  samples — the stream has advanced — so the filtered output silently
  diverges from the uninterrupted reference ("sample slip").
* With peripheral-aware snapshots (``include_peripherals=True``) the ADC's
  stream position is captured and restored with the CPU state, and the
  output is bit-exact again, at the cost of a few NVM words per
  peripheral.
* Hibernus never re-executes (its snapshot is taken at the interruption
  itself), so it is immune even without the extension.
"""

import pytest

from repro.core.system import EnergyDrivenSystem
from repro.harvest.synthetic import SquareWavePowerHarvester
from repro.mcu.assembler import assemble
from repro.mcu.clock import ClockPlan, OperatingPoint
from repro.mcu.engine import MachineEngine
from repro.mcu.machine import Machine, MachineConfig
from repro.mcu.peripherals import ADCPeripheral, Radio, SensorPeripheral
from repro.mcu.programs import fir_golden, fir_program
from repro.power.rail import ResistiveLoad
from repro.storage.capacitor import Capacitor
from repro.transient.base import TransientPlatform, TransientPlatformConfig
from repro.transient.hibernus import Hibernus
from repro.transient.mementos import Mementos

N_SAMPLES = 96


def run_fir(strategy, include_peripherals):
    machine = Machine(
        assemble(fir_program(N_SAMPLES)), MachineConfig(data_space_words=128)
    )
    adc = ADCPeripheral()
    machine.attach_peripheral(0, adc)
    engine = MachineEngine(machine, include_peripherals=include_peripherals)
    platform = TransientPlatform(
        engine,
        strategy,
        clock=ClockPlan([OperatingPoint(1e5, 3.0)]),
        config=TransientPlatformConfig(rail_capacitance=22e-6),
    )
    system = EnergyDrivenSystem(dt=1e-4)
    system.set_storage(Capacitor(22e-6, v_max=3.3))
    system.add_power_source(SquareWavePowerHarvester(20e-3, period=0.1, duty=0.25))
    system.set_platform(platform)
    system.add_load(ResistiveLoad(6000.0))
    system.run(5.0)
    return platform, machine, adc


def test_mementos_without_peripheral_capture_slips_samples():
    platform, machine, adc = run_fir(Mementos(), include_peripherals=False)
    assert platform.metrics.first_completion_time is not None
    assert platform.metrics.restores_completed >= 1
    # Re-execution consumed extra ADC samples...
    assert adc._index > N_SAMPLES
    # ...so the output diverges from the uninterrupted reference.
    assert machine.output_port.last != fir_golden(N_SAMPLES)[1]


def test_mementos_with_peripheral_capture_is_bit_exact():
    platform, machine, adc = run_fir(Mementos(), include_peripherals=True)
    assert platform.metrics.first_completion_time is not None
    assert platform.metrics.restores_completed >= 1
    assert machine.output_port.last == fir_golden(N_SAMPLES)[1]


def test_hibernus_immune_without_extension():
    """Hibernus snapshots at the failure itself: nothing re-executes, so
    no reads replay and the result is exact even without the extension."""
    platform, machine, adc = run_fir(Hibernus(), include_peripherals=False)
    assert platform.metrics.first_completion_time is not None
    assert platform.metrics.snapshots_completed >= 1
    assert machine.output_port.last == fir_golden(N_SAMPLES)[1]


def test_peripheral_capture_costs_nvm_words():
    machine = Machine(assemble(fir_program(16)), MachineConfig(data_space_words=128))
    machine.attach_peripheral(0, ADCPeripheral())
    plain = MachineEngine(machine, include_peripherals=False)
    aware = MachineEngine(machine, include_peripherals=True)
    assert aware.full_state_words > plain.full_state_words


def test_adc_state_round_trip():
    adc = ADCPeripheral(seed=5)
    first = [adc.read() for _ in range(10)]
    state = adc.capture_state()
    replayed_tail = [adc.read() for _ in range(5)]
    adc.restore_state(state)
    assert [adc.read() for _ in range(5)] == replayed_tail


def test_sensor_state_round_trip():
    sensor = SensorPeripheral(seed=8)
    [sensor.read() for _ in range(7)]
    state = sensor.capture_state()
    tail = [sensor.read() for _ in range(5)]
    sensor.restore_state(state)
    assert [sensor.read() for _ in range(5)] == tail


def test_radio_queue_volatile_on_power_fail():
    radio = Radio()
    radio.write(1)
    radio.write(2)
    radio.on_power_fail()
    assert radio.queue == []
    # Already-transmitted packets belong to the world and survive.
    radio.write(3)
    radio.write(Radio.FLUSH)
    radio.on_power_fail()
    assert radio.packets == [[3]]


def test_radio_queue_capture_restore():
    radio = Radio()
    radio.write(9)
    state = radio.capture_state()
    radio.on_power_fail()
    radio.restore_state(state)
    radio.write(Radio.FLUSH)
    assert radio.packets == [[9]]
