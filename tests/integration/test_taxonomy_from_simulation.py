"""Closing the loop: simulated systems classify themselves on Fig. 2."""

from repro.core.taxonomy import (
    AdaptationClass,
    classify,
    descriptor_from_run,
)
from repro.storage.capacitor import Capacitor
from repro.transient.base import NullStrategy
from repro.transient.hibernus import Hibernus

from tests.conftest import make_counter_platform, run_intermittent


def test_simulated_hibernus_classifies_as_transient_energy_driven():
    platform = make_counter_platform(Hibernus(), target=25000)
    storage = Capacitor(22e-6, v_max=3.3)
    run_intermittent(platform, duration=4.0)

    descriptor = descriptor_from_run(
        "simulated hibernus", platform, storage, task_energy=5e-3
    )
    placement = classify(descriptor)
    assert placement.axis == "transient"
    assert placement.energy_driven
    # Decoupling-scale storage, task far larger than storage -> continuous.
    assert placement.adaptation is AdaptationClass.CONTINUOUS
    assert placement.autonomy_seconds < 1.0


def test_simulated_null_platform_classifies_as_traditional():
    platform = make_counter_platform(NullStrategy(), target=25000)
    storage = Capacitor(22e-6, v_max=3.3)
    run_intermittent(platform, duration=2.0)

    descriptor = descriptor_from_run("bare MCU", platform, storage)
    placement = classify(descriptor)
    assert placement.axis == "energy-neutral"
    assert not placement.energy_driven


def test_descriptor_detects_power_neutral_strategy():
    from repro.neutral.power_neutral import PowerNeutralHibernus

    platform = make_counter_platform(PowerNeutralHibernus(), target=25000)
    storage = Capacitor(22e-6, v_max=3.3)
    run_intermittent(platform, duration=1.0)
    descriptor = descriptor_from_run("simulated hibernus-PN", platform, storage)
    assert descriptor.power_neutral
    assert classify(descriptor).adaptation is AdaptationClass.CONTINUOUS
