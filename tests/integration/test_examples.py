"""The examples are part of the public API surface: they must run clean.

Each example is executed in-process (imported as a module and its main()
called) with stdout captured, and its key claims re-checked here.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys, **main_kwargs):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        module.main(**main_kwargs)
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "bit-identical" in out
    assert "completed" in out


def test_wind_fft(capsys):
    out = run_example("wind_fft", capsys)
    assert "supply cycle 3" in out
    assert "snapshot + hibernate" in out
    assert "restore" in out


def test_wsn_energy_neutral(capsys):
    out = run_example("wsn_energy_neutral", capsys)
    assert "cloudy" in out
    assert "samples collected" in out


def test_mpsoc_power_neutral(capsys):
    out = run_example("mpsoc_power_neutral", capsys)
    assert "Pareto frontier" in out
    assert "correlation" in out


def test_home_energy_monitor(capsys):
    out = run_example("home_energy_monitor", capsys)
    assert "kettle" in out
    assert "pings" in out.lower() or "ping" in out


def test_capacitance_sweep(tmp_path, capsys):
    out = run_example("capacitance_sweep", capsys,
                      store_path=str(tmp_path / "sweep.jsonl"))
    assert "8 points" in out
    assert "feasible points: 4/8" in out
    assert "least energy to completion" in out
    assert "Pareto frontier" in out


def test_capacitance_sweep_resumes_from_its_store(tmp_path, capsys):
    store = str(tmp_path / "sweep.jsonl")
    first = run_example("capacitance_sweep", capsys, store_path=store)
    assert "8 computed, 0 resumed" in first
    second = run_example("capacitance_sweep", capsys, store_path=store)
    assert "0 computed, 8 resumed" in second
    # Identical conclusions either way.
    tail = lambda out: out[out.index("feasible points"):]
    assert tail(first) == tail(second)


def test_design_space(capsys):
    out = run_example("design_space", capsys)
    assert "Taxonomy placements" in out
    assert "transient axis" in out
    assert "energy-neutral axis" in out
    # The exploration stage grows a real Pareto frontier.
    assert "Design-space exploration" in out
    assert "Pareto frontier" in out
    assert "completes at" in out


def test_min_capacitance(tmp_path, capsys):
    out = run_example("min_capacitance", capsys,
                      store_path=str(tmp_path / "explore.jsonl"))
    assert "smallest completing capacitance" in out
    # Multi-fidelity screening spends far fewer full-horizon runs than
    # the 16-point grid it matches.
    assert "full-horizon simulations spent: 4" in out
    assert "Eq. (4) infeasible below" in out


def test_min_capacitance_rerun_is_pure_cache(tmp_path, capsys):
    store = str(tmp_path / "explore.jsonl")
    first = run_example("min_capacitance", capsys, store_path=store)
    assert "0 cached" in first
    second = run_example("min_capacitance", capsys, store_path=store)
    # The acceptance criterion: an immediate re-run against the same
    # store recomputes nothing.
    assert "0 computed" in second
    assert "full-horizon simulations spent: 0" in second
    tail = lambda out: out[out.index("smallest completing"):]
    assert tail(first).replace("20 computed, 0 cached",
                               "0 computed, 20 cached") \
        .replace("simulations spent: 4", "simulations spent: 0") == tail(second)
