"""Cross-module correctness: real programs, real strategies, real outages.

The contract under test is the whole point of transient computing: a
program executed across supply interruptions must produce *bit-identical*
results to an uninterrupted run.
"""

import pytest

from repro.core.system import EnergyDrivenSystem
from repro.harvest.synthetic import SquareWavePowerHarvester
from repro.mcu.assembler import assemble
from repro.mcu.clock import ClockPlan, OperatingPoint
from repro.mcu.engine import MachineEngine
from repro.mcu.machine import Machine, MachineConfig
from repro.mcu.power_model import MSP430_FRAM_MODEL, MSP430_SRAM_MODEL
from repro.mcu.programs import (
    crc_golden,
    crc_program,
    fft_golden,
    fft_program,
    matmul_golden,
    matmul_program,
    sieve_golden,
    sieve_program,
)
from repro.power.rail import ResistiveLoad
from repro.storage.capacitor import Capacitor
from repro.transient.base import TransientPlatform, TransientPlatformConfig
from repro.transient.hibernus import Hibernus
from repro.transient.hibernus_pp import HibernusPP
from repro.transient.mementos import Mementos
from repro.transient.nvp import NVProcessor
from repro.transient.quickrecall import QuickRecall


def run_program_intermittently(
    source, strategy, data_in_fram=False, duration=4.0, data_words=2048
):
    """Run a program on a 100 kHz core under a harsh intermittent supply.

    The slow core clock makes every workload span several supply cycles
    (so checkpointing genuinely matters), while snapshot DMA still runs at
    the 8 MHz snapshot clock.
    """
    machine = Machine(
        assemble(source),
        MachineConfig(data_space_words=data_words, data_in_fram=data_in_fram),
    )
    model = MSP430_FRAM_MODEL if data_in_fram else MSP430_SRAM_MODEL
    engine = MachineEngine(machine, power_model=model)
    platform = TransientPlatform(
        engine,
        strategy,
        power_model=model,
        clock=ClockPlan([OperatingPoint(1e5, 3.0)]),
        config=TransientPlatformConfig(rail_capacitance=22e-6),
    )
    system = EnergyDrivenSystem(dt=1e-4)
    system.set_storage(Capacitor(22e-6, v_max=3.3))
    system.add_power_source(SquareWavePowerHarvester(20e-3, period=0.1, duty=0.25))
    system.set_platform(platform)
    system.add_load(ResistiveLoad(6000.0))
    system.run(duration)
    return platform, machine


@pytest.mark.parametrize(
    "strategy_factory",
    [Hibernus, HibernusPP, NVProcessor],
    ids=["hibernus", "hibernus++", "nvp"],
)
def test_crc_bit_exact_across_outages(strategy_factory):
    platform, machine = run_program_intermittently(
        crc_program(256), strategy_factory()
    )
    assert platform.metrics.first_completion_time is not None
    assert machine.output_port.last == crc_golden(256)
    # The run really was interrupted (supply dips drove checkpoints or
    # brownouts) — otherwise this test proves nothing.
    assert platform.metrics.snapshots_completed + platform.metrics.brownouts >= 1


def test_crc_bit_exact_quickrecall_unified_fram():
    platform, machine = run_program_intermittently(
        crc_program(256), QuickRecall(), data_in_fram=True
    )
    assert platform.metrics.first_completion_time is not None
    assert machine.output_port.last == crc_golden(256)


def test_crc_bit_exact_mementos():
    platform, machine = run_program_intermittently(crc_program(256), Mementos())
    assert platform.metrics.first_completion_time is not None
    assert machine.output_port.last == crc_golden(256)


def test_fft_bit_exact_across_outages():
    platform, machine = run_program_intermittently(fft_program(64), Hibernus())
    assert platform.metrics.first_completion_time is not None
    assert machine.output_port.last == fft_golden(64)[2]


def test_matmul_memory_exact_across_outages():
    platform, machine = run_program_intermittently(matmul_program(8), Hibernus())
    c, checksum = matmul_golden(8)
    assert machine.output_port.last == checksum
    base = machine.image.symbols["mat_c"]
    assert machine.data[base : base + 64] == c


def test_sieve_exact_across_outages():
    platform, machine = run_program_intermittently(sieve_program(400), Hibernus())
    assert machine.output_port.last == sieve_golden(400)


def test_null_strategy_cannot_finish_what_it_restarts():
    """The baseline control: without checkpointing, a workload longer than
    one powered interval never completes."""
    from repro.transient.base import NullStrategy

    platform, machine = run_program_intermittently(
        crc_program(256), NullStrategy(), duration=3.0
    )
    assert platform.metrics.first_completion_time is None
    assert platform.metrics.brownouts >= 1
